"""E3 bench — Table I: suspended-time fractions, Drowsy-DC vs Neat.

Paper: global 66 % (Drowsy) vs 49 % (Neat), i.e. ~35 % more suspended
time; the host carrying both LLMU VMs never sleeps.
"""

from benchmarks.conftest import run_once
from repro.experiments import table1_suspension


def test_table1_suspension(benchmark):
    data = run_once(benchmark, table1_suspension.run, 7)
    drowsy = data.drowsy.global_suspended_fraction
    neat = data.neat.global_suspended_fraction
    assert drowsy > neat, "Drowsy-DC must beat Neat on suspended time"
    assert 0.15 <= data.relative_improvement <= 1.0, \
        "improvement should be in the paper's ballpark (35 %)"
    # One host (the LLMU host) never sleeps under Drowsy-DC.
    fractions = sorted(data.drowsy.suspended_fraction_by_host.values())
    assert fractions[0] < 0.05
    # The LLMI hosts sleep most of the time.
    assert all(f > 0.5 for f in fractions[1:])
    print()
    print(data.render())
