"""E8 bench — §VI-B: fleet sweep over the LLMI fraction.

Paper: Drowsy-DC improves up to 81-82 % on vanilla Neat, and
outperforms Oasis on average.  Asserted shape: improvement vs vanilla
Neat grows with the LLMI fraction and exceeds 60 % at 100 % LLMI;
Drowsy-DC never loses to Neat+S3 or Oasis.
"""

from benchmarks.conftest import run_once
from repro.experiments import fleet_sweep


def test_fleet_sweep(benchmark):
    data = run_once(benchmark, fleet_sweep.run,
                    (0.0, 0.5, 1.0), 8, 32, 7)
    improvements = [p.drowsy_vs_neat_no_s3_pct for p in data.points]
    assert improvements == sorted(improvements), \
        "improvement must grow with the LLMI fraction"
    assert improvements[-1] > 60.0, "paper: up to 81-82 %"
    for p in data.points:
        assert p.drowsy_kwh <= p.neat_kwh * 1.02
        assert p.drowsy_kwh <= p.oasis_kwh * 1.02
    assert data.mean_improvement_vs_oasis_pct >= 0.0
    print()
    print(data.render())
