"""Microbenchmarks for the hot paths (hpc-parallel guide hygiene).

These keep the per-operation costs honest: the idleness model is O(1)
per VM-hour, the fleet update is vectorized, the event kernel processes
hundreds of thousands of events per second, the red-black tree stays
logarithmic.
"""

import numpy as np

from repro.cluster.events import EventSimulator
from repro.core.fleet import FleetIdlenessModel
from repro.core.model import IdlenessModel
from repro.core.weights import project_to_simplex
from repro.suspend.rbtree import RedBlackTree


def test_scalar_model_hourly_update(benchmark):
    model = IdlenessModel()
    hours = iter(range(10_000_000))

    def step():
        model.observe(next(hours), 0.3)

    benchmark(step)
    if benchmark.stats is not None:  # None under --benchmark-disable
        assert benchmark.stats["mean"] < 2e-3


def test_fleet_update_256_vms(benchmark):
    fleet = FleetIdlenessModel(256)
    rng = np.random.default_rng(0)
    activities = np.where(rng.random(256) < 0.7, 0.0, 0.4)
    hours = iter(range(10_000_000))

    def step():
        fleet.observe(next(hours), activities)

    benchmark(step)
    # Vectorization requirement: the whole fleet costs little more than
    # a handful of scalar updates.
    if benchmark.stats is not None:  # None under --benchmark-disable
        assert benchmark.stats["mean"] < 5e-3


def test_fleet_amortized_cost_scales_sublinearly():
    """256 VMs in one vectorized update beat 256 scalar updates."""
    import time

    fleet = FleetIdlenessModel(256)
    acts = np.full(256, 0.3)
    t0 = time.perf_counter()
    for h in range(200):
        fleet.observe(h, acts)
    fleet_elapsed = time.perf_counter() - t0

    scalar = IdlenessModel()
    t0 = time.perf_counter()
    for h in range(200):
        scalar.observe(h, 0.3)
    scalar_elapsed = time.perf_counter() - t0

    assert fleet_elapsed < 256 * scalar_elapsed / 4


def test_event_kernel_throughput(benchmark):
    def run_10k():
        sim = EventSimulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule_in(1.0, tick)

        sim.schedule_in(1.0, tick)
        sim.run()
        return count

    assert benchmark(run_10k) == 10_000
    # >100k events/s.
    if benchmark.stats is not None:  # None under --benchmark-disable
        assert benchmark.stats["mean"] < 0.1


def test_rbtree_insert_pop(benchmark):
    rng = np.random.default_rng(1)
    keys = rng.uniform(0, 1e6, 1000)

    def churn():
        tree = RedBlackTree()
        for k in keys:
            tree.insert(float(k), None)
        while tree:
            tree.pop_min()

    benchmark(churn)


def test_simplex_projection_batched(benchmark):
    rng = np.random.default_rng(2)
    batch = rng.normal(size=(1000, 4))
    out = benchmark(project_to_simplex, batch)
    assert np.allclose(out.sum(axis=1), 1.0)


def test_raw_ip_query(benchmark):
    model = IdlenessModel()
    for h in range(24 * 14):
        model.observe(h, 0.0 if h % 24 < 12 else 0.4)
    from repro.core.calendar import slot_of_hour

    slot = slot_of_hour(24 * 14)
    benchmark(model.raw_ip, slot)
    if benchmark.stats is not None:  # None under --benchmark-disable
        assert benchmark.stats["mean"] < 1e-4
