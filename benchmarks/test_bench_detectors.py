"""E11 bench — Neat substrate: detector × selector study.

Validates that the reimplemented Neat family reproduces Beloglazov &
Buyya's qualitative findings on PlanetLab-like load: adaptive detectors
behave differently from the static threshold, and the policy grid spans
a real energy/QoS trade-off space.
"""

from benchmarks.conftest import run_once
from repro.experiments import detector_study


def test_detector_selector_grid(benchmark):
    data = run_once(benchmark, detector_study.run, 8, 24, 3)
    assert len(data.cells) == 12

    migrations = {(c.detector, c.selector): c.migrations for c in data.cells}
    slatahs = {(c.detector, c.selector): c.slatah for c in data.cells}

    # The grid must actually differentiate policies.
    assert len(set(migrations.values())) > 1, "policies indistinguishable"
    assert len(set(round(s, 5) for s in slatahs.values())) > 1

    # Every configuration keeps QoS violations rare on this load.
    assert all(c.slatah < 0.05 for c in data.cells)

    # Consolidation actually happened: energy below the all-idle-on bound
    # (8 hosts x 72 h x 50 W = 28.8 kWh would be idle-only; with load the
    # no-consolidation bound is higher still).
    assert all(c.energy_kwh < 50 for c in data.cells)
    print()
    print(data.render())


def test_lr_mmt_is_competitive(benchmark):
    """Beloglazov's headline: LR + MMT minimizes the ESV product.  We
    assert the reproduced LR-MMT lands in the better half of the grid."""
    data = run_once(benchmark, detector_study.run, 8, 24, 3)
    esvs = sorted(c.esv for c in data.cells)
    lr_mmt = data.cell("lr", "mmt").esv
    median = esvs[len(esvs) // 2]
    assert lr_mmt <= median
