"""E7 bench — §VI-A.4: suspending module effectiveness / overhead / scale."""

import pytest

from benchmarks.conftest import run_once
from repro.core.params import DEFAULT_PARAMS
from repro.experiments import suspending_eval


def test_suspending_module_eval(benchmark):
    data = run_once(benchmark, suspending_eval.run)
    assert data.detection.precision > 0.95
    assert data.detection.recall > 0.95
    assert data.cycles_with_grace < data.cycles_without_grace, \
        "grace time must dampen power-state oscillation"
    assert data.waking_date_ok
    assert data.blacklist_filtered
    print()
    print(data.render())


def test_one_evaluation_overhead(benchmark):
    """The per-check cost must be negligible (paper: 'negligible
    overhead'): well under a millisecond."""
    from repro.experiments.suspending_eval import _mini_host
    from repro.suspend.module import SuspendingModule
    from repro.traces.synthetic import daily_backup_trace

    host, _ = _mini_host(DEFAULT_PARAMS, daily_backup_trace(days=1))
    module = SuspendingModule(host, DEFAULT_PARAMS)
    benchmark(module.evaluate, 100.0)
    if benchmark.stats is not None:  # None under --benchmark-disable
        assert benchmark.stats["mean"] < 1e-3


@pytest.mark.parametrize("n_timers", [100, 1000, 10000])
def test_waking_date_scales(benchmark, n_timers):
    """Earliest-valid-timer cost grows mildly with the hrtimer count."""
    import numpy as np

    from repro.suspend.timers import TimerEntry, TimerRegistry

    rng = np.random.default_rng(5)
    registry = TimerRegistry()
    for i, fire in enumerate(rng.uniform(0, 1e6, n_timers)):
        registry.register(TimerEntry(float(fire), f"proc-{i}", f"t{i}"))
    entry = benchmark(registry.earliest_valid)
    assert entry is not None
    if benchmark.stats is not None:  # None under --benchmark-disable
        assert benchmark.stats["mean"] < 1e-3
