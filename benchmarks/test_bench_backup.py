"""E10 bench — §VI-A.3 timer anticipation: the backup wakes penalty-free."""

from benchmarks.conftest import run_once
from repro.core.params import DEFAULT_PARAMS
from repro.experiments import backup_anticipation


def test_backup_anticipated(benchmark):
    data = run_once(benchmark, backup_anticipation.run, 3)
    assert data.margins_s, "no backup expiries observed"
    assert data.all_anticipated, \
        "with ahead-of-time wake the host must be up at every timer expiry"
    assert data.suspended_fraction > 0.9
    print()
    print(data.render())


def test_backup_without_anticipation_pays(benchmark):
    params = DEFAULT_PARAMS.replace(ahead_of_time_wake=False)
    data = run_once(benchmark, backup_anticipation.run, 3, params)
    assert not data.all_anticipated, \
        "without anticipation the timer fires while the host resumes"
    print()
    print(data.render())
