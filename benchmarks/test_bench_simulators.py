"""Simulator hot-path benches: the columnar fleet binding (DESIGN.md §6),
the columnar host accounting on top of it (DESIGN.md §8) and the batched
event-driven hot path (DESIGN.md §10).

Throughput of both simulators at 64/256/1024 VMs, plus the acceptance
checks for the columnar refactors: the fleet-bound hourly simulator must
beat the seed per-VM scalar path by >= 3x at 1024 VMs x 168 h, the
host-accounting layer must further beat the accounting-off fleet path,
and the batched event simulator (suspend-check sweeps + bulk request
scheduling + indexed wake path) must beat the per-host event path by
>= 3x in events/s — all while producing *bit-identical* results (energy,
migrations, SLATAH, request summaries, event counts).  The speedups are
pure mechanics, never a semantics change.  Event-driven events/s and
wall-clock are recorded as ``extra_info`` in the BENCH_PR.json artifact
so the per-PR perf trajectory covers both simulators.
"""

import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.api import Simulation
from repro.experiments.common import build_fleet
from repro.sim.event_driven import EventConfig
from repro.sim.hourly import HourlyConfig

WEEK_H = 168


def _fleet(n_vms: int, hours: int):
    return build_fleet(n_hosts=n_vms // 4, n_vms=n_vms,
                       llmi_fraction=0.5, hours=hours, seed=7)


# ----------------------------------------------------------------------
# hourly simulator
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_vms", [64, 256, 1024])
def test_hourly_fleet_throughput(benchmark, n_vms):
    dc = _fleet(n_vms, WEEK_H)
    sim = Simulation(dc, "drowsy", "hourly")
    t0 = time.perf_counter()
    result = run_once(benchmark, sim.run, WEEK_H)
    benchmark.extra_info["wall_s"] = time.perf_counter() - t0
    assert result.hours == WEEK_H
    assert result.total_energy_kwh > 0.0


def test_hourly_speedup_and_parity():
    """Acceptance: >= 3x over the seed per-VM path at 1024 VMs x 168 h,
    with identical energy totals, migration counts and SLATAH."""
    n_vms, hours = 1024, WEEK_H

    dc_scalar = _fleet(n_vms, hours)
    sim_scalar = Simulation(dc_scalar, "drowsy",
                            config=HourlyConfig(use_fleet_model=False))
    t0 = time.perf_counter()
    scalar = sim_scalar.run(hours)
    scalar_s = time.perf_counter() - t0

    dc_fleet = _fleet(n_vms, hours)
    sim_fleet = Simulation(dc_fleet, "drowsy")
    t0 = time.perf_counter()
    fleet = sim_fleet.run(hours)
    fleet_s = time.perf_counter() - t0

    # Parity first: a fast-but-different simulator is worthless.
    assert fleet.total_energy_kwh == scalar.total_energy_kwh
    assert fleet.energy_kwh_by_host == scalar.energy_kwh_by_host
    assert fleet.migrations == scalar.migrations
    assert fleet.vm_migrations == scalar.vm_migrations
    assert fleet.slatah == scalar.slatah
    assert fleet.suspend_cycles_by_host == scalar.suspend_cycles_by_host

    speedup = scalar_s / fleet_s
    print(f"\nhourly 1024 VMs x {hours} h: scalar {scalar_s:.2f} s, "
          f"fleet-bound {fleet_s:.2f} s -> {speedup:.2f}x")
    # Local margin is 3.9-4.5x.  Shared CI runners are too noisy to gate
    # at the full bar, so CI only catches gross regressions; the 3x
    # acceptance floor is enforced on dedicated hardware.
    floor = 1.5 if os.environ.get("CI") else 3.0
    assert speedup >= floor, (
        f"columnar hot path regressed: {speedup:.2f}x < {floor}x "
        f"(scalar {scalar_s:.2f} s vs fleet {fleet_s:.2f} s)")


def test_hourly_host_accounting_speedup_and_parity():
    """Acceptance for the host-accounting layer (PR 2): with the fleet
    binding active in both runs, turning the columnar host view on must
    keep every observable identical and speed the 1024-VM hourly run up
    further (local margin ~1.6-1.9x; CI only gates parity + no gross
    regression)."""
    n_vms, hours = 1024, WEEK_H

    def run_off():
        sim = Simulation(_fleet(n_vms, hours), "drowsy",
                         config=HourlyConfig(use_host_accounting=False))
        t0 = time.perf_counter()
        return sim.run(hours), time.perf_counter() - t0

    def run_on():
        sim = Simulation(_fleet(n_vms, hours), "drowsy")
        t0 = time.perf_counter()
        return sim.run(hours), time.perf_counter() - t0

    # Interleaved min-of-2 per side: this floor is the tightest in the
    # file (~1.6x margin over 1.2x), so one background-load spike during
    # a single timed run can sink it on a busy box.
    (off, off_a), (on, on_a) = run_off(), run_on()
    (_, off_b), (_, on_b) = run_off(), run_on()
    off_s, on_s = min(off_a, off_b), min(on_a, on_b)

    assert on.total_energy_kwh == off.total_energy_kwh
    assert on.energy_kwh_by_host == off.energy_kwh_by_host
    assert on.migrations == off.migrations
    assert on.vm_migrations == off.vm_migrations
    assert on.slatah == off.slatah
    assert on.suspend_cycles_by_host == off.suspend_cycles_by_host

    speedup = off_s / on_s
    noise = max(on_a, on_b) / min(on_a, on_b) - 1.0
    print(f"\nhourly 1024 VMs x {hours} h: accounting off {off_s:.2f} s, "
          f"on {on_s:.2f} s -> {speedup:.2f}x (same-side noise "
          f"{100 * noise:.0f}%)")
    # A box whose identical same-side runs spread by `noise` cannot
    # resolve the full 1.2x bar; scale it down there (never below the
    # CI gross-regression gate).
    floor = 0.9 if os.environ.get("CI") else min(
        1.2, max(0.9, 1.2 / (1.0 + noise)))
    assert speedup >= floor, (
        f"host accounting regressed: {speedup:.2f}x < {floor}x "
        f"(off {off_s:.2f} s vs on {on_s:.2f} s)")


# ----------------------------------------------------------------------
# event-driven simulator
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_vms,hours", [(64, 12), (256, 4), (1024, 1)])
def test_event_fleet_throughput(benchmark, n_vms, hours):
    dc = _fleet(n_vms, max(hours, 24))
    sim = Simulation(dc, "drowsy", "event")
    t0 = time.perf_counter()
    result = run_once(benchmark, sim.run, hours)
    wall_s = time.perf_counter() - t0
    assert result.events_processed > 0
    assert result.total_energy_kwh > 0.0
    # Recorded into BENCH_PR.json (extra_info) so the per-PR perf
    # trajectory covers the event simulator alongside the hourly one.
    benchmark.extra_info["events_processed"] = result.events_processed
    benchmark.extra_info["wall_s"] = wall_s
    benchmark.extra_info["events_per_s"] = result.events_processed / wall_s


def _assert_event_results_identical(a, b):
    # One definition of the parity contract, shared with the hypothesis
    # interleaving suite: every EventResult field, derived not
    # hardcoded, with the failing field named on mismatch.
    from tests.test_event_batching import assert_results_equal

    assert_results_equal(a, b)


def test_event_batched_speedup_and_parity(benchmark):
    """Acceptance for the batched event-driven hot path (DESIGN.md §10):
    fleet-wide suspend-check sweeps + bulk request scheduling + indexed
    wake path must beat the PR 2 per-host event path by >= 3x in
    events/s at 1024 VMs, with a bit-identical ``EventResult``.

    The full acceptance workload is 1024 VMs x 168 h; the oracle path
    alone takes ~13 min there, so the default run uses a 12 h horizon
    (the per-hour event mix is stationary — the ratio transfers) and
    ``BENCH_FULL=1`` selects the full week on dedicated hardware.

    The two runs are independent simulations over their own fleets, so
    they shard across cores like E8 cells (``EventParityCell`` through
    ``SweepRunner``): the slow oracle overlaps the batched run instead
    of serializing behind it, roughly halving bench wall-clock.  Each
    worker measures its own wall-clock, so events/s stays a per-run
    number; ``BENCH_WORKERS=1`` restores the serial in-process path.
    """
    from repro.sim.sweep import EventParityCell, SweepRunner, run_event_parity_cell

    n_vms = 1024
    hours = WEEK_H if os.environ.get("BENCH_FULL") else 12
    workers = int(os.environ.get("BENCH_WORKERS", "2"))

    cells = [EventParityCell(n_vms=n_vms, hours=hours, batched=False),
             EventParityCell(n_vms=n_vms, hours=hours, batched=True)]
    t0 = time.perf_counter()
    (old, old_s), (new, new_s) = run_once(
        benchmark, SweepRunner(workers=workers).map,
        run_event_parity_cell, cells)
    benchmark.extra_info["sharded_wall_s"] = time.perf_counter() - t0
    benchmark.extra_info["workers"] = workers

    # Parity first: a fast-but-different simulator is worthless.  The
    # coalesced-event accounting keeps events_processed — and therefore
    # events/s — directly comparable.
    _assert_event_results_identical(old, new)

    old_eps = old.events_processed / old_s
    new_eps = new.events_processed / new_s
    speedup = new_eps / old_eps
    print(f"\nevent-driven {n_vms} VMs x {hours} h: per-host "
          f"{old_s:.2f} s ({old_eps:,.0f} ev/s), batched {new_s:.2f} s "
          f"({new_eps:,.0f} ev/s) -> {speedup:.2f}x")
    benchmark.extra_info["oracle_wall_s"] = old_s
    benchmark.extra_info["batched_wall_s"] = new_s
    benchmark.extra_info["oracle_events_per_s"] = old_eps
    benchmark.extra_info["batched_events_per_s"] = new_eps
    # Local margin is ~8-10x; shared CI runners only gate gross
    # regressions (same policy as the hourly acceptance floors).
    floor = 1.5 if os.environ.get("CI") else 3.0
    assert speedup >= floor, (
        f"batched event hot path regressed: {speedup:.2f}x < {floor}x "
        f"(per-host {old_s:.2f} s vs batched {new_s:.2f} s)")


@pytest.mark.parametrize("controller",
                         ["drowsy", "neat", "neat-distributed", "oasis"])
def test_event_batched_parity_all_controllers(controller):
    """Bit-identical EventResult for every controller family.

    ``adaptive_checks=False`` on both sides: this pins the pure
    batching mechanics (the adaptive widening has its own parity
    suite, which permits fewer check events)."""

    def run(use_batched):
        dc = _fleet(32, 24)
        sim = Simulation(
            dc, controller, "event",
            config=EventConfig(use_batched_checks=use_batched,
                               use_bulk_requests=use_batched,
                               adaptive_checks=False))
        return sim.run(8)

    _assert_event_results_identical(run(False), run(True))


def test_event_parity_small():
    """Fleet binding changes nothing observable in the event sim."""
    def run(use_fleet):
        dc = _fleet(64, 24)
        sim = Simulation(
            dc, "drowsy", "event",
            config=EventConfig(use_fleet_model=use_fleet))
        return sim.run(6)

    scalar, fleet = run(False), run(True)
    assert fleet.total_energy_kwh == scalar.total_energy_kwh
    assert fleet.migrations == scalar.migrations
    assert fleet.request_summary == scalar.request_summary
    assert fleet.events_processed == scalar.events_processed
