"""Simulator hot-path benches: the columnar fleet binding (DESIGN.md §6)
and the columnar host accounting on top of it (DESIGN.md §8).

Throughput of both simulators at 64/256/1024 VMs, plus the acceptance
checks for the columnar refactors: the fleet-bound hourly simulator must
beat the seed per-VM scalar path by >= 3x at 1024 VMs x 168 h, and the
host-accounting layer must further beat the accounting-off fleet path —
all while producing *bit-identical* results (energy, migrations,
SLATAH).  The speedups are pure mechanics, never a semantics change.
"""

import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.consolidation.drowsy import DrowsyController
from repro.experiments.common import build_fleet
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.sim.hourly import HourlyConfig, HourlySimulator

WEEK_H = 168


def _fleet(n_vms: int, hours: int):
    return build_fleet(n_hosts=n_vms // 4, n_vms=n_vms,
                       llmi_fraction=0.5, hours=hours, seed=7)


# ----------------------------------------------------------------------
# hourly simulator
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_vms", [64, 256, 1024])
def test_hourly_fleet_throughput(benchmark, n_vms):
    dc = _fleet(n_vms, WEEK_H)
    sim = HourlySimulator(dc, DrowsyController(dc))
    result = run_once(benchmark, sim.run, WEEK_H)
    assert result.hours == WEEK_H
    assert result.total_energy_kwh > 0.0


def test_hourly_speedup_and_parity():
    """Acceptance: >= 3x over the seed per-VM path at 1024 VMs x 168 h,
    with identical energy totals, migration counts and SLATAH."""
    n_vms, hours = 1024, WEEK_H

    dc_scalar = _fleet(n_vms, hours)
    sim_scalar = HourlySimulator(dc_scalar, DrowsyController(dc_scalar),
                                 config=HourlyConfig(use_fleet_model=False))
    t0 = time.perf_counter()
    scalar = sim_scalar.run(hours)
    scalar_s = time.perf_counter() - t0

    dc_fleet = _fleet(n_vms, hours)
    sim_fleet = HourlySimulator(dc_fleet, DrowsyController(dc_fleet))
    t0 = time.perf_counter()
    fleet = sim_fleet.run(hours)
    fleet_s = time.perf_counter() - t0

    # Parity first: a fast-but-different simulator is worthless.
    assert fleet.total_energy_kwh == scalar.total_energy_kwh
    assert fleet.energy_kwh_by_host == scalar.energy_kwh_by_host
    assert fleet.migrations == scalar.migrations
    assert fleet.vm_migrations == scalar.vm_migrations
    assert fleet.slatah == scalar.slatah
    assert fleet.suspend_cycles_by_host == scalar.suspend_cycles_by_host

    speedup = scalar_s / fleet_s
    print(f"\nhourly 1024 VMs x {hours} h: scalar {scalar_s:.2f} s, "
          f"fleet-bound {fleet_s:.2f} s -> {speedup:.2f}x")
    # Local margin is 3.9-4.5x.  Shared CI runners are too noisy to gate
    # at the full bar, so CI only catches gross regressions; the 3x
    # acceptance floor is enforced on dedicated hardware.
    floor = 1.5 if os.environ.get("CI") else 3.0
    assert speedup >= floor, (
        f"columnar hot path regressed: {speedup:.2f}x < {floor}x "
        f"(scalar {scalar_s:.2f} s vs fleet {fleet_s:.2f} s)")


def test_hourly_host_accounting_speedup_and_parity():
    """Acceptance for the host-accounting layer (PR 2): with the fleet
    binding active in both runs, turning the columnar host view on must
    keep every observable identical and speed the 1024-VM hourly run up
    further (local margin ~1.6-1.9x; CI only gates parity + no gross
    regression)."""
    n_vms, hours = 1024, WEEK_H

    dc_off = _fleet(n_vms, hours)
    sim_off = HourlySimulator(dc_off, DrowsyController(dc_off),
                              config=HourlyConfig(use_host_accounting=False))
    t0 = time.perf_counter()
    off = sim_off.run(hours)
    off_s = time.perf_counter() - t0

    dc_on = _fleet(n_vms, hours)
    sim_on = HourlySimulator(dc_on, DrowsyController(dc_on))
    t0 = time.perf_counter()
    on = sim_on.run(hours)
    on_s = time.perf_counter() - t0

    assert on.total_energy_kwh == off.total_energy_kwh
    assert on.energy_kwh_by_host == off.energy_kwh_by_host
    assert on.migrations == off.migrations
    assert on.vm_migrations == off.vm_migrations
    assert on.slatah == off.slatah
    assert on.suspend_cycles_by_host == off.suspend_cycles_by_host

    speedup = off_s / on_s
    print(f"\nhourly 1024 VMs x {hours} h: accounting off {off_s:.2f} s, "
          f"on {on_s:.2f} s -> {speedup:.2f}x")
    floor = 0.9 if os.environ.get("CI") else 1.2
    assert speedup >= floor, (
        f"host accounting regressed: {speedup:.2f}x < {floor}x "
        f"(off {off_s:.2f} s vs on {on_s:.2f} s)")


# ----------------------------------------------------------------------
# event-driven simulator
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_vms,hours", [(64, 12), (256, 4), (1024, 1)])
def test_event_fleet_throughput(benchmark, n_vms, hours):
    dc = _fleet(n_vms, max(hours, 24))
    sim = EventDrivenSimulation(dc, DrowsyController(dc))
    result = run_once(benchmark, sim.run, hours)
    assert result.events_processed > 0
    assert result.total_energy_kwh > 0.0


def test_event_parity_small():
    """Fleet binding changes nothing observable in the event sim."""
    def run(use_fleet):
        dc = _fleet(64, 24)
        sim = EventDrivenSimulation(
            dc, DrowsyController(dc),
            config=EventConfig(use_fleet_model=use_fleet))
        return sim.run(6)

    scalar, fleet = run(False), run(True)
    assert fleet.total_energy_kwh == scalar.total_energy_kwh
    assert fleet.migrations == scalar.migrations
    assert fleet.request_summary == scalar.request_summary
    assert fleet.events_processed == scalar.events_processed
