"""Chaos engine benches (DESIGN.md §14).

Two guards:

* the fault hooks riding the **fault-free** event hot path (the WoL
  channel indirection, the ``faults is None`` branches, the transition
  token bookkeeping) must cost < 3 % wall-clock vs running with no plan
  attached — the zero-probability plan is the worst case, since it adds
  the observer and hour hooks while injecting nothing;
* a representative chaos plan (lossy WoL + crashes + resume failures)
  must complete with the §V resilience outcomes, with its throughput
  recorded into BENCH_PR.json (``extra_info``) for the per-PR perf
  trajectory.
"""

import os
import time

from benchmarks.conftest import run_once
from repro.api import Simulation
from repro.experiments.common import build_fleet
from repro.faults import (
    FaultInjector,
    FaultPlan,
    HostCrashFaults,
    TransitionFaults,
    WolFaults,
)

ZERO_PLAN = FaultPlan(name="zero")

CHAOS_PLAN = FaultPlan(
    name="bench-chaos",
    wol=WolFaults(loss_probability=0.2, delay_probability=0.1),
    crashes=HostCrashFaults(rate_per_host_per_h=0.01,
                            recover_after_s=1800.0),
    transitions=TransitionFaults(resume_failure_probability=0.05,
                                 recover_after_s=900.0))


def _run(faults, hours=72):
    dc = build_fleet(n_hosts=16, n_vms=64, llmi_fraction=0.5,
                     hours=hours, seed=7)
    sim = Simulation(dc, "drowsy", "event", seed=7, faults=faults)
    t0 = time.perf_counter()
    result = sim.run(hours)
    return time.perf_counter() - t0, result


def test_fault_hook_overhead_on_fault_free_path(benchmark):
    """The chaos plumbing must be free when unused: min-of-3 wall-clock
    of a zero-plan run within 3 % of a plan-free run (same fleet, same
    seed — the runs are bit-identical, so any delta IS the hook cost)."""
    hours = 72

    def zero_run():
        return _run(FaultInjector(ZERO_PLAN, seed=7), hours)

    # Interleave the two sides: timing all plain runs before all
    # zero-plan runs lets slow machine-load drift between the two blocks
    # read as hook overhead.  Alternating rounds expose both sides to
    # the same drift, so the min-of-rounds pair compares like with like.
    plain_times, times = [], []
    for _ in range(2):
        plain_times.append(_run(None, hours)[0])
        times.append(zero_run()[0])
    plain_times.append(_run(None, hours)[0])
    elapsed, result = run_once(benchmark, zero_run)
    times.append(elapsed)
    plain_s = min(plain_times)
    chaos_s = min(times)
    assert result.fault_summary is None

    overhead = chaos_s / plain_s - 1.0
    benchmark.extra_info["plain_wall_s"] = plain_s
    benchmark.extra_info["zero_plan_wall_s"] = chaos_s
    benchmark.extra_info["overhead_pct"] = 100.0 * overhead
    # Shared CI runners are too noisy for a 3 % gate; locally the margin
    # is well under 1 %.  A box whose *identical* plain runs already
    # spread wider than the gate cannot resolve a 3 % delta either, so
    # the ceiling opens up to the measured same-side noise there.
    noise = max(plain_times) / min(plain_times) - 1.0
    benchmark.extra_info["plain_noise_pct"] = 100.0 * noise
    ceiling = 0.15 if os.environ.get("CI") else max(0.03, noise)
    assert overhead <= ceiling, (
        f"fault hooks cost {100 * overhead:.1f}% on the fault-free hot "
        f"path (ceiling {100 * ceiling:.0f}%)")


def test_chaos_plan_throughput(benchmark):
    """A full chaos plan completes with the resilience outcomes intact;
    events/s lands in BENCH_PR.json for the trajectory."""
    elapsed, result = run_once(benchmark, _run,
                               FaultInjector(CHAOS_PLAN, seed=7))
    summary = result.fault_summary
    assert summary is not None
    assert summary.host_crashes > 0
    assert summary.stranded_requests == 0
    benchmark.extra_info["wall_s"] = elapsed
    benchmark.extra_info["faults_injected"] = summary.faults_injected
    benchmark.extra_info["unavailability_s"] = summary.unavailability_s
