"""Shared benchmark configuration.

Heavy, end-to-end experiment benches use ``benchmark.pedantic`` with a
single round: they are measured for wall-clock visibility, while their
*assertions* are what tie the run to the paper's claims.  Microbenches
(model update, tree ops, kernel throughput) use normal rounds.
"""



def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
