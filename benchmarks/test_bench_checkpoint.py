"""Checkpoint layer benches (DESIGN.md §16).

Two guards:

* a run that does **not** checkpoint must not pay for the feature: the
  hour-hook plumbing plus an attached-but-idle manager (``every_h``
  beyond the horizon, so zero snapshots) must cost < 3 % wall-clock vs
  a run with no checkpointer at all;
* the snapshot itself has a measured price: per-checkpoint write cost
  (capture + digest + atomic rename) and bytes on disk land in
  BENCH_PR.json (``extra_info``) for the per-PR perf trajectory, and
  a resumed run must reproduce the uninterrupted result exactly.
"""

import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.api import Simulation
from repro.experiments.common import build_fleet
from repro.resilience import CheckpointPolicy

HOURS = 72


def _run(checkpoint=None, hours=HOURS):
    dc = build_fleet(n_hosts=16, n_vms=64, llmi_fraction=0.5,
                     hours=hours, seed=7)
    sim = Simulation(dc, "drowsy", "event", seed=7, checkpoint=checkpoint)
    t0 = time.perf_counter()
    result = sim.run(hours)
    return time.perf_counter() - t0, result, sim


def test_idle_checkpointer_overhead(benchmark, tmp_path):
    """Checkpointing off must be free: min-of-3 wall-clock of a run
    whose manager never fires within 3 % of a checkpointer-free run
    (same fleet, same seed — the runs are bit-identical, so any delta
    IS the hook cost)."""
    idle = CheckpointPolicy(dir=str(tmp_path), every_h=HOURS + 1)

    def idle_run():
        return _run(idle)

    # Interleave the two sides (the test_bench_faults pattern): timing
    # all plain runs before all idle runs would let machine-load drift
    # read as hook overhead; alternating rounds expose both sides to
    # the same drift.
    plain_times, times = [], []
    for _ in range(2):
        plain_times.append(_run(None)[0])
        times.append(idle_run()[0])
    plain_times.append(_run(None)[0])
    elapsed, result, sim = run_once(benchmark, idle_run)
    times.append(elapsed)
    plain_s = min(plain_times)
    idle_s = min(times)
    assert sim.checkpointer.written == 0  # it really never fired
    assert not list(Path(tmp_path).glob("*.ckpt"))

    overhead = idle_s / plain_s - 1.0
    benchmark.extra_info["plain_wall_s"] = plain_s
    benchmark.extra_info["idle_checkpoint_wall_s"] = idle_s
    benchmark.extra_info["overhead_pct"] = 100.0 * overhead
    # Same noise-aware ceiling as the fault-hook bench: a box whose
    # identical plain runs spread wider than the gate cannot resolve a
    # 3 % delta either.
    noise = max(plain_times) / min(plain_times) - 1.0
    benchmark.extra_info["plain_noise_pct"] = 100.0 * noise
    ceiling = 0.15 if os.environ.get("CI") else max(0.03, noise)
    assert overhead <= ceiling, (
        f"idle checkpointer costs {100 * overhead:.1f}% on the hot path "
        f"(ceiling {100 * ceiling:.0f}%)")


def test_checkpoint_write_cost(benchmark, tmp_path):
    """Price one snapshot: wall-clock per checkpoint and bytes on disk,
    at an hourly cadence over the full horizon; the resumed run must
    equal the uninterrupted one."""
    plain_s, base, _ = _run(None)

    policy = CheckpointPolicy(dir=str(tmp_path), every_h=1)
    elapsed, result, sim = run_once(benchmark, _run, policy)
    assert result == base  # checkpointing perturbs nothing
    assert sim.checkpointer.written == HOURS

    files = sorted(Path(tmp_path).glob("*.ckpt"))
    total_bytes = sum(f.stat().st_size for f in files)
    write_s = max(0.0, elapsed - plain_s)
    benchmark.extra_info["checkpoints_written"] = sim.checkpointer.written
    benchmark.extra_info["checkpoint_total_wall_s"] = write_s
    benchmark.extra_info["checkpoint_wall_s_each"] = (
        write_s / sim.checkpointer.written)
    benchmark.extra_info["checkpoint_bytes_each"] = (
        total_bytes // len(files))

    resumed = Simulation.resume(files[len(files) // 2]).run()
    assert resumed == base
