"""Sharded backend benches: parity first, multi-core speedup second
(DESIGN.md §15).

The sharded backend partitions the fleet into per-shard event engines
and replays controller effects through the hour-boundary exchange, so
its acceptance bar is the same as every other hot path in this repo:
*bit-identical* results before any speed claim.  The parity bench runs
everywhere (including single-core boxes, where the in-process transport
still exercises the full exchange protocol); the speedup acceptance is
gated on ``os.cpu_count() >= 4`` because a 4-shard/4-worker run cannot
beat a single process without at least 4 cores to spread over.

Wall-clock numbers land in ``extra_info`` so the BENCH_PR.json artifact
tracks the sharded backend's per-PR perf trajectory alongside the
hourly and event simulators.
"""

import dataclasses
import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.api import ShardedConfig, Simulation
from repro.experiments.common import build_fleet
from repro.sim.event_driven import EventConfig

SHARDS = 4


def _fleet(n_vms: int, hours: int):
    dc = build_fleet(n_hosts=n_vms // 4, n_vms=n_vms,
                     llmi_fraction=0.5, hours=hours, seed=7)
    # Collision-free IPs keep the run inside the verified sharding
    # envelope (DESIGN.md §15): the waking guard stays silent and the
    # reduction is byte-identical at any shard count.
    for i, vm in enumerate(dc.vms):
        vm.ip_address = f"10.9.{i // 200}.{i % 200 + 1}"
    return dc


def _plain_run(n_vms: int, hours: int):
    sim = Simulation(_fleet(n_vms, hours), "drowsy", "event",
                     config=EventConfig(seed=5, request_streams="per-vm"),
                     seed=5)
    return sim.run(hours)


def _sharded_sim(n_vms: int, hours: int, workers: int):
    return Simulation(
        _fleet(n_vms, hours), "drowsy", "sharded", seed=5,
        backend_config=ShardedConfig(shards=SHARDS, workers=workers))


def test_sharded_parity_bench(benchmark):
    """Always-on acceptance: 4 shards (in-process transport) must
    reduce to the exact plain event-driven ``RunResult``.  Runs on any
    box — parity does not need cores, only the exchange protocol."""
    n_vms, hours = 256, 12

    t0 = time.perf_counter()
    plain = _plain_run(n_vms, hours)
    plain_s = time.perf_counter() - t0

    sim = _sharded_sim(n_vms, hours, workers=0)
    t0 = time.perf_counter()
    sharded = run_once(benchmark, sim.run, hours)
    sharded_s = time.perf_counter() - t0

    assert dataclasses.replace(sharded, backend="event") == plain

    benchmark.extra_info["plain_wall_s"] = plain_s
    benchmark.extra_info["sharded_wall_s"] = sharded_s
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["workers"] = 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="4-shard speedup needs >= 4 cores")
def test_sharded_speedup_and_parity(benchmark):
    """Acceptance: 4 shards on 4 process workers must beat the
    single-process event simulator by >= 2x on a fleet-scale run, with
    a bit-identical ``RunResult``.  Skipped below 4 cores — there the
    backend still *works* (the parity bench above proves it) but spawn
    overhead with no parallelism makes a speedup floor meaningless."""
    n_vms, hours = 1024, 96

    t0 = time.perf_counter()
    plain = _plain_run(n_vms, hours)
    plain_s = time.perf_counter() - t0

    sim = _sharded_sim(n_vms, hours, workers=SHARDS)
    t0 = time.perf_counter()
    sharded = run_once(benchmark, sim.run, hours)
    sharded_s = time.perf_counter() - t0

    # Parity first: a fast-but-different backend is worthless.
    assert dataclasses.replace(sharded, backend="event") == plain

    speedup = plain_s / sharded_s
    print(f"\nsharded {n_vms} VMs x {hours} h: plain {plain_s:.2f} s, "
          f"{SHARDS} shards/{SHARDS} workers {sharded_s:.2f} s "
          f"-> {speedup:.2f}x")
    benchmark.extra_info["plain_wall_s"] = plain_s
    benchmark.extra_info["sharded_wall_s"] = sharded_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["workers"] = SHARDS
    assert speedup >= 2.0, (
        f"sharded backend below its 4-core floor: {speedup:.2f}x < 2.0x "
        f"(plain {plain_s:.2f} s vs sharded {sharded_s:.2f} s)")
