"""E1 bench — Fig. 1: production-like trace generation.

Regenerates the Fig. 1 workload series and checks the documented
properties: VM3 == VM4, LLMI idle fractions, activity bands.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig1_traces


def test_fig1_traces(benchmark):
    data = run_once(benchmark, fig1_traces.run, 6)
    assert set(data.series) == {"VM3", "VM4", "VM6"}
    np.testing.assert_array_equal(data.series["VM3"], data.series["VM4"])
    for vm, series in data.series.items():
        idle_frac = float(np.mean(series == 0.0))
        assert idle_frac > 0.75, f"{vm} must be mostly idle (LLMI)"
        active = series[series > 0]
        assert 0.02 < active.mean() < 0.5, f"{vm} activity out of Fig. 1 band"
    print()
    print(fig1_traces.render(data))


def test_fig1_generation_throughput(benchmark):
    """Trace synthesis must stay cheap: 3 years in well under a second."""
    from repro.traces.production import production_trace

    trace = benchmark(production_trace, 1, 3 * 365)
    assert trace.hours == 3 * 365 * 24
