"""E2 bench — Fig. 2: colocation matrix under Drowsy-DC (7 days).

Paper checkpoints asserted: the LLMU pair co-runs for the majority of
the time, the same-workload pair converges after few migrations, and
per-VM migration counts stay low (paper max: 3).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig2_colocation


def test_fig2_colocation(benchmark):
    data = run_once(benchmark, fig2_colocation.run, 7)
    s = data.summary
    # Paper Fig. 2: V1-V2 85 %, V3-V4 76 %, max 3 migrations per VM.
    assert s.llmu_pair_fraction > 0.6
    assert s.same_workload_pair_fraction > 0.6
    assert s.max_migrations_per_vm <= 4
    assert s.total_migrations <= 24
    print()
    print(data.render())
