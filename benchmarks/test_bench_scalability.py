"""E9 bench — §VII scalability: O(n) Drowsy vs O(n²) pairwise matching."""

import pytest

from benchmarks.conftest import run_once
from repro.consolidation.baseline import (
    drowsy_linear_grouping,
    pairwise_matching_grouping,
)
from repro.core.params import DEFAULT_PARAMS
from repro.experiments import scalability
from repro.experiments.scalability import _make_population


def test_growth_exponents(benchmark):
    data = run_once(benchmark, scalability.run, (64, 128, 256, 512))
    assert data.pairwise_exponent > data.drowsy_exponent + 0.4, \
        "pairwise matching must grow clearly faster than Drowsy grouping"
    assert data.drowsy_exponent < 1.6   # ~linear (n log n)
    assert data.pairwise_exponent > 1.5  # ~quadratic
    print()
    print(data.render())


@pytest.mark.parametrize("n", [128, 512])
def test_drowsy_grouping_speed(benchmark, n):
    vms, hosts = _make_population(n, DEFAULT_PARAMS, trained_hours=24)
    groups = benchmark(drowsy_linear_grouping, vms, hosts, 25)
    assert sum(len(g) for g in groups) == n


@pytest.mark.parametrize("n", [128, 512])
def test_pairwise_matching_speed(benchmark, n):
    vms, hosts = _make_population(n, DEFAULT_PARAMS, trained_hours=24)
    groups = benchmark(pairwise_matching_grouping, vms, hosts, 25)
    assert sum(len(g) for g in groups) <= n
