"""E6 bench — Fig. 4: idleness-model quality over three years.

Paper checkpoints asserted per subfigure: predictable traces ramp to
F-measure > 0.9 within weeks (paper: >0.97); the comic-strips workload
needs long exposure for its yearly component; the LLMU trace reaches
specificity ~1 immediately.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig4_im_quality


def test_fig4_three_years(benchmark):
    data = run_once(benchmark, fig4_im_quality.run, 3)

    # (a) daily backup and (c-g) production traces: high F fast.
    for prefix in ("a", "c", "d", "e", "f", "g"):
        ev = data.by_name(prefix)
        assert ev.final_f_measure > 0.9, ev.trace_name
        assert data.f_measure_at(prefix, 6 * 7 * 24) > 0.85, ev.trace_name

    # (b) comic strips: learning continues over years — the final score
    # beats the 4-week score, and the yearly holiday pattern is learned
    # (specificity well above the no-yearly-knowledge level).
    b = data.by_name("b")
    assert b.final_f_measure > 0.9
    assert b.final_specificity > 0.5

    # (h) LLMU: specificity ~= 1 ("perfectly and quickly recognized").
    assert data.by_name("h").final_specificity > 0.995

    print()
    print(data.render())


def test_fig4_one_year_fast(benchmark):
    """Smaller configuration for quick regression tracking."""
    data = run_once(benchmark, fig4_im_quality.run, 1)
    assert data.by_name("a").final_f_measure > 0.95
