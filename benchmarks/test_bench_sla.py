"""E5 bench — §VI-A.3 SLA (event-driven request-level run).

Paper: >99 % of requests within 200 ms; wake-triggered requests up to
~1500 ms, reduced to ~800 ms by the quick resume.
"""

from benchmarks.conftest import run_once
from repro.experiments import sla_latency


def test_sla_latency(benchmark):
    data = run_once(benchmark, sla_latency.run, 2)
    opt, base = data.optimized, data.baseline

    assert opt.sla_met, "the 200 ms SLA must hold for >99 % of requests"
    assert base.sla_met
    # The wake tail is bounded by resume latency + service time and the
    # optimized resume clearly beats the baseline.
    assert opt.max_wake_latency_s < 1.2
    assert base.max_wake_latency_s < 2.0
    assert opt.max_wake_latency_s < base.max_wake_latency_s
    # Wake-ups stay a small minority of requests.
    assert opt.wake_fraction < 0.05
    print()
    print(data.render())
