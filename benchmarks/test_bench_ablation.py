"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one Drowsy-DC mechanism and checks the direction
of the effect the paper attributes to it.
"""


from benchmarks.conftest import run_once
from repro.analysis.evaluation import evaluate_traces
from repro.core.params import DEFAULT_PARAMS
from repro.experiments import backup_anticipation, energy_totals, suspending_eval
from repro.traces.synthetic import comic_strips_trace


def test_weight_learning_ablation(benchmark):
    """Learned weights must help on the multi-scale comic-strips trace."""
    traces = [comic_strips_trace(years=2)]

    def run_both():
        learned = evaluate_traces(traces, DEFAULT_PARAMS)[0]
        fixed = evaluate_traces(
            traces, DEFAULT_PARAMS.replace(learn_weights=False))[0]
        return learned, fixed

    learned, fixed = run_once(benchmark, run_both)
    assert learned.final_specificity >= fixed.final_specificity - 0.02, \
        "weight learning should not hurt active-hour prediction"
    assert learned.final_f_measure > 0.9


def test_scales_ablation(benchmark):
    """All four calendar scales beat the day-only model on weekly data."""
    from repro.traces.production import production_trace

    trace = production_trace(1, days=120)  # weekday pattern

    def run_both():
        full = evaluate_traces([trace], DEFAULT_PARAMS)[0]
        day_only = evaluate_traces(
            [trace],
            DEFAULT_PARAMS.replace(use_weekly_scale=False,
                                   use_monthly_scale=False,
                                   use_yearly_scale=False))[0]
        return full, day_only

    full, day_only = run_once(benchmark, run_both)
    assert full.final_f_measure >= day_only.final_f_measure - 0.01
    # The weekday trace's weekend idleness needs the weekly scale for
    # active-hour prediction.
    assert full.final_specificity >= day_only.final_specificity - 0.01


def test_opportunistic_step_ablation(benchmark):
    """Without the 7-sigma step, Drowsy-DC's normal mode saves less."""
    from repro.api import Simulation
    from repro.experiments.common import build_fleet
    from repro.sim.hourly import HourlyConfig

    def run_pair():
        energies = {}
        for label, opportunistic in (("on", True), ("off", False)):
            params = DEFAULT_PARAMS.replace(opportunistic_step=opportunistic)
            dc = build_fleet(6, 24, 1.0, hours=5 * 24, params=params, seed=3)
            sim = Simulation(dc, "drowsy", params=params,
                             config=HourlyConfig(power_off_empty=False))
            energies[label] = sim.run(5 * 24).total_energy_kwh
        return energies

    energies = run_once(benchmark, run_pair)
    assert energies["on"] <= energies["off"] * 1.02, \
        "the opportunistic step must not cost energy"


def test_grace_ablation(benchmark):
    """Grace time trades a little energy for far fewer power cycles."""
    data = run_once(benchmark, suspending_eval.run)
    assert data.cycles_with_grace < data.cycles_without_grace
    # At least a 25 % cycle reduction on the flapping workload.
    assert data.cycles_with_grace <= 0.75 * data.cycles_without_grace


def test_ahead_wake_ablation(benchmark):
    """Scheduled wakes must land before the timer, not after."""
    def run_pair():
        with_ahead = backup_anticipation.run(days=2)
        without = backup_anticipation.run(
            days=2, params=DEFAULT_PARAMS.replace(ahead_of_time_wake=False))
        return with_ahead, without

    with_ahead, without = run_once(benchmark, run_pair)
    assert with_ahead.all_anticipated
    assert not without.all_anticipated
    assert min(with_ahead.margins_s) > 0.0
    assert min(without.margins_s) < 0.0


def test_adaptive_alpha_beta_extension(benchmark):
    """Paper future work: dynamic alpha/beta from activity variation.

    On a regime-switching workload (pattern flips after a year) the
    adaptive model must not be worse than the fixed (0.7, 0.5) model.
    """
    import numpy as np

    from repro.core.adaptive import AdaptiveIdlenessModel
    from repro.core.metrics import ConfusionCounts
    from repro.core.model import IdlenessModel

    def run_pair():
        rng = np.random.default_rng(5)
        hours = 2 * 365 * 24
        # Year 1: nightly batch; year 2: business hours; noisy levels.
        acts = np.empty(hours)
        for h in range(hours):
            hod = h % 24
            if h < 365 * 24:
                active = hod in (1, 2, 3)
            else:
                active = 9 <= hod <= 17 and ((h // 24) % 7) < 5
            acts[h] = rng.uniform(0.05, 0.95) if active else 0.0
        scores = {}
        for label, model in (("fixed", IdlenessModel()),
                             ("adaptive", AdaptiveIdlenessModel())):
            counts = ConfusionCounts()
            for h in range(hours):
                pred, actual = model.predict_and_observe(h, float(acts[h]))
                counts.update(pred, actual)
            scores[label] = counts.f_measure
        return scores

    scores = run_once(benchmark, run_pair)
    assert scores["adaptive"] >= scores["fixed"] - 0.03
    print(f"\nregime-switch F: fixed={scores['fixed']:.3f} "
          f"adaptive={scores['adaptive']:.3f}")


def test_consolidation_value_ablation(benchmark):
    """Drowsy-DC's gains come from placement, not only from S3: the gap
    between Drowsy and Neat+S3 (identical suspension machinery) is the
    placement contribution (paper: 27 %)."""
    data = run_once(benchmark, energy_totals.run, 5)
    placement_gain = data.saving_vs_neat_s3_pct
    assert placement_gain > 10.0
    print(f"\nplacement-only contribution: {placement_gain:.0f} % "
          f"(paper: ~27 %)")
