"""E13 bench — §III-D-a: the idleness weigher at VM creation time."""

from benchmarks.conftest import run_once
from repro.experiments import initial_placement


def test_initial_placement_weigher(benchmark):
    data = run_once(benchmark, initial_placement.run, 5)
    # The weigher must not disturb *more* sleeping hosts than vanilla
    # Nova, and must not cost energy.
    assert (data.drowsy.sleepy_hosts_disturbed
            <= data.vanilla.sleepy_hosts_disturbed)
    assert data.drowsy.energy_kwh <= data.vanilla.energy_kwh * 1.02
    assert data.drowsy.placed == data.vanilla.placed
    print()
    print(data.render())
