"""E12 bench — §V: waking-module fault tolerance under failure injection."""

from benchmarks.conftest import run_once
from repro.experiments import waking_failover


def test_failover_service_continuity(benchmark):
    data = run_once(benchmark, waking_failover.run, 2)
    assert data.failovers == 1
    assert data.service_continued, \
        "hosts must keep waking after the primary module crashes"
    assert data.wol_after_crash > 0
    assert data.sla.sla_met, "the SLA must survive the failover"
    assert data.detection_delay_s <= 5.0
    print()
    print(data.render())
