"""E4 bench — §VI-A.3 energy totals (paper: 40 / 24 / 18 kWh).

Asserted shape: strict ordering Drowsy < Neat+S3 < Neat-no-suspend, a
~2x saving vs no suspension and a >=15 % saving vs naive S3.
"""

from benchmarks.conftest import run_once
from repro.experiments import energy_totals


def test_energy_totals(benchmark):
    data = run_once(benchmark, energy_totals.run, 7)
    assert data.drowsy.energy_kwh < data.neat_s3.energy_kwh \
        < data.neat_no_suspend.energy_kwh
    # Paper: ~55 % vs no-suspension, ~27 % vs Neat+S3 (generous bands).
    assert 35 <= data.saving_vs_no_suspend_pct <= 70
    assert 15 <= data.saving_vs_neat_s3_pct <= 45
    # Absolute scale sanity: 4 testbed hosts for a week, tens of kWh.
    assert 10 < data.neat_no_suspend.energy_kwh < 60
    print()
    print(data.render())
