"""Observability layer benches (DESIGN.md §17).

Two overhead floors, both against the same fleet/seed (the runs are
bit-identical, so any wall-clock delta IS the telemetry cost):

* telemetry **off** must be free: building a simulation with a
  disabled ``TelemetryConfig`` installs zero hooks, so its wall-clock
  must sit within 1 % of a run built with no config at all;
* **metrics on** has a measured price: one pulled counter sample per
  hour boundary must cost < 5 %.

Both gates are noise-aware like the checkpoint/fault benches: a box
whose identical plain runs spread wider than the gate cannot resolve
the delta, so the ceiling grows to the measured noise (and to 15 % in
CI).  Measured overheads land in BENCH_PR.json (``extra_info``) for
the per-PR perf trajectory.
"""

import os
import time

from benchmarks.conftest import run_once
from repro.api import Simulation
from repro.experiments.common import build_fleet
from repro.obs import TelemetryConfig

HOURS = 72


def _run(telemetry=None, hours=HOURS):
    dc = build_fleet(n_hosts=16, n_vms=64, llmi_fraction=0.5,
                     hours=hours, seed=7)
    sim = Simulation(dc, "drowsy", "event", seed=7, telemetry=telemetry)
    t0 = time.perf_counter()
    result = sim.run(hours)
    return time.perf_counter() - t0, result, sim


def _interleaved(benchmark, feature_cfg):
    """Min-of-3 per side, alternating rounds so machine-load drift hits
    both sides equally instead of reading as feature overhead."""
    plain_times, feature_times = [], []
    for _ in range(2):
        plain_times.append(_run(None)[0])
        feature_times.append(_run(feature_cfg)[0])
    plain_s, plain_result, _ = _run(None)
    plain_times.append(plain_s)
    elapsed, result, sim = run_once(benchmark, _run, feature_cfg)
    feature_times.append(elapsed)
    assert result == plain_result  # telemetry perturbs nothing
    return plain_times, feature_times, result, sim


def test_telemetry_off_is_free(benchmark):
    """The off path adds no observer, no engine hook, no clock read —
    enforced here as a < 1 % wall-clock floor."""
    disabled = TelemetryConfig()
    plain_times, off_times, result, sim = _interleaved(benchmark, disabled)
    assert sim.telemetry is None        # nothing was installed
    assert sim.engine._obs is None
    plain_s, off_s = min(plain_times), min(off_times)

    overhead = off_s / plain_s - 1.0
    noise = max(plain_times) / min(plain_times) - 1.0
    benchmark.extra_info["plain_wall_s"] = plain_s
    benchmark.extra_info["telemetry_off_wall_s"] = off_s
    benchmark.extra_info["overhead_pct"] = 100.0 * overhead
    benchmark.extra_info["plain_noise_pct"] = 100.0 * noise
    ceiling = 0.15 if os.environ.get("CI") else max(0.01, noise)
    assert overhead <= ceiling, (
        f"telemetry-off costs {100 * overhead:.1f}% on the hot path "
        f"(ceiling {100 * ceiling:.0f}%)")


def test_metrics_on_overhead(benchmark):
    """Metrics sampling is one dict pull per hour boundary: < 5 %
    wall-clock, and the result must stay byte-identical."""
    cfg = TelemetryConfig(metrics=True)
    plain_times, on_times, result, sim = _interleaved(benchmark, cfg)
    assert result.telemetry is not None
    assert result.telemetry.hours == tuple(range(HOURS))
    plain_s, on_s = min(plain_times), min(on_times)

    overhead = on_s / plain_s - 1.0
    noise = max(plain_times) / min(plain_times) - 1.0
    benchmark.extra_info["plain_wall_s"] = plain_s
    benchmark.extra_info["metrics_on_wall_s"] = on_s
    benchmark.extra_info["overhead_pct"] = 100.0 * overhead
    benchmark.extra_info["plain_noise_pct"] = 100.0 * noise
    benchmark.extra_info["series_count"] = len(result.telemetry.series)
    ceiling = 0.15 if os.environ.get("CI") else max(0.05, noise)
    assert overhead <= ceiling, (
        f"metrics-on costs {100 * overhead:.1f}% "
        f"(ceiling {100 * ceiling:.0f}%)")
