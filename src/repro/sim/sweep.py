"""Sharded multi-core sweep runner (DESIGN.md §9).

The §VI-B-style scalability experiments are embarrassingly parallel:
every (controller × fleet size × seed) cell is an independent
simulation over its own data center.  :class:`SweepRunner` shards those
cells across worker processes — ``multiprocessing`` *spawn* context,
one fleet binding per worker — and reduces the results into a single
tidy :class:`SweepTable`.

Determinism is a hard requirement: a run sharded over N workers must
produce a table **byte-identical** to the serial run.  Three properties
make that hold (and are asserted by ``tests/test_sweep.py``):

* every cell is fully specified by its :class:`SweepCell` (fleet
  builder seed, controller name, horizon) and builds all of its state
  inside the worker;
* nothing in the simulation depends on per-process salt — host MACs and
  VM IPs derive from stable blake2b digests, not the salted builtin
  ``hash()`` (PYTHONHASHSEED varies across spawned workers);
* ``Pool.map`` preserves task order, and floats are serialized with
  ``repr`` (shortest round-trip form).
"""

from __future__ import annotations

import csv
import io
import os
import sqlite3
import time
from dataclasses import dataclass, fields
from multiprocessing import get_context
from pathlib import Path

from ..api.controllers import SWEEP_CONTROLLERS, build_controller
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..obs.log import get_logger
from ..resilience.io import atomic_target, atomic_write_text
from .hourly import HourlyConfig

log = get_logger("sweep")

#: The controllers the standard sweep grids cycle through.  Name
#: resolution happens in :data:`repro.api.controllers` — this tuple
#: (re-exported from there) only picks the default comparison set.
CONTROLLER_NAMES = SWEEP_CONTROLLERS

#: Backwards-compatible alias: cells and the scenario compiler used to
#: resolve controllers here; the registry is the one path now.
_build_controller = build_controller


def spawn_context():
    """The package's one multiprocessing start-method choice: *spawn*
    (every worker imports fresh — safe under pytest-xdist, identical
    semantics on Linux and macOS).  Shared by :class:`SweepRunner` and
    the sharded backend's process transport."""
    return get_context("spawn")


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation cell of the sweep grid."""

    controller: str
    n_vms: int
    seed: int
    hours: int = 168
    #: 0 means the default geometry of the fleet bench: 4 VMs per host.
    n_hosts: int = 0
    llmi_fraction: float = 0.5
    suspend_enabled: bool = True
    #: Drowsy's §VI-A.1 periodic full-relocation evaluation mode (the
    #: mode the E8 comparison runs it in); meaningless for reactive
    #: baselines, which ignore it.
    relocate_all: bool = False
    params: DrowsyParams = DEFAULT_PARAMS

    @property
    def resolved_hosts(self) -> int:
        return self.n_hosts or max(1, self.n_vms // 4)


@dataclass(frozen=True)
class SweepRow:
    """One result row of the tidy sweep table."""

    controller: str
    n_vms: int
    n_hosts: int
    seed: int
    hours: int
    energy_kwh: float
    slatah: float
    esv: float
    migrations: int
    suspend_cycles: int
    suspended_fraction: float
    #: Deterministic activity columns (DESIGN.md §17): host-hours the
    #: fleet spent awake / overloaded.  Simulated-state counts, so they
    #: are byte-identical across worker counts like every other column.
    active_host_hours: int = 0
    overload_host_hours: int = 0


def run_cell(cell: SweepCell) -> SweepRow:
    """Run one sweep cell (top-level so spawn workers can pickle it)."""
    from ..api import Simulation
    from ..experiments.common import build_fleet

    dc = build_fleet(cell.resolved_hosts, cell.n_vms, cell.llmi_fraction,
                     cell.hours, cell.params, seed=cell.seed)
    sim = Simulation(
        dc, cell.controller, "hourly", params=cell.params,
        config=HourlyConfig(suspend_enabled=cell.suspend_enabled,
                            relocate_all_mode=cell.relocate_all))
    result = sim.run(cell.hours)
    return SweepRow(
        controller=cell.controller,
        n_vms=cell.n_vms,
        n_hosts=cell.resolved_hosts,
        seed=cell.seed,
        hours=cell.hours,
        energy_kwh=result.total_energy_kwh,
        slatah=result.slatah,
        esv=result.esv,
        migrations=result.migrations,
        suspend_cycles=result.total_suspend_cycles,
        suspended_fraction=result.global_suspended_fraction,
        active_host_hours=int(result.active_host_hours or 0),
        overload_host_hours=int(result.overload_host_hours or 0),
    )


@dataclass(frozen=True)
class EventParityCell:
    """One event-driven acceptance run (oracle or batched hot path).

    The simulator-throughput bench compares the per-host oracle event
    path against the batched one on the same workload; the two runs are
    independent simulations over their own fleets, so they shard across
    cores exactly like E8 cells — the oracle run (~8-10x slower)
    overlaps the batched one instead of serializing behind it.
    """

    n_vms: int
    hours: int
    batched: bool
    seed: int = 7
    llmi_fraction: float = 0.5
    adaptive_checks: bool = False


def run_event_parity_cell(cell: EventParityCell):
    """Run one acceptance cell; returns ``(RunResult, wall_s)`` with
    the wall-clock measured inside the worker (top-level so spawn
    workers can pickle it)."""
    import time

    from ..api import Simulation
    from ..experiments.common import build_fleet
    from .event_driven import EventConfig

    dc = build_fleet(max(1, cell.n_vms // 4), cell.n_vms,
                     cell.llmi_fraction, max(cell.hours, 24),
                     seed=cell.seed)
    sim = Simulation(
        dc, "drowsy", "event",
        config=EventConfig(use_batched_checks=cell.batched,
                           use_bulk_requests=cell.batched,
                           adaptive_checks=cell.adaptive_checks))
    t0 = time.perf_counter()
    result = sim.run(cell.hours)
    return result, time.perf_counter() - t0


def grid(controllers=("drowsy", "neat", "oasis"),
         sizes=(64,), seeds=(7,), hours: int = 168,
         llmi_fraction: float = 0.5,
         params: DrowsyParams = DEFAULT_PARAMS) -> list[SweepCell]:
    """The standard (controller × fleet-size × seed) cell grid.

    Drowsy cells run in the paper's periodic-relocation evaluation mode
    (§VI-A.1), like the E8 comparison; reactive baselines run their
    normal migration loop.
    """
    return [SweepCell(controller=c, n_vms=n, seed=s, hours=hours,
                      llmi_fraction=llmi_fraction,
                      relocate_all=c == "drowsy", params=params)
            for c in controllers for n in sizes for s in seeds]


def _pyarrow():
    """Optional pyarrow import, gated with an actionable error (the
    container may not ship it; sqlite and CSV always work)."""
    try:
        import pyarrow as pa
        import pyarrow.parquet as pq
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise RuntimeError(
            "parquet sweep tables need pyarrow (pip install pyarrow); "
            "write .sqlite or .csv instead") from exc
    return pa, pq


@dataclass
class SweepTable:
    """Tidy result table of a sweep (one row per cell, task order).

    The persistence machinery is row-type generic: subclasses point
    ``row_type`` at their own frozen row dataclass (flat ``str`` /
    ``int`` / ``float`` fields) and ``_TABLE`` at their SQLite table
    name — see :class:`repro.scenarios.sweep.ScenarioTable`.
    """

    rows: list[SweepRow]

    #: Row dataclass of this table type (overridden by subclasses).
    row_type = SweepRow
    #: SQLite table the rows land in.
    _TABLE = "sweep"

    def to_csv(self) -> str:
        """Deterministic CSV: floats via ``repr`` (shortest round-trip),
        rows in task order — byte-identical across worker counts."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        names = [f.name for f in fields(self.row_type)]
        writer.writerow(names)
        for row in self.rows:
            writer.writerow(
                [repr(v) if isinstance(v, float) else v
                 for v in (getattr(row, n) for n in names)])
        return buf.getvalue()

    # ------------------------------------------------------------------
    # persistence (longitudinal dashboards; CSV stays the default)
    # ------------------------------------------------------------------
    #: save/load format registry: suffix -> canonical kind.  One place
    #: to extend when a format is added.
    _SUFFIX_KIND = {".csv": "csv", ".sqlite": "sqlite",
                    ".sqlite3": "sqlite", ".db": "sqlite",
                    ".parquet": "parquet"}

    @classmethod
    def _kind(cls, path: str | Path) -> str:
        suffix = Path(path).suffix.lower()
        kind = cls._SUFFIX_KIND.get(suffix)
        if kind is None:
            raise ValueError(
                f"unknown sweep table format {suffix!r}; "
                f"expected one of {', '.join(sorted(cls._SUFFIX_KIND))}")
        return kind

    @classmethod
    def check_writable(cls, path: str | Path) -> None:
        """Validate a :meth:`save` target without writing anything —
        callers (the CLI) fail fast on a bad suffix, a missing pyarrow
        or an unwritable directory *before* running an hours-long
        sweep."""
        if cls._kind(path) == "parquet":
            _pyarrow()
        parent = Path(path).resolve().parent
        if not parent.is_dir():
            raise ValueError(f"directory {parent} does not exist")
        if not os.access(parent, os.W_OK):
            raise ValueError(f"directory {parent} is not writable")

    def save(self, path: str | Path) -> None:
        """Write the table to ``path``, dispatching on the suffix:
        ``.csv`` (default interchange), ``.sqlite``/``.db``/``.sqlite3``
        (stdlib; *appends* one run per call) or ``.parquet`` (columnar;
        needs pyarrow).  Every format stores rows exactly — REAL/float64
        preserves every bit of the measured floats — so ``load`` after
        ``save`` round-trips (for SQLite: the freshly appended run).

        All three formats write crash-safely (DESIGN.md §16): the
        bytes land in a sibling temp file that is atomically renamed
        over ``path``, so a SIGKILL mid-save leaves either the old
        file or the new one — never a truncated table."""
        kind = self._kind(path)
        if kind == "csv":
            atomic_write_text(path, self.to_csv())
        elif kind == "sqlite":
            self.to_sqlite(path)
        else:
            self.to_parquet(path)

    @classmethod
    def load(cls, path: str | Path) -> "SweepTable":
        """Read a table previously written by :meth:`save`."""
        kind = cls._kind(path)
        if kind == "csv":
            return cls.from_csv(Path(path).read_text())
        if kind == "sqlite":
            return cls.from_sqlite(path)
        return cls.from_parquet(path)

    @classmethod
    def from_csv(cls, text: str) -> "SweepTable":
        reader = csv.reader(io.StringIO(text))
        names = next(reader)
        expected = [f.name for f in fields(cls.row_type)]
        if names != expected:
            raise ValueError(f"unexpected CSV columns {names}")
        types = {f.name: f.type for f in fields(cls.row_type)}
        rows = [cls.row_type(**{n: (float(v) if types[n] == "float" else
                                    int(v) if types[n] == "int" else v)
                                for n, v in zip(names, raw)})
                for raw in reader]
        return cls(rows=rows)

    def to_sqlite(self, path: str | Path) -> int:
        """Append the rows to the ``sweep`` table of a SQLite file.

        Append (not replace): longitudinal dashboards accumulate one
        sweep per call into the same file, distinguished by a
        monotonically increasing ``run`` column (0, 1, 2, … — assigned
        here, deterministic, no wall-clock); row order within a run is
        task order (``rowid``).  Returns the run id just written.

        The append is atomic at the file level: the existing database
        is copied to a sibling temp file, the new run lands in the
        copy, and the copy is renamed over the original — a crash
        mid-append leaves the prior runs untouched.
        """
        table = self._TABLE
        names = [f.name for f in fields(self.row_type)]
        cols = ", ".join(
            f"{f.name} {'REAL' if f.type == 'float' else 'INTEGER' if f.type == 'int' else 'TEXT'}"
            for f in fields(self.row_type))
        path = Path(path)
        with atomic_target(path) as tmp:
            if path.exists():
                tmp.write_bytes(path.read_bytes())
            conn = sqlite3.connect(tmp)
            try:
                with conn:
                    conn.execute(
                        f"CREATE TABLE IF NOT EXISTS {table} "
                        f"(run INTEGER, {cols})")
                    run_id = conn.execute(
                        f"SELECT COALESCE(MAX(run), -1) + 1 "
                        f"FROM {table}").fetchone()[0]
                    conn.executemany(
                        f"INSERT INTO {table} (run, {', '.join(names)}) "
                        f"VALUES ({', '.join('?' * (len(names) + 1))})",
                        [(run_id, *(getattr(row, n) for n in names))
                         for row in self.rows])
            finally:
                conn.close()
        return run_id

    @classmethod
    def from_sqlite(cls, path: str | Path,
                    run: int | None = None) -> "SweepTable":
        """Read one run back (default: the latest — so ``load`` after
        ``save`` round-trips); ``run=N`` selects an earlier sweep."""
        table = cls._TABLE
        names = [f.name for f in fields(cls.row_type)]
        with sqlite3.connect(path) as conn:
            if run is None:
                run = conn.execute(
                    f"SELECT COALESCE(MAX(run), 0) FROM {table}").fetchone()[0]
            cur = conn.execute(
                f"SELECT {', '.join(names)} FROM {table} "
                "WHERE run = ? ORDER BY rowid", (run,))
            rows = [cls.row_type(**dict(zip(names, r))) for r in cur]
        return cls(rows=rows)

    def to_parquet(self, path: str | Path) -> None:
        """Columnar parquet via pyarrow (optional dependency)."""
        pa, pq = _pyarrow()
        names = [f.name for f in fields(self.row_type)]
        table = pa.table({n: [getattr(row, n) for row in self.rows]
                          for n in names})
        with atomic_target(path) as tmp:
            pq.write_table(table, str(tmp))

    @classmethod
    def from_parquet(cls, path: str | Path) -> "SweepTable":
        pa, pq = _pyarrow()
        table = pq.read_table(str(path))
        names = [f.name for f in fields(cls.row_type)]
        columns = {n: table.column(n).to_pylist() for n in names}
        rows = [cls.row_type(**{n: columns[n][i] for n in names})
                for i in range(table.num_rows)]
        return cls(rows=rows)

    def render(self) -> str:
        header = (f"{'controller':<17}{'VMs':>6}{'hosts':>7}{'seed':>6}"
                  f"{'hours':>7}{'kWh':>10}{'SLATAH':>9}{'migr':>7}"
                  f"{'susp':>7}{'drowsy %':>10}")
        lines = ["sweep results (one row per controller x size x seed cell)",
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.controller:<17}{row.n_vms:>6}{row.n_hosts:>7}"
                f"{row.seed:>6}{row.hours:>7}{row.energy_kwh:>10.1f}"
                f"{row.slatah:>9.4f}{row.migrations:>7}"
                f"{row.suspend_cycles:>7}"
                f"{100 * row.suspended_fraction:>9.1f}%")
        return "\n".join(lines)


class SweepRunner:
    """Shard independent simulation cells across worker processes.

    ``workers=1`` runs serially in-process (the reference path);
    ``workers=N`` uses a *spawn* pool — every worker imports the package
    fresh, builds each cell's fleet (and its own fleet binding) locally
    and sends back only the reduced row, so no simulator state crosses
    process boundaries.  ``map`` preserves task order either way.

    Crash safety (DESIGN.md §16): ``supervise`` swaps the plain pool
    for :func:`repro.resilience.supervised_map` — crashed or hung
    workers are respawned with exponential backoff and only the
    still-missing cells re-run, so the table stays byte-identical to
    the serial run no matter which workers died.  ``journal`` names a
    :class:`repro.resilience.SweepJournal` file (or a path to one):
    every finished row is appended there as it lands, and a rerun with
    the same journal skips the already-journaled cells — an
    interrupted sweep resumes instead of starting over.  Either option
    alone activates the supervised path.

    ``progress=True`` rewrites one ``cells done/total  ETA`` stderr
    line as rows land (TTY-gated; a no-op in batch logs and CI).  The
    line is pure reporting — rows, task order and the table bytes are
    untouched.
    """

    def __init__(self, workers: int = 1, mp_context: str = "spawn",
                 supervise=None, journal=None,
                 progress: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.mp_context = mp_context
        self.supervise = supervise
        self.journal = journal
        self.progress = bool(progress)

    def _journal(self):
        if self.journal is None or hasattr(self.journal, "append"):
            return self.journal
        from ..resilience import SweepJournal

        return SweepJournal(self.journal)

    def _tick(self, total: int):
        """A ``tick()`` that redraws the progress line, or ``None``."""
        if not self.progress:
            return None
        from ..obs.progress import progress_line

        t0 = time.time()
        done = [0]

        def tick() -> None:
            done[0] += 1
            progress_line(done[0], total, t0)

        return tick

    def map(self, fn, items: list) -> list:
        """Order-preserving map of a picklable top-level ``fn``."""
        items = list(items)
        journal = self._journal()
        tick = self._tick(len(items))
        log.debug("sweep: %d cells on %d worker(s)%s", len(items),
                  self.workers,
                  " [supervised]" if (self.supervise is not None
                                      or journal is not None) else "")
        if self.supervise is not None or journal is not None:
            from ..resilience import supervised_map

            ctx = (spawn_context() if self.mp_context == "spawn"
                   else get_context(self.mp_context))
            append = journal.append if journal is not None else None

            def on_result(index, row) -> None:
                if append is not None:
                    append(index, row)
                if tick is not None:
                    tick()

            return supervised_map(
                fn, items, self.workers, policy=self.supervise,
                mp_context=ctx,
                on_result=(on_result if (append is not None
                                         or tick is not None) else None),
                skip=journal.load() if journal is not None else None)
        if self.workers == 1 or len(items) <= 1:
            results = []
            for item in items:
                results.append(fn(item))
                if tick is not None:
                    tick()
            return results
        ctx = (spawn_context() if self.mp_context == "spawn"
               else get_context(self.mp_context))
        n_procs = min(self.workers, len(items))
        with ctx.Pool(processes=n_procs) as pool:
            if tick is None:
                return pool.map(fn, items, chunksize=1)
            # imap keeps task order and yields as rows land, so the
            # progress line advances while slow cells are in flight.
            results = []
            for row in pool.imap(fn, items, chunksize=1):
                results.append(row)
                tick()
            return results

    def run(self, cells: list[SweepCell]) -> SweepTable:
        """Run a grid of standard cells into a :class:`SweepTable`."""
        return SweepTable(rows=self.map(run_cell, cells))
