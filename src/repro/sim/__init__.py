"""Simulation drivers: analytic hourly loop and event-driven full stack."""

from .event_driven import EventConfig, EventDrivenSimulation, EventResult
from .hourly import HourlyConfig, HourlyResult, HourlySimulator
from .suspend_sweep import SuspendSweepScheduler
from .sweep import SweepCell, SweepRow, SweepRunner, SweepTable, grid, run_cell

__all__ = [
    "EventConfig",
    "EventDrivenSimulation",
    "EventResult",
    "HourlyConfig",
    "HourlyResult",
    "HourlySimulator",
    "SweepCell",
    "SweepRow",
    "SweepRunner",
    "SuspendSweepScheduler",
    "SweepTable",
    "grid",
    "run_cell",
]
