"""Fleet-wide suspend-check sweeps: a timer wheel of check deadlines.

The per-host event path schedules one heap event per host per
``suspend_check_period_s`` — at 256 hosts that is ~1.1 M heap
push/pop/evaluate cycles per simulated week, ~85 % of the event-driven
simulator's wall-clock.  :class:`SuspendSweepScheduler` replaces them
with one *sweep* event per distinct deadline: hosts rescheduled from the
same instant (the common case — the whole fleet starts aligned and
non-suspending hosts re-arm together) share a bucket, so the steady
state is a single event evaluating every ON host in one pass.

Bit-exactness argument (the parity suite and the hypothesis
interleaving test enforce this empirically):

* **Deadlines are preserved.**  A host's check fires at exactly the
  absolute time the per-host event would have — buckets are keyed by
  the float deadline, never quantized — so every ``evaluate(now)``
  sees the same clock, grace windows and hour state.
* **Within-timestamp order is preserved.**  The per-host path breaks
  ties by event sequence number, i.e. scheduling order; bucket entries
  are appended in scheduling order and swept in insertion order, and a
  bucket's sweep event carries the sequence number of its first
  insertion, so sweeps order against foreign same-time events the way
  the first member's check event would have.  (A foreign event
  scheduled at the exact float deadline *between* two insertions into
  an existing bucket could, in principle, interleave differently; check
  deadlines live on per-host ``resume + k·period`` grids while foreign
  events follow continuous request distributions, so an exact-time
  collision that also changes a verdict does not arise — the oracle
  comparison would surface it if it ever did.)
* **Cancellation is exact.**  Re-arming or cancelling a host bumps its
  registration token; stale bucket entries are skipped at sweep time,
  exactly like the kernel's tombstoned events, and a bucket whose last
  live entry is cancelled cancels its sweep event so
  ``events_processed`` accounting stays in lockstep.

The sweep handler credits ``k - 1`` coalesced events to the kernel (it
stands in for ``k`` per-host check events), keeping
``EventResult.events_processed`` — and thus the events/s throughput
metric — directly comparable with the per-host oracle path.
"""

from __future__ import annotations

from typing import Callable

from ..cluster.events import Event, EventSimulator
from ..cluster.host import Host


class _Bucket:
    """Hosts registered for one sweep deadline."""

    __slots__ = ("entries", "live", "event")

    def __init__(self) -> None:
        #: (host, token) in registration order.
        self.entries: list[tuple[Host, int]] = []
        self.live = 0
        self.event: Event | None = None


class SuspendSweepScheduler:
    """Timer wheel of per-host suspend-check deadlines.

    ``sweep(now, due_hosts)`` is the driver's batched evaluator; it is
    invoked with the live registrants of a deadline in registration
    order and is responsible for re-arming hosts via :meth:`schedule`.
    """

    def __init__(self, sim: EventSimulator,
                 sweep: Callable[[float, list[Host]], None]) -> None:
        self.sim = sim
        self._sweep = sweep
        self._buckets: dict[float, _Bucket] = {}
        #: host name -> (deadline, token) of its live registration.
        self._member: dict[str, tuple[float, int]] = {}
        self._token = 0
        #: Sweep events fired (telemetry: events saved vs the per-host
        #: path is ``checks_performed - sweeps_fired``).
        self.sweeps_fired = 0
        self.checks_performed = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of hosts with a live registration."""
        return len(self._member)

    def next_deadline(self, host: Host) -> float | None:
        """The host's registered check deadline, or None."""
        reg = self._member.get(host.name)
        return reg[0] if reg is not None else None

    def schedule(self, host: Host, deadline: float) -> None:
        """Register (or re-arm) the host's next check at ``deadline``."""
        self.cancel(host)
        bucket = self._buckets.get(deadline)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[deadline] = bucket
            bucket.event = self.sim.schedule_at(deadline, self._fire, deadline)
        self._token += 1
        bucket.entries.append((host, self._token))
        bucket.live += 1
        self._member[host.name] = (deadline, self._token)

    def cancel(self, host: Host) -> None:
        """Drop the host's live registration, if any (O(1) tombstone)."""
        reg = self._member.pop(host.name, None)
        if reg is None:
            return
        bucket = self._buckets.get(reg[0])
        if bucket is None:
            return
        bucket.live -= 1
        if bucket.live == 0:
            # Matches the per-host path, where cancelling the last check
            # at a timestamp leaves no event to process (or count).
            if bucket.event is not None:
                bucket.event.cancel()
            del self._buckets[reg[0]]

    # ------------------------------------------------------------------
    def _fire(self, deadline: float) -> None:
        bucket = self._buckets.pop(deadline, None)
        if bucket is None:  # pragma: no cover - cancel() removes eagerly
            return
        member = self._member
        due: list[Host] = []
        for host, token in bucket.entries:
            # Tokens are globally unique, so a token match implies the
            # registration is this bucket's (and still live).
            reg = member.get(host.name)
            if reg is not None and reg[1] == token:
                del member[host.name]
                due.append(host)
        if not due:  # pragma: no cover - guarded by bucket.live
            return
        # The sweep stands in for len(due) per-host check events.
        self.sim.count_coalesced(len(due) - 1)
        self.sweeps_fired += 1
        self.checks_performed += len(due)
        self._sweep(deadline, due)
