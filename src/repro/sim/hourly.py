"""Hour-resolution data-center simulator.

The idleness model, the traces and the consolidation all operate at the
paper's one-hour resolution, so fleet-scale energy experiments (Table I,
the kWh totals, the section VI-B sweep) run orders of magnitude faster
on an analytic hourly loop than on the request-level event simulator —
with the same power accounting, because transition latencies and
decision delays are still charged through the host state machine.

Sub-hour effects (oscillation, wake latency seen by requests) are the
event simulator's job (:mod:`repro.sim.event_driven`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cluster.accounting import HostAccounting, columnar_host_view
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..core.binding import FleetBinding
from ..core.calendar import time_of_hour
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..suspend.grace import grace_from_raw_ip

HourHook = Callable[[int, float], None]


def validate_shared_config(config) -> None:
    """The config contract both simulators share (DESIGN.md §13).

    Called from ``HourlyConfig.__post_init__`` and
    ``EventConfig.__post_init__`` so the resolution rule and the error
    wording cannot diverge: ``use_host_accounting=None`` follows
    ``use_fleet_model``; an explicit ``True`` without the fleet model
    is a contradiction and raises.
    """
    if config.use_host_accounting is None:
        object.__setattr__(config, "use_host_accounting",
                           config.use_fleet_model)
    elif config.use_host_accounting and not config.use_fleet_model:
        raise ValueError(
            "use_host_accounting=True requires use_fleet_model=True "
            "(the columnar host view is built on the fleet binding)")
    if config.consolidation_period_h < 1:
        raise ValueError("consolidation_period_h must be >= 1")


@dataclass(frozen=True)
class HourlyConfig:
    """Simulation options."""

    #: Enable host suspension (ACPI S3).  Off reproduces the
    #: "current real world case" baseline of section VI-A.1.
    suspend_enabled: bool = True
    #: Power empty hosts off (classic consolidation's S5 lever).
    power_off_empty: bool = True
    #: Run the consolidation controller every N hours.
    consolidation_period_h: int = 1
    #: Use Drowsy's periodic full-relocation evaluation mode (VI-A.1).
    relocate_all_mode: bool = False
    #: Maintain per-VM idleness models (required by Drowsy; optional for
    #: baselines, where it only costs time).
    update_models: bool = True
    #: Mean delay before the suspending module notices idleness
    #: (half the check period).
    decision_delay_s: float = 2.5
    #: Bind all VM idleness models into one columnar
    #: :class:`~repro.core.fleet.FleetIdlenessModel` and ingest each hour
    #: with a single vectorized update (DESIGN.md §6).  Bit-identical to
    #: the scalar per-VM path (see ``tests/test_fleet_binding.py``);
    #: disable only to benchmark the seed per-VM loop.
    use_fleet_model: bool = True
    #: Consume the columnar host-accounting view (used CPUs/memory, CPU
    #: utilization, all-idle flags, mean raw IP for every host from one
    #: vectorized pass per hour; DESIGN.md §8) for suspend checks,
    #: SLATAH accounting and controller host queries.  Bit-identical to
    #: the scalar per-host property loop, which remains the parity
    #: oracle.  ``None`` (the default) follows ``use_fleet_model``; an
    #: explicit ``True`` without the fleet model is a contradiction
    #: (the accounting view is built on the fleet binding) and raises.
    use_host_accounting: bool | None = None

    def __post_init__(self) -> None:
        validate_shared_config(self)


@dataclass
class HourlyResult:
    """Aggregated outcome of one simulation run."""

    hours: int
    controller_name: str
    energy_kwh_by_host: dict[str, float]
    suspended_fraction_by_host: dict[str, float]
    suspend_cycles_by_host: dict[str, int]
    migrations: int
    vm_migrations: dict[str, int]
    #: Host-hours an active host spent at saturated CPU, and host-hours
    #: hosts were active at all (Beloglazov's SLATAH numerator and
    #: denominator).
    overload_host_hours: int = 0
    active_host_hours: int = 0

    @property
    def total_energy_kwh(self) -> float:
        return sum(self.energy_kwh_by_host.values())

    @property
    def global_suspended_fraction(self) -> float:
        vals = list(self.suspended_fraction_by_host.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def slatah(self) -> float:
        """SLA violation Time per Active Host (Beloglazov's QoS metric):
        fraction of active host-hours spent at 100 % CPU."""
        if self.active_host_hours == 0:
            return 0.0
        return self.overload_host_hours / self.active_host_hours

    @property
    def esv(self) -> float:
        """Energy-SLA-Violation product (lower is better)."""
        return self.total_energy_kwh * self.slatah


class HourlySimulator:
    """Drive a data center and a consolidation controller hour by hour."""

    def __init__(self, dc: DataCenter, controller,
                 params: DrowsyParams = DEFAULT_PARAMS,
                 config: HourlyConfig = HourlyConfig(),
                 hour_hooks: tuple[HourHook, ...] = ()) -> None:
        self.dc = dc
        self.controller = controller
        self.params = params
        self.config = config
        self.hour_hooks = tuple(hour_hooks)
        self._overload_host_hours = 0
        self._active_host_hours = 0
        self._accounting_enabled = (config.use_fleet_model
                                    and config.use_host_accounting)
        self._binding = (FleetBinding.try_bind(
            dc, params, accounting=self._accounting_enabled)
            if config.use_fleet_model else None)
        self._update_models = (config.update_models
                               or getattr(controller, "uses_idleness", False))
        #: Controller-specific sleep veto (Oasis-style), hoisted: the
        #: controller never changes after construction.
        self._can_sleep = getattr(controller, "host_can_sleep", None)
        self._run_start = 0
        self._horizon: tuple[int, int] | None = None
        #: The next hour the main loop will process — advanced *before*
        #: the hour hooks fire, so a checkpoint taken by a hook resumes
        #: at exactly the right boundary (DESIGN.md §16).
        self._next_hour = 0
        self._migrations_before = 0
        #: Telemetry endpoint (DESIGN.md §17), installed by a
        #: metrics/trace-enabled run; stays ``None`` — zero hooks,
        #: zero clock reads — otherwise.
        self._obs = None

    # ------------------------------------------------------------------
    def run(self, n_hours: int, start_hour: int = 0) -> HourlyResult:
        if n_hours <= 0:
            raise ValueError("n_hours must be positive")
        if self.config.use_fleet_model and (
                self._binding is None
                or not self._binding.covers(self.dc.vms)):
            # The fleet may have grown since construction: rebind so the
            # columnar path survives VM arrivals between runs.
            self._binding = FleetBinding.try_bind(
                self.dc, self.params, accounting=self._accounting_enabled)
        if self._binding is not None:
            self._binding.ensure_horizon(start_hour, n_hours)
        self._run_start = start_hour
        self._horizon = (start_hour, n_hours)
        self._next_hour = start_hour
        self._migrations_before = len(self.dc.migrations)
        return self._drive()

    def continue_run(self) -> HourlyResult:
        """Finish a run restored from a checkpoint: re-enter the hour
        loop at the recorded boundary.  All loop state lives on the
        engine, so the remaining hours execute exactly as the
        uninterrupted run would have."""
        if self._horizon is None:
            raise RuntimeError("no run in progress to continue")
        return self._drive()

    def _drive(self) -> HourlyResult:
        start_hour, n_hours = self._horizon
        for t in range(self._next_hour, start_hour + n_hours):
            self._hour(t)
        end = time_of_hour(start_hour + n_hours)
        self.dc.sync_meters(end)
        return self._result(n_hours, self._migrations_before)

    # ------------------------------------------------------------------
    def rebind_fleet(self) -> None:
        """Re-bind the columnar fleet model to the current VM population.

        Scenario churn (DESIGN.md §12) places and removes VMs mid-run;
        a newly placed VM carries a scalar model, so the binding no
        longer covers the fleet and every hour would fall back to the
        per-VM path.  Churn hooks call this after changing the
        population: newcomers join fresh fleet rows (existing model
        state imports bit-exactly) and the horizon matrix is rebuilt.
        """
        if not self.config.use_fleet_model:
            return
        self._binding = FleetBinding.try_bind(
            self.dc, self.params, accounting=self._accounting_enabled)
        if self._binding is not None and self._horizon is not None:
            self._binding.ensure_horizon(*self._horizon)

    # ------------------------------------------------------------------
    def _hour(self, t: int) -> None:
        now = time_of_hour(t)
        cfg = self.config
        # Per-hour invariants, hoisted: the VM population only changes
        # between hours, never inside the steps below.
        vms = self.dc.vms
        hosts = self.dc.hosts

        # 1. Charge the previous hour, load this hour's activities.
        #    With an active binding the load is one matrix-column read;
        #    the binding opts out when unbound VMs joined the fleet.
        binding = self._binding
        activities = None
        acc: HostAccounting | None = None
        if binding is not None and binding.covers(vms):
            if self._accounting_enabled:
                acc = columnar_host_view(self.dc)
            # The meter charges [previous sync, now] at the *previous*
            # hour's utilization; the accounting column for t-1 over the
            # current placement is exactly that value for every host.
            if acc is not None and t > self._run_start:
                self.dc.sync_meters(now, acc.cpu_utilization(t - 1))
            else:
                self.dc.sync_meters(now)
            activities = binding.load_hour(t)
        else:
            self.dc.set_hour_activities(t, now)
        self.controller.observe_hour(t)

        # 2. Consolidation decisions use models trained through t-1
        #    (they predict idleness of the *next* interval, section III).
        obs = self._obs
        if t % cfg.consolidation_period_h == 0:
            if obs is not None:
                obs.phase_begin("consolidate")
            if cfg.relocate_all_mode and hasattr(self.controller, "relocate_all"):
                self.controller.relocate_all(t, now)
            else:
                self.controller.step(t, now)
            if obs is not None:
                obs.phase_end()

        # 3. Learn this hour's activity: one vectorized update for the
        #    whole fleet, or the scalar per-VM loop when unbound.
        if self._update_models:
            if activities is not None:
                binding.observe(t, activities)
            else:
                for vm in vms:
                    vm.model.observe(t, vm.current_activity)

        # 4. Power-state bookkeeping for the hour.  With an active
        #    accounting view the suspend predicate (non-empty, all VMs
        #    idle) comes from one columnar pass instead of per-VM sums;
        #    controller migrations in step 2 already bumped the
        #    placement epoch, so the flags see the new placement.
        sleep_flags = None
        if acc is not None and self._can_sleep is None and cfg.suspend_enabled:
            sleep_flags = acc.sleepable(t)
        for k, host in enumerate(hosts):
            self._host_power_step(
                host, t, now, acc,
                None if sleep_flags is None else bool(sleep_flags[k]))

        # 5. QoS accounting (Beloglazov's SLATAH): an active host whose
        #    CPU demand saturates capacity is failing its VMs this hour.
        if acc is not None:
            on = np.fromiter(
                (h.state is PowerState.ON and bool(h.vms) for h in hosts),
                dtype=bool, count=len(hosts))
            self._active_host_hours += int(on.sum())
            overloaded = on & (acc.cpu_demand(t) >= acc.overload_cpus())
            self._overload_host_hours += int(overloaded.sum())
        else:
            for host in hosts:
                if host.state is PowerState.ON and host.vms:
                    self._active_host_hours += 1
                    demand = sum(vm.current_activity * vm.resources.cpus
                                 for vm in host.vms)
                    if demand >= host.capacity.cpus * 0.999:
                        self._overload_host_hours += 1

        self._next_hour = t + 1
        if obs is not None:
            obs.hour_mark(t)
        for hook in self.hour_hooks:
            hook(t, now)

    # ------------------------------------------------------------------
    def telemetry_sample(self) -> dict:
        """Cumulative engine counters for the telemetry runtime
        (DESIGN.md §17) — sampled at hour boundaries, never pushed, so
        the metrics-off path costs nothing."""
        return {
            "migrations": len(self.dc.migrations),
            "active_host_hours": self._active_host_hours,
            "overload_host_hours": self._overload_host_hours,
            "hosts_suspended": sum(
                1 for h in self.dc.hosts
                if h.state is PowerState.SUSPENDED),
        }

    # ------------------------------------------------------------------
    def _host_sleepable(self, host: Host) -> bool:
        """Controller-specific 'may this host sleep this hour?'."""
        if self._can_sleep is not None:  # Oasis-style policies
            return self._can_sleep(host)
        return bool(host.vms) and host.all_vms_idle

    def _host_power_step(self, host: Host, t: int, now: float,
                         acc: HostAccounting | None = None,
                         sleepable_hint: bool | None = None) -> None:
        cfg, p = self.config, self.params

        if host.state is PowerState.CRASHED:
            # Fault injection owns crashed hosts: no power decisions
            # until the injector's recovery schedule reboots them.
            return
        # Empty hosts: classic consolidation powers them off.
        if not host.vms:
            if cfg.power_off_empty and host.state is PowerState.ON:
                host.power_off(now)
            return
        if host.state is PowerState.OFF:
            # Host received VMs while off (placement onto S5 is filtered
            # out by controllers, but relocate_all may use any managed
            # host) -- power it back on.
            host.power_on(now)

        if sleepable_hint is not None:
            sleepable = sleepable_hint
        else:
            sleepable = cfg.suspend_enabled and self._host_sleepable(host)

        if host.state is PowerState.SUSPENDED:
            if not sleepable:
                # Activity resumed: timer fired / request arrived at the
                # start of the active hour; charge the resume.
                host.begin_resume(now)
                grace = self._grace(host, t, acc)
                host.finish_resume(now + p.resume_latency_s, grace)
            return

        if host.state is PowerState.ON and sleepable:
            begin = now + cfg.decision_delay_s
            if p.use_grace and host.in_grace(begin):
                begin = host.grace_until
            # Suspend only pays off if the hour has room left.
            if begin + p.suspend_latency_s < now + 3600.0:
                host.begin_suspend(begin)
                host.finish_suspend(begin + p.suspend_latency_s)

    def _grace(self, host: Host, t: int,
               acc: HostAccounting | None = None) -> float:
        if not self.params.use_grace:
            return 0.0
        if acc is not None:
            mean_ip = float(acc.mean_raw_ip(t)[acc.pos(host)])
        else:
            mean_ip = host.mean_raw_ip(t)
        return grace_from_raw_ip(mean_ip, self.params)

    # ------------------------------------------------------------------
    def _result(self, n_hours: int, migrations_before: int) -> HourlyResult:
        return HourlyResult(
            hours=n_hours,
            controller_name=self.controller.name,
            energy_kwh_by_host={h.name: h.meter.energy_kwh for h in self.dc.hosts},
            suspended_fraction_by_host={
                h.name: h.meter.suspended_fraction for h in self.dc.hosts},
            suspend_cycles_by_host={h.name: h.suspend_count for h in self.dc.hosts},
            migrations=len(self.dc.migrations) - migrations_before,
            vm_migrations={vm.name: vm.migrations for vm in self.dc.vms},
            overload_host_hours=self._overload_host_hours,
            active_host_hours=self._active_host_hours,
        )
