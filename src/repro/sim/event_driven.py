"""Request-level event-driven simulation (the "real environment" of §VI-A).

Wires every runtime component the paper deploys on the testbed:

* per-host :class:`~repro.suspend.module.SuspendingModule` instances
  polling idleness every few seconds, honouring grace times and
  computing waking dates from the hrtimer tree;
* a rack :class:`~repro.waking.failover.ReplicatedWakingService` on the
  SDN switch, waking hosts on inbound requests (WoL) and ahead of
  scheduled dates;
* the :class:`~repro.network.sdn.SDNSwitch` carrying open-loop client
  requests whose rate follows each VM's trace;
* hourly trace/model/consolidation ticks identical to the hourly
  simulator.

This is the driver for Fig. 2, Table I, the energy totals, the SLA
results and the suspending/waking module evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.accounting import columnar_host_view
from ..cluster.datacenter import DataCenter
from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.vm import VM
from ..core.binding import FleetBinding
from ..core.calendar import time_of_hour
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..network.requests import Request, RequestProfile
from ..network.sdn import SDNSwitch
from ..suspend.grace import grace_from_raw_ip
from ..suspend.module import SuspendingModule
from ..waking.failover import ReplicatedWakingService
from ..waking.packets import WoLPacket


@dataclass(frozen=True)
class EventConfig:
    """Options for the event-driven run."""

    suspend_enabled: bool = True
    consolidation_period_h: int = 1
    relocate_all_mode: bool = False
    update_models: bool = True
    request_profile: RequestProfile = RequestProfile()
    seed: int = 12345
    #: Columnar idleness-model hot path (one vectorized update per hour
    #: instead of the per-VM loop; DESIGN.md §6).  Bit-identical to the
    #: scalar path; disable only for benchmarking the seed loop.
    use_fleet_model: bool = True
    #: Consume the columnar host-accounting view (DESIGN.md §8) for the
    #: hourly meter sync and post-resume grace windows.  Bit-identical
    #: to the scalar per-host properties; requires ``use_fleet_model``.
    use_host_accounting: bool = True


@dataclass
class EventResult:
    """Outcome of an event-driven run."""

    hours: int
    controller_name: str
    energy_kwh_by_host: dict[str, float]
    suspended_fraction_by_host: dict[str, float]
    suspend_cycles_by_host: dict[str, int]
    resume_cycles_by_host: dict[str, int]
    migrations: int
    vm_migrations: dict[str, int]
    request_summary: dict[str, float]
    wol_sent: int
    events_processed: int

    @property
    def total_energy_kwh(self) -> float:
        return sum(self.energy_kwh_by_host.values())

    @property
    def global_suspended_fraction(self) -> float:
        vals = list(self.suspended_fraction_by_host.values())
        return sum(vals) / len(vals) if vals else 0.0


class EventDrivenSimulation:
    """Full-stack Drowsy-DC simulation."""

    def __init__(self, dc: DataCenter, controller,
                 params: DrowsyParams = DEFAULT_PARAMS,
                 config: EventConfig = EventConfig(),
                 hour_hooks: tuple = ()) -> None:
        self.dc = dc
        self.controller = controller
        self.params = params
        self.config = config
        self.hour_hooks = tuple(hour_hooks)
        self.sim = EventSimulator()
        self.rng = np.random.default_rng(config.seed)
        self.switch = SDNSwitch(self.sim, dc, params)
        self.waking = ReplicatedWakingService(self.sim, self._on_wol, params)
        self.switch.waking_service = self.waking
        self.switch.wol_sender = self._on_wol
        self.suspending = {h.name: SuspendingModule(h, params) for h in dc.hosts}
        self._check_events: dict[str, object] = {}
        self._resume_pending: set[str] = set()
        self._current_hour = 0
        self._accounting_enabled = (config.use_fleet_model
                                    and config.use_host_accounting)
        self._binding = (FleetBinding.try_bind(
            dc, params, accounting=self._accounting_enabled)
            if config.use_fleet_model else None)
        self._run_start = 0
        #: Did the last hour tick take the columnar path?  Gates the
        #: sub-hour accounting reads (grace on resume).
        self._fleet_active = False

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, n_hours: int, start_hour: int = 0) -> EventResult:
        if n_hours <= 0:
            raise ValueError("n_hours must be positive")
        if self.config.use_fleet_model and (
                self._binding is None
                or not self._binding.covers(self.dc.vms)):
            # Rebind so the columnar path survives VM arrivals.
            self._binding = FleetBinding.try_bind(
                self.dc, self.params, accounting=self._accounting_enabled)
        if self._binding is not None:
            self._binding.ensure_horizon(start_hour, n_hours)
        self._run_start = start_hour
        migrations_before = len(self.dc.migrations)
        for t in range(start_hour, start_hour + n_hours):
            self.sim.schedule_at(time_of_hour(t), self._hour_tick, t)
        if self.config.suspend_enabled:
            for host in self.dc.hosts:
                self._schedule_check(host, delay=self.params.suspend_check_period_s)
        end = time_of_hour(start_hour + n_hours)
        self.sim.run_until(end)
        self.dc.sync_meters(end)
        return self._result(n_hours, migrations_before)

    # ------------------------------------------------------------------
    def _hour_tick(self, t: int) -> None:
        now = self.sim.now
        self._current_hour = t
        vms = self.dc.vms
        binding = self._binding
        activities = None
        if binding is not None and binding.covers(vms):
            # Columnar hot path: one matrix-column load (DESIGN.md §6),
            # with the hourly meter charge fed the previous hour's
            # columnar utilizations (DESIGN.md §8).
            acc = (columnar_host_view(self.dc)
                   if self._accounting_enabled else None)
            if acc is not None and t > self._run_start:
                self.dc.sync_meters(now, acc.cpu_utilization(t - 1))
            else:
                self.dc.sync_meters(now)
            activities = binding.load_hour(t)
        else:
            self.dc.set_hour_activities(t, now)
        self._fleet_active = activities is not None
        self.controller.observe_hour(t)

        if t % self.config.consolidation_period_h == 0:
            if self.config.relocate_all_mode and hasattr(self.controller, "relocate_all"):
                self.controller.relocate_all(t, now)
            else:
                self.controller.step(t, now, executor=self._execute_migration)
            # Migrations may have moved a VM whose request is waiting.
            self.switch.redispatch_pending()

        if self.config.update_models or getattr(self.controller, "uses_idleness", False):
            if activities is not None:
                binding.observe(t, activities)
            else:
                for vm in vms:
                    vm.model.observe(t, vm.current_activity)

        # Client traffic for interactive VMs active this hour.
        profile = self.config.request_profile
        for host in self.dc.hosts:
            for vm in host.vms:
                if vm.interactive and vm.current_activity > 0.0:
                    for at in profile.hourly_arrivals(self.rng, now, vm.current_activity):
                        self.sim.schedule_at(float(at), self._submit_request, vm.name)

        for hook in self.hour_hooks:
            hook(t, now)

    def _submit_request(self, vm_name: str) -> None:
        profile = self.config.request_profile
        request = Request(arrival_s=self.sim.now, vm_name=vm_name,
                          service_time_s=profile.sample_service_time(self.rng))
        self.switch.submit_request(request)

    # ------------------------------------------------------------------
    # suspension path
    # ------------------------------------------------------------------
    def _schedule_check(self, host: Host, delay: float) -> None:
        old = self._check_events.pop(host.name, None)
        if old is not None:
            old.cancel()
        self._check_events[host.name] = self.sim.schedule_in(
            delay, self._suspend_check, host)

    def _suspend_check(self, host: Host) -> None:
        self._check_events.pop(host.name, None)
        if not self.config.suspend_enabled:
            return
        if host.state is not PowerState.ON:
            return  # resume path reinstates the check
        module = self.suspending[host.name]
        verdict = module.evaluate(self.sim.now)
        if verdict.should_suspend:
            # Hand the waking date to the rack's waking module first so
            # the packet analyzer covers the whole drowsy window.
            self.waking.register_suspension(host, verdict.waking_date_s)
            host.begin_suspend(self.sim.now)
            self.sim.schedule_in(self.params.suspend_latency_s,
                                 self._finish_suspend, host)
        else:
            self._schedule_check(host, self.params.suspend_check_period_s)

    def _finish_suspend(self, host: Host) -> None:
        host.finish_suspend(self.sim.now)
        if host.name in self._resume_pending:
            # A wake arrived mid-transition: resume immediately.
            self._resume_pending.discard(host.name)
            self._begin_resume(host)

    # ------------------------------------------------------------------
    # wake path
    # ------------------------------------------------------------------
    def _on_wol(self, packet: WoLPacket, now: float) -> None:
        host = next((h for h in self.dc.hosts
                     if h.mac_address == packet.mac_address), None)
        if host is None:
            return
        if host.state is PowerState.SUSPENDED:
            self._begin_resume(host)
        elif host.state is PowerState.SUSPENDING:
            self._resume_pending.add(host.name)

    def _begin_resume(self, host: Host) -> None:
        host.begin_resume(self.sim.now)
        self.sim.schedule_in(self.params.resume_latency_s,
                             self._finish_resume, host)

    def _finish_resume(self, host: Host) -> None:
        acc = (columnar_host_view(self.dc)
               if self._accounting_enabled and self._fleet_active else None)
        if acc is not None:
            # Columnar grace: same mean raw IP the scalar
            # module.grace_for_resume computes, one vector for all hosts.
            mean_ip = float(acc.mean_raw_ip(self._current_hour)[acc.pos(host)])
            grace = grace_from_raw_ip(mean_ip, self.params)
        else:
            module = self.suspending[host.name]
            grace = module.grace_for_resume(self.sim.now, self._current_hour)
        host.finish_resume(self.sim.now, grace)
        self.waking.on_host_awake(host)
        self.switch.on_host_available(host)
        self._schedule_check(host, self.params.suspend_check_period_s)

    # ------------------------------------------------------------------
    # migrations
    # ------------------------------------------------------------------
    def _execute_migration(self, vm: VM, dest: Host) -> None:
        """Controller-requested migration; wakes endpoints as needed."""
        src = self.dc.host_of(vm)
        for host in (src, dest):
            self._force_awake(host)
        self.dc.migrate(vm, dest, self.sim.now)

    def _force_awake(self, host: Host) -> None:
        if host.state is PowerState.SUSPENDED:
            host.begin_resume(self.sim.now)
            host.finish_resume(self.sim.now, 0.0)
            self.waking.on_host_awake(host)
            self.switch.on_host_available(host)
            self._schedule_check(host, self.params.suspend_check_period_s)
        elif host.state is PowerState.SUSPENDING:
            self._resume_pending.add(host.name)

    # ------------------------------------------------------------------
    def _result(self, n_hours: int, migrations_before: int) -> EventResult:
        return EventResult(
            hours=n_hours,
            controller_name=self.controller.name,
            energy_kwh_by_host={h.name: h.meter.energy_kwh for h in self.dc.hosts},
            suspended_fraction_by_host={
                h.name: h.meter.suspended_fraction for h in self.dc.hosts},
            suspend_cycles_by_host={h.name: h.suspend_count for h in self.dc.hosts},
            resume_cycles_by_host={h.name: h.resume_count for h in self.dc.hosts},
            migrations=len(self.dc.migrations) - migrations_before,
            vm_migrations={vm.name: vm.migrations for vm in self.dc.vms},
            request_summary=self.switch.log.summary(),
            wol_sent=self.waking.active.wol_sent,
            events_processed=self.sim.events_processed,
        )
