"""Request-level event-driven simulation (the "real environment" of §VI-A).

Wires every runtime component the paper deploys on the testbed:

* per-host :class:`~repro.suspend.module.SuspendingModule` instances
  polling idleness every few seconds, honouring grace times and
  computing waking dates from the hrtimer tree;
* a rack :class:`~repro.waking.failover.ReplicatedWakingService` on the
  SDN switch, waking hosts on inbound requests (WoL) and ahead of
  scheduled dates;
* the :class:`~repro.network.sdn.SDNSwitch` carrying open-loop client
  requests whose rate follows each VM's trace;
* hourly trace/model/consolidation ticks identical to the hourly
  simulator.

This is the driver for Fig. 2, Table I, the energy totals, the SLA
results and the suspending/waking module evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.accounting import columnar_host_view
from ..cluster.datacenter import DataCenter
from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.vm import VM
from ..core.binding import FleetBinding
from ..core.calendar import time_of_hour
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..network.requests import PerVMRequestStreams, Request, RequestProfile
from ..network.sdn import ReliableWolChannel, SDNSwitch
from ..suspend.columnar import (
    CODE_CANDIDATE,
    DECISION_OF_CODE,
    classify_hosts,
    module_is_columnar,
)
from ..suspend.grace import grace_from_raw_ip
from ..suspend.module import SuspendDecision, SuspendingModule
from ..suspend.timers import compute_waking_date
from ..waking.failover import ReplicatedWakingService
from ..waking.packets import WoLPacket
from .hourly import validate_shared_config
from .suspend_sweep import SuspendSweepScheduler


@dataclass(frozen=True)
class EventConfig:
    """Options for the event-driven run."""

    suspend_enabled: bool = True
    consolidation_period_h: int = 1
    relocate_all_mode: bool = False
    update_models: bool = True
    request_profile: RequestProfile = RequestProfile()
    seed: int = 12345
    #: Columnar idleness-model hot path (one vectorized update per hour
    #: instead of the per-VM loop; DESIGN.md §6).  Bit-identical to the
    #: scalar path; disable only for benchmarking the seed loop.
    use_fleet_model: bool = True
    #: Consume the columnar host-accounting view (DESIGN.md §8) for the
    #: hourly meter sync and post-resume grace windows.  Bit-identical
    #: to the scalar per-host properties.  ``None`` (the default)
    #: follows ``use_fleet_model``; an explicit ``True`` without the
    #: fleet model raises (the view is built on the fleet binding).
    use_host_accounting: bool | None = None
    #: Batch the per-host suspend-check events into fleet-wide sweeps on
    #: a timer wheel of check deadlines, with verdicts from one columnar
    #: pass per hour (DESIGN.md §10).  Bit-identical to the per-host
    #: event path, which remains the parity oracle; disable only for
    #: benchmarking or parity checks.
    use_batched_checks: bool = True
    #: Draw each hour's request arrivals *and* service times in one RNG
    #: pass at the hour tick and push them through
    #: :meth:`~repro.cluster.events.EventSimulator.schedule_batch`
    #: (DESIGN.md §10).  With the default shared stream this is
    #: bit-identical to the seed's submit-time sampling; disable only
    #: for benchmarking the per-push path.
    use_bulk_requests: bool = True
    #: Request RNG layout: ``"shared"`` (seed-compatible single stream,
    #: draws depend on fleet iteration order) or ``"per-vm"``
    #: (name-keyed Philox substreams — every VM's request traffic is
    #: invariant under placement/iteration reordering; requires
    #: ``use_bulk_requests``).
    request_streams: str = "shared"
    #: Adaptive suspend-check periods (DESIGN.md §12): double a host's
    #: check interval while it keeps voting ACTIVE (a busy host cannot
    #: suspend, so checking it every period is wasted work), reset to
    #: the base period on any other decision or on resume.  Widened
    #: deadlines stay on the host's fixed-period grid (iterated float
    #: addition, identical to the per-check path's ``now + period``
    #: chain) and never skip the first check at/after an hour boundary
    #: — the only instants a verdict can change — so every suspend
    #: fires at exactly the time the fixed-period oracle would pick:
    #: all results are bit-identical except ``events_processed``
    #: (fewer checks).  ``None`` (the default) follows
    #: ``use_batched_checks`` — adaptive widening is ON for the default
    #: batched path (soaked in PR 4, ~3x fewer check events) and off on
    #: the fixed-period oracle; an explicit ``True`` without batched
    #: checks raises.
    adaptive_checks: bool | None = None
    #: Cap on the widening (in base periods): the check interval never
    #: exceeds ``adaptive_max_factor * suspend_check_period_s``.
    adaptive_max_factor: int = 16

    def __post_init__(self) -> None:
        # All config contradictions raise here, at construction time —
        # the shared flags through the one helper HourlyConfig also
        # uses, then the event-only couplings (the simulator no longer
        # re-validates).
        validate_shared_config(self)
        if self.request_streams not in ("shared", "per-vm"):
            raise ValueError(
                f"unknown request_streams {self.request_streams!r}; "
                "expected 'shared' or 'per-vm'")
        if self.request_streams == "per-vm" and not self.use_bulk_requests:
            raise ValueError("per-vm request streams require bulk requests")
        if self.adaptive_checks is None:
            object.__setattr__(self, "adaptive_checks",
                               self.use_batched_checks)
        elif self.adaptive_checks and not self.use_batched_checks:
            raise ValueError("adaptive check periods require batched checks")
        if self.adaptive_max_factor < 1:
            raise ValueError("adaptive_max_factor must be >= 1")


@dataclass
class EventResult:
    """Outcome of an event-driven run."""

    hours: int
    controller_name: str
    energy_kwh_by_host: dict[str, float]
    suspended_fraction_by_host: dict[str, float]
    suspend_cycles_by_host: dict[str, int]
    resume_cycles_by_host: dict[str, int]
    migrations: int
    vm_migrations: dict[str, int]
    request_summary: dict[str, float]
    wol_sent: int
    events_processed: int

    @property
    def total_energy_kwh(self) -> float:
        return sum(self.energy_kwh_by_host.values())

    @property
    def global_suspended_fraction(self) -> float:
        vals = list(self.suspended_fraction_by_host.values())
        return sum(vals) / len(vals) if vals else 0.0


class EventDrivenSimulation:
    """Full-stack Drowsy-DC simulation."""

    def __init__(self, dc: DataCenter, controller,
                 params: DrowsyParams = DEFAULT_PARAMS,
                 config: EventConfig = EventConfig(),
                 hour_hooks: tuple = ()) -> None:
        self.dc = dc
        self.controller = controller
        self.params = params
        self.config = config
        self.hour_hooks = tuple(hour_hooks)
        self.sim = EventSimulator()
        self.rng = np.random.default_rng(config.seed)
        self.switch = SDNSwitch(self.sim, dc, params)
        #: Every WoL emission goes through the resilient channel; with no
        #: fault transport attached it is a direct synchronous call to
        #: :meth:`_on_wol` (bit-identical to the pre-channel path).
        self.wol_channel = ReliableWolChannel(
            self.sim, self._on_wol, params, self._wake_satisfied)
        self.waking = ReplicatedWakingService(
            self.sim, self.wol_channel.send, params)
        self.switch.waking_service = self.waking
        self.switch.wol_sender = self.wol_channel.send
        self.suspending = {h.name: SuspendingModule(h, params) for h in dc.hosts}
        self._check_events: dict[str, object] = {}
        self._resume_pending: set[str] = set()
        #: In-flight finish_suspend/finish_resume timers per host, so an
        #: injected crash can tombstone them instead of letting them fire
        #: an illegal transition on a CRASHED host (DESIGN.md §14).
        self._transition_events: dict[str, object] = {}
        #: Fault injector hook (set by repro.faults.FaultInjector); None
        #: on fault-free runs, where every fault branch below is a single
        #: attribute test.
        self.faults = None
        # Fault accounting (all stay zero without an injector).
        self.host_crashes = 0
        self.host_recoveries = 0
        self.resume_failures = 0
        self.failover_migrations = 0
        self.stranded_vms = 0
        self.recovered_requests = 0
        self.migrations_blocked = 0
        self._current_hour = 0
        #: Timer wheel batching the per-host suspend checks into sweeps
        #: (DESIGN.md §10); None = per-host event oracle path.
        self.sweeper = (SuspendSweepScheduler(self.sim, self._sweep_due)
                        if config.use_batched_checks else None)
        #: Consecutive ACTIVE votes per host (adaptive check periods).
        self._active_streak: dict[str, int] = {}
        self._request_streams = (PerVMRequestStreams(config.seed)
                                 if config.request_streams == "per-vm"
                                 else None)
        #: Per-hour host classification cache of the columnar sweep pass
        #: ((hour, placement epoch, blocked version) -> codes, view).
        self._codes_cache: tuple | None = None
        self._accounting_enabled = (config.use_fleet_model
                                    and config.use_host_accounting)
        self._binding = (FleetBinding.try_bind(
            dc, params, accounting=self._accounting_enabled)
            if config.use_fleet_model else None)
        self._run_start = 0
        self._horizon: tuple[int, int] | None = None
        self._migrations_before = 0
        #: VMs removed mid-run (scenario churn): their already-scheduled
        #: request events for the current hour must fall through instead
        #: of faulting on the unknown name.
        self._departed_vms: set[str] = set()
        #: Did the last hour tick take the columnar path?  Gates the
        #: sub-hour accounting reads (grace on resume).
        self._fleet_active = False
        #: Telemetry endpoint (DESIGN.md §17), installed by a
        #: metrics/trace-enabled run; stays ``None`` — zero hooks,
        #: zero clock reads — otherwise.
        self._obs = None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, n_hours: int, start_hour: int = 0) -> EventResult:
        if n_hours <= 0:
            raise ValueError("n_hours must be positive")
        if self.config.use_fleet_model and (
                self._binding is None
                or not self._binding.covers(self.dc.vms)):
            # Rebind so the columnar path survives VM arrivals.
            self._binding = FleetBinding.try_bind(
                self.dc, self.params, accounting=self._accounting_enabled)
        if self._binding is not None:
            self._binding.ensure_horizon(start_hour, n_hours)
        self._run_start = start_hour
        self._horizon = (start_hour, n_hours)
        self._migrations_before = len(self.dc.migrations)
        for t in range(start_hour, start_hour + n_hours):
            self.sim.schedule_at(time_of_hour(t), self._hour_tick, t)
        if self.config.suspend_enabled:
            for host in self.dc.hosts:
                self._schedule_check(host, delay=self.params.suspend_check_period_s)
        return self.continue_run()

    def continue_run(self) -> EventResult:
        """Run (or finish) the scheduled horizon.  The event heap holds
        every piece of in-flight state — hour ticks, suspend checks,
        request arrivals, transitions — so a run restored from a
        checkpoint resumes by simply draining the clock to the end of
        the horizon, exactly as the uninterrupted run would
        (DESIGN.md §16)."""
        if self._horizon is None:
            raise RuntimeError("no run in progress to continue")
        start_hour, n_hours = self._horizon
        end = time_of_hour(start_hour + n_hours)
        self.sim.run_until(end)
        self.dc.sync_meters(end)
        return self._result(n_hours, self._migrations_before)

    # ------------------------------------------------------------------
    def rebind_fleet(self) -> None:
        """Re-bind the columnar fleet model to the current VM population.

        Scenario churn (DESIGN.md §12) places and removes VMs mid-run.
        Like :meth:`repro.sim.hourly.HourlySimulator.rebind_fleet`, plus
        the event-specific bits: the cached host classification is
        dropped (it indexes the old accounting view) and the columnar
        gate reflects whether the fresh binding covers the fleet.
        """
        if not self.config.use_fleet_model:
            return
        self._binding = FleetBinding.try_bind(
            self.dc, self.params, accounting=self._accounting_enabled)
        if self._binding is not None and self._horizon is not None:
            self._binding.ensure_horizon(*self._horizon)
        self._codes_cache = None
        self._fleet_active = (self._binding is not None
                              and self._binding.covers(self.dc.vms))

    # ------------------------------------------------------------------
    def _hour_tick(self, t: int) -> None:
        now = self.sim.now
        self._current_hour = t
        vms = self.dc.vms
        binding = self._binding
        activities = None
        if binding is not None and binding.covers(vms):
            # Columnar hot path: one matrix-column load (DESIGN.md §6),
            # with the hourly meter charge fed the previous hour's
            # columnar utilizations (DESIGN.md §8).
            acc = (columnar_host_view(self.dc)
                   if self._accounting_enabled else None)
            if acc is not None and t > self._run_start:
                self.dc.sync_meters(now, acc.cpu_utilization(t - 1))
            else:
                self.dc.sync_meters(now)
            activities = binding.load_hour(t)
        else:
            self.dc.set_hour_activities(t, now)
        self._fleet_active = activities is not None
        self.controller.observe_hour(t)

        obs = self._obs
        if t % self.config.consolidation_period_h == 0:
            if obs is not None:
                obs.phase_begin("consolidate")
            if self.config.relocate_all_mode and hasattr(self.controller, "relocate_all"):
                before = len(self.dc.migrations)
                self.controller.relocate_all(t, now)
                self._refresh_waking_after_bulk(self.dc.migrations[before:])
            else:
                self.controller.step(t, now, executor=self._execute_migration)
            # Migrations may have moved a VM whose request is waiting.
            self.switch.redispatch_pending()
            if obs is not None:
                obs.phase_end()

        if self.config.update_models or getattr(self.controller, "uses_idleness", False):
            if activities is not None:
                binding.observe(t, activities)
            else:
                for vm in vms:
                    vm.model.observe(t, vm.current_activity)

        # Client traffic for interactive VMs active this hour.
        if obs is not None:
            obs.phase_begin("requests")
        profile = self.config.request_profile
        if self.config.use_bulk_requests:
            self._generate_hour_requests(now, profile)
        else:
            for host in self.dc.hosts:
                for vm in host.vms:
                    if vm.interactive and vm.current_activity > 0.0:
                        for at in profile.hourly_arrivals(
                                self.rng, now, vm.current_activity,
                                hour_index=t):
                            self.sim.schedule_at(float(at), self._submit_request, vm.name)
        if obs is not None:
            obs.phase_end()
            obs.hour_mark(t)

        for hook in self.hour_hooks:
            hook(t, now)

    # ------------------------------------------------------------------
    def telemetry_sample(self) -> dict:
        """Cumulative engine counters for the telemetry runtime
        (DESIGN.md §17) — sampled at hour boundaries, never pushed, so
        the metrics-off path costs nothing."""
        sim, ch = self.sim, self.wol_channel
        sample = {
            # Coalesced logical events are folded into events_processed
            # by EventSimulator.count_coalesced (a parity observable).
            "events_processed": sim.events_processed,
            "events_pending": sim.pending,
            "heap_depth": len(sim._heap),
            "migrations": len(self.dc.migrations),
            "wol_attempts": ch.attempts,
            "wol_retries": ch.retries,
            "wol_dropped": ch.dropped,
            "wol_delayed": ch.delayed,
            "wol_abandoned": ch.abandoned,
            "wol_sent": self.waking.active.wol_sent,
            "waking_beats": self.waking.beats,
            "queued_requests": self.switch.queued_requests,
        }
        if self.sweeper is not None:
            sample["sweeps_fired"] = self.sweeper.sweeps_fired
            sample["sweep_checks"] = self.sweeper.checks_performed
        return sample

    def _generate_hour_requests(self, now: float,
                                profile: RequestProfile) -> None:
        """One RNG pass for the hour's request traffic (DESIGN.md §10).

        Arrivals are drawn per VM in fleet order (the same draws the
        per-push path makes), merged chronologically with a stable sort
        (equal-time ties keep fleet order, which is exactly the FIFO
        order the per-push path's sequence numbers impose), and service
        times are sampled from the recorded stream in dispatch order —
        the per-push path draws them at submit time, i.e. in this very
        chronological order, so the shared-stream layout is
        bit-identical to scheduling each request individually.
        """
        streams = self._request_streams
        hour = self._current_hour
        names: list[str] = []
        arrays: list[np.ndarray] = []
        svc_arrays: list[np.ndarray] = []
        for host in self.dc.hosts:
            for vm in host.vms:
                if vm.interactive and vm.current_activity > 0.0:
                    rng = self.rng if streams is None else streams.for_vm(vm.name)
                    arr = profile.hourly_arrivals(rng, now, vm.current_activity,
                                                  hour_index=hour)
                    if arr.size:
                        names.append(vm.name)
                        arrays.append(arr)
                        if streams is not None:
                            # Per-VM streams record service times from
                            # the VM's own substream — draws stay
                            # invariant under fleet reordering.
                            svc_arrays.append(
                                profile.sample_service_times(rng, arr.size))
        if not arrays:
            return
        times = np.concatenate(arrays)
        owners = np.repeat(np.arange(len(arrays)),
                           [a.size for a in arrays])
        order = np.argsort(times, kind="stable")
        times = times[order]
        owners = owners[order]
        if streams is None:
            services = profile.sample_service_times(self.rng, times.size)
        else:
            services = np.concatenate(svc_arrays)[order]
        submit = self._submit_generated
        self.sim.schedule_batch(
            (t, submit, (names[o], s))
            for t, o, s in zip(times.tolist(), owners.tolist(),
                               services.tolist()))

    def _submit_generated(self, vm_name: str, service_time_s: float) -> None:
        """Submit a request whose service time was pre-sampled at
        generation time (the bulk path)."""
        if vm_name in self._departed_vms:
            return  # VM churned away after this hour's traffic was drawn
        self.switch.submit_request(Request(
            arrival_s=self.sim.now, vm_name=vm_name,
            service_time_s=service_time_s))

    def _submit_request(self, vm_name: str) -> None:
        if vm_name in self._departed_vms:
            return  # VM churned away after this hour's traffic was drawn
        profile = self.config.request_profile
        request = Request(arrival_s=self.sim.now, vm_name=vm_name,
                          service_time_s=profile.sample_service_time(self.rng))
        self.switch.submit_request(request)

    def note_vm_departed(self, vm_name: str) -> None:
        """A VM left the fleet mid-run (scenario churn): swallow its
        still-scheduled arrivals and drop its queued requests."""
        self._departed_vms.add(vm_name)
        self.switch.drop_vm(vm_name)

    # ------------------------------------------------------------------
    # suspension path
    # ------------------------------------------------------------------
    def _schedule_check(self, host: Host, delay: float) -> None:
        if self.sweeper is not None:
            # Fresh registration (run start / resume): any adaptive
            # widening restarts from the base period.
            self._active_streak.pop(host.name, None)
            self.sweeper.schedule(host, self.sim.now + delay)
            return
        old = self._check_events.pop(host.name, None)
        if old is not None:
            old.cancel()
        self._check_events[host.name] = self.sim.schedule_in(
            delay, self._suspend_check, host)

    # -- batched sweep path (DESIGN.md §10) ----------------------------
    def _host_codes(self):
        """Columnar host classifications for the current hour, or None
        when the fleet binding / accounting is inactive (scalar sweep)."""
        if not self._fleet_active:
            return None
        acc = columnar_host_view(self.dc)
        if acc is None:
            return None
        key = (self._current_hour, acc.epoch,
               self._binding.fleet.blocked_version)
        cached = self._codes_cache
        if cached is not None and cached[0] == key and cached[2] is acc:
            return cached[1:]
        codes = classify_hosts(acc, self._current_hour).tolist()
        self._codes_cache = (key, codes, acc)
        return codes, acc

    def _sweep_due(self, now: float, due: list[Host]) -> None:
        """Evaluate every due host's suspend check in one pass.

        Per-host semantics are exactly :meth:`_suspend_check`'s, in
        bucket insertion order (= the per-host events' FIFO order):
        non-ON hosts are skipped silently, columnar-eligible hosts get
        their verdict from the fleet-wide classification plus the grace
        clock, deviating modules (heuristics, custom blacklists) fall
        back to the scalar evaluator, and each host's decision counter
        and follow-up actions are identical to the per-event path.
        """
        if not self.config.suspend_enabled:
            return
        period = self.params.suspend_check_period_s
        deadline = now + period
        ctx = self._host_codes()
        codes, positions = (None, None)
        if ctx is not None:
            codes, acc = ctx
            positions = acc.positions
        # Hot loop (every ON host, every check period): locals for the
        # per-host lookups, eager rescheduling so the wheel's insertion
        # (and event sequence) order matches the per-host event path.
        suspending = self.suspending
        schedule = self.sweeper.schedule
        on_state = PowerState.ON
        candidate = CODE_CANDIDATE
        in_grace, suspend = SuspendDecision.IN_GRACE, SuspendDecision.SUSPEND
        decision_of_code = DECISION_OF_CODE
        adaptive = self.config.adaptive_checks
        if adaptive:
            active = SuspendDecision.ACTIVE
            streaks = self._active_streak
            max_steps = self.config.adaptive_max_factor
            hour_end = time_of_hour(self._current_hour + 1)
        for host in due:
            if host.state is not on_state:
                continue  # resume path reinstates the check
            module = suspending[host.name]
            if codes is not None and module_is_columnar(module):
                code = codes[positions[host.name]]
                if code == candidate:
                    decision = (in_grace if now < host.grace_until
                                else suspend)
                else:
                    decision = decision_of_code[code]
                module.decision_counts[decision] += 1
                if decision is suspend:
                    self._begin_suspend(
                        host, compute_waking_date(host, now, module.blacklist))
                    continue
            else:
                verdict = module.evaluate(now)
                decision = verdict.decision
                if verdict.should_suspend:
                    self._begin_suspend(host, verdict.waking_date_s)
                    continue
            if adaptive:
                schedule(host, self._adaptive_deadline(
                    host.name, decision is active, now, period, hour_end,
                    streaks, max_steps))
            else:
                schedule(host, deadline)

    def _adaptive_deadline(self, name: str, voted_active: bool, now: float,
                           period: float, hour_end: float,
                           streaks: dict[str, int], max_steps: int) -> float:
        """Next check deadline under adaptive widening (DESIGN.md §12).

        Walks the host's fixed-period deadline grid by iterated float
        addition — bit-exact with the oracle's ``now + period`` chain —
        skipping up to ``2**streak - 1`` grid points but never the first
        one at/after the next hour boundary: hour ticks are the only
        instants activities and placement (and therefore verdicts) can
        change, so the first post-boundary check lands exactly where the
        fixed-period oracle's would.
        """
        deadline = now + period
        if not voted_active:
            streaks.pop(name, None)
            return deadline
        streak = min(streaks.get(name, 0) + 1, 30)
        streaks[name] = streak
        steps = min(1 << streak, max_steps)
        k = 1
        while k < steps:
            nxt = deadline + period
            if nxt >= hour_end:
                break
            deadline = nxt
            k += 1
        return deadline

    def _begin_suspend(self, host: Host, waking_date_s: float | None) -> None:
        # Hand the waking date to the rack's waking module first so the
        # packet analyzer covers the whole drowsy window.
        self.waking.register_suspension(host, waking_date_s)
        host.begin_suspend(self.sim.now)
        latency = self.params.suspend_latency_s
        if self.faults is not None:
            latency = self.faults.suspend_latency(latency, host.name)
        self._transition_events[host.name] = self.sim.schedule_in(
            latency, self._finish_suspend, host)

    def _suspend_check(self, host: Host) -> None:
        self._check_events.pop(host.name, None)
        if not self.config.suspend_enabled:
            return
        if host.state is not PowerState.ON:
            return  # resume path reinstates the check
        module = self.suspending[host.name]
        verdict = module.evaluate(self.sim.now)
        if verdict.should_suspend:
            self._begin_suspend(host, verdict.waking_date_s)
        else:
            self._schedule_check(host, self.params.suspend_check_period_s)

    def _finish_suspend(self, host: Host) -> None:
        self._transition_events.pop(host.name, None)
        host.finish_suspend(self.sim.now)
        if host.name in self._resume_pending:
            # A wake arrived mid-transition: resume immediately.
            self._resume_pending.discard(host.name)
            self._begin_resume(host)

    # ------------------------------------------------------------------
    # wake path
    # ------------------------------------------------------------------
    def _on_wol(self, packet: WoLPacket, now: float) -> None:
        # O(1) MAC index (kept consistent by DataCenter.check_invariants)
        # instead of the old O(hosts) scan per WoL packet.
        host = self.dc.host_by_mac.get(packet.mac_address)
        if host is None:
            return
        if host.state is PowerState.SUSPENDED:
            self._begin_resume(host)
        elif host.state is PowerState.SUSPENDING:
            self._resume_pending.add(host.name)

    def _wake_satisfied(self, mac: str) -> bool:
        """Retry-channel predicate: is a wake for ``mac`` moot?  True
        for hosts already up/coming up or gone from the fleet."""
        host = self.dc.host_by_mac.get(mac)
        return host is None or host.state in (PowerState.ON,
                                              PowerState.RESUMING)

    def _begin_resume(self, host: Host) -> None:
        host.begin_resume(self.sim.now)
        self._transition_events[host.name] = self.sim.schedule_in(
            self.params.resume_latency_s, self._finish_resume, host)

    def _finish_resume(self, host: Host) -> None:
        self._transition_events.pop(host.name, None)
        if self.faults is not None and self.faults.resume_fails():
            self._resume_failed(host)
            return
        acc = (columnar_host_view(self.dc)
               if self._accounting_enabled and self._fleet_active else None)
        if acc is not None:
            # Columnar grace: same mean raw IP the scalar
            # module.grace_for_resume computes, one vector for all hosts.
            mean_ip = float(acc.mean_raw_ip(self._current_hour)[acc.pos(host)])
            grace = grace_from_raw_ip(mean_ip, self.params)
        else:
            module = self.suspending[host.name]
            grace = module.grace_for_resume(self.sim.now, self._current_hour)
        host.finish_resume(self.sim.now, grace)
        self.wol_channel.settle(host.mac_address)
        self.waking.on_host_awake(host)
        self.switch.on_host_available(host)
        self._schedule_check(host, self.params.suspend_check_period_s)

    # ------------------------------------------------------------------
    # fault primitives (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def crash_host(self, host: Host,
                   recover_after_s: float | None = None) -> bool:
        """Inject an abrupt host failure (DESIGN.md §14).

        Cancels the host's in-flight transition/check timers and
        tombstones its WoL retries — a ``finish_*`` firing on a CRASHED
        host would be an illegal transition — then drops the host to
        CRASHED.  Its VMs stay resident (requests queue on the switch
        until recovery).  Returns False for hosts that cannot crash
        (already CRASHED, or powered off)."""
        if host.state in (PowerState.CRASHED, PowerState.OFF):
            return False
        ev = self._transition_events.pop(host.name, None)
        if ev is not None:
            ev.cancel()
        if self.sweeper is not None:
            self.sweeper.cancel(host)
        else:
            ev = self._check_events.pop(host.name, None)
            if ev is not None:
                ev.cancel()
        self._resume_pending.discard(host.name)
        self.wol_channel.settle(host.mac_address)
        host.crash(self.sim.now)
        self.host_crashes += 1
        if recover_after_s is not None:
            self.sim.schedule_in(recover_after_s, self._recover_host, host)
        return True

    def _recover_host(self, host: Host) -> None:
        """Reboot a crashed host into S0 and drain its queued requests."""
        if host.state is not PowerState.CRASHED:
            return
        host.recover(self.sim.now)
        self.host_recoveries += 1
        # The reboot clears any drowsy-era registrations: the host is up.
        self.waking.on_host_awake(host)
        queued_before = self.switch.queued_requests
        self.switch.on_host_available(host)
        self.recovered_requests += queued_before - self.switch.queued_requests
        if self.config.suspend_enabled:
            self._schedule_check(host, self.params.suspend_check_period_s)

    def _resume_failed(self, host: Host) -> None:
        """A resume that never came back: declare the host crashed and
        fail its VMs over to live hosts by migration (the consolidation
        manager's evacuation path); stranded VMs wait for recovery."""
        self.resume_failures += 1
        recover_after = (self.faults.resume_recover_after_s()
                         if self.faults is not None else None)
        self.crash_host(host, recover_after)
        live = [h for h in self.dc.hosts
                if h is not host and h.state is PowerState.ON]
        migrated, stranded = self.dc.evacuate(host, self.sim.now,
                                              targets=live)
        self.failover_migrations += len(migrated)
        self.stranded_vms += len(stranded)
        # Requests for the migrated VMs can complete on their new hosts.
        self.switch.redispatch_pending()

    # ------------------------------------------------------------------
    # migrations
    # ------------------------------------------------------------------
    def _refresh_waking_after_bulk(self, records) -> None:
        """Repair the waking module's VM->MAC map after a bulk move.

        ``relocate_all`` relocates without wakes, so a VM leaving a
        drowsy host kept a stale mapping: an inbound request would WoL
        the *old* host while the request queued against the new one.
        For each moved VM, in record order, repoint the mapping at the
        destination's MAC when the destination is drowsy, else drop it
        — exactly the state ``register_suspension`` would have built
        had the VM been on the destination when it went drowsy.
        """
        drowsy = (PowerState.SUSPENDING, PowerState.SUSPENDED)
        for rec in records:
            vm, dest = self.dc.find_vm(rec.vm_name)
            self.waking.note_vm_moved(
                vm.ip_address,
                dest.mac_address if dest.state in drowsy else None)

    def _execute_migration(self, vm: VM, dest: Host) -> None:
        """Controller-requested migration; wakes endpoints as needed."""
        src = self.dc.host_of(vm)
        if (src.state is PowerState.CRASHED
                or dest.state is PowerState.CRASHED):
            self.migrations_blocked += 1
            return
        for host in (src, dest):
            self._force_awake(host)
        self.dc.migrate(vm, dest, self.sim.now)

    def _force_awake(self, host: Host) -> None:
        if host.state is PowerState.SUSPENDED:
            host.begin_resume(self.sim.now)
            host.finish_resume(self.sim.now, 0.0)
            self.wol_channel.settle(host.mac_address)
            self.waking.on_host_awake(host)
            self.switch.on_host_available(host)
            self._schedule_check(host, self.params.suspend_check_period_s)
        elif host.state is PowerState.SUSPENDING:
            self._resume_pending.add(host.name)

    # ------------------------------------------------------------------
    def _result(self, n_hours: int, migrations_before: int) -> EventResult:
        return EventResult(
            hours=n_hours,
            controller_name=self.controller.name,
            energy_kwh_by_host={h.name: h.meter.energy_kwh for h in self.dc.hosts},
            suspended_fraction_by_host={
                h.name: h.meter.suspended_fraction for h in self.dc.hosts},
            suspend_cycles_by_host={h.name: h.suspend_count for h in self.dc.hosts},
            resume_cycles_by_host={h.name: h.resume_count for h in self.dc.hosts},
            migrations=len(self.dc.migrations) - migrations_before,
            vm_migrations={vm.name: vm.migrations for vm in self.dc.vms},
            request_summary=self.switch.log.summary(),
            wol_sent=self.waking.active.wol_sent,
            events_processed=self.sim.events_processed,
        )
