"""Consolidation controllers: Neat, Drowsy-DC, Oasis, pairwise baseline."""

from .baseline import (
    PassiveController,
    drowsy_linear_grouping,
    pairwise_matching_grouping,
)
from .detection import (
    IqrDetector,
    LocalRegressionDetector,
    MadDetector,
    OverloadDetector,
    ThresholdDetector,
    underloaded_candidates,
)
from .drowsy import DrowsyController
from .managers import (
    DistributedNeat,
    GlobalManager,
    HostStatus,
    LocalManager,
    LocalManagerReport,
)
from .neat import MANAGED_STATES, NeatController
from .oasis import OasisController, OasisCosts
from .placement import (
    IPAwarePlacement,
    PlacementPolicy,
    PowerAwareBestFitDecreasing,
    decreasing_demand,
)
from .selection import (
    IPDistanceSelector,
    MaximumCorrelationSelector,
    MinimumMigrationTimeSelector,
    RandomSelector,
    VMSelector,
    select_until_not_overloaded,
)

__all__ = [
    "DistributedNeat",
    "DrowsyController",
    "GlobalManager",
    "HostStatus",
    "IPAwarePlacement",
    "LocalManager",
    "LocalManagerReport",
    "IPDistanceSelector",
    "IqrDetector",
    "LocalRegressionDetector",
    "MANAGED_STATES",
    "MadDetector",
    "MaximumCorrelationSelector",
    "MinimumMigrationTimeSelector",
    "NeatController",
    "OasisController",
    "OasisCosts",
    "OverloadDetector",
    "PassiveController",
    "PlacementPolicy",
    "PowerAwareBestFitDecreasing",
    "RandomSelector",
    "ThresholdDetector",
    "VMSelector",
    "decreasing_demand",
    "drowsy_linear_grouping",
    "pairwise_matching_grouping",
    "select_until_not_overloaded",
    "underloaded_candidates",
]
