"""OpenStack Neat's distributed architecture (local + global managers).

The real Neat deployment splits the four sub-problems across components
(Beloglazov & Buyya 2015): a *local manager* on every compute host
watches its own utilization, decides underload/overload (sub-problems 1
and 2) and selects the VMs to migrate away (sub-problem 3); a *global
manager* on the controller node collects those reports and solves
placement (sub-problem 4).  :class:`NeatController` collapses the split
for convenience; this module implements the faithful decomposition with
explicit report messages, so the control plane can be tested (and
extended — e.g. Drowsy-DC's modules slot in host-side exactly like a
local manager).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from ..cluster.accounting import columnar_host_view
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .detection import OverloadDetector, ThresholdDetector
from .neat import MANAGED_STATES, MigrationExecutor
from .placement import PlacementPolicy, PowerAwareBestFitDecreasing
from .selection import (
    MinimumMigrationTimeSelector,
    VMSelector,
    select_until_not_overloaded,
)


class HostStatus(enum.Enum):
    NORMAL = "normal"
    UNDERLOADED = "underloaded"
    OVERLOADED = "overloaded"
    SLEEPING = "sleeping"


@dataclass(frozen=True)
class LocalManagerReport:
    """One host's message to the global manager."""

    host_name: str
    status: HostStatus
    utilization: float
    #: VM names the local manager wants migrated away (overload) or the
    #: full population (underload evacuation offer).
    migration_candidates: tuple[str, ...] = ()


class LocalManager:
    """Host-side agent: sub-problems 1-3."""

    def __init__(self, host: Host,
                 detector: OverloadDetector | None = None,
                 selector: VMSelector | None = None,
                 underload_threshold: float = 0.2,
                 overload_target: float = 0.8,
                 history_window: int = 24) -> None:
        self.host = host
        self.detector = detector or ThresholdDetector()
        self.selector = selector or MinimumMigrationTimeSelector()
        self.underload_threshold = underload_threshold
        self.overload_target = overload_target
        self.history: deque[float] = deque(maxlen=history_window)

    def observe(self, hour_index: int,
                utilization: float | None = None) -> None:
        """Record this hour's utilization.

        ``utilization`` optionally supplies the value (already gated on
        power state) from the columnar host accounting; it must equal
        the scalar expression below bit-for-bit.
        """
        if utilization is not None:
            self.history.append(utilization)
            return
        self.history.append(
            self.host.cpu_utilization
            if self.host.state is PowerState.ON else 0.0)

    def report(self, hour_index: int) -> LocalManagerReport:
        """Classify this host and nominate VMs to migrate."""
        host = self.host
        if host.state is not PowerState.ON:
            return LocalManagerReport(host.name, HostStatus.SLEEPING, 0.0)
        util = host.cpu_utilization
        if self.detector.is_overloaded(list(self.history)):
            order = self.selector.order(host, hour_index)
            selected = select_until_not_overloaded(host, order,
                                                   self.overload_target)
            return LocalManagerReport(
                host.name, HostStatus.OVERLOADED, util,
                tuple(vm.name for vm in selected))
        if host.vms and util < self.underload_threshold:
            return LocalManagerReport(
                host.name, HostStatus.UNDERLOADED, util,
                tuple(vm.name for vm in host.vms))
        return LocalManagerReport(host.name, HostStatus.NORMAL, util)


class GlobalManager:
    """Controller-side placement solver: sub-problem 4."""

    def __init__(self, dc: DataCenter,
                 placer: PlacementPolicy | None = None) -> None:
        self.dc = dc
        self.placer = placer or PowerAwareBestFitDecreasing()

    def _vm_by_name(self) -> dict[str, VM]:
        return {vm.name: vm for vm in self.dc.vms}

    def step(self, reports: list[LocalManagerReport], hour_index: int,
             now: float, executor: MigrationExecutor) -> int:
        """Resolve one round of reports.  Overloads first (QoS), then
        underload evacuations least-utilized first, skipping hosts that
        just received VMs (the monolithic controller's ping-pong guard)."""
        vm_by_name = self._vm_by_name()
        by_name = {h.name: h for h in self.dc.hosts}
        moved = 0

        overloaded = [r for r in reports if r.status is HostStatus.OVERLOADED]
        over_names = {r.host_name for r in overloaded}
        to_place: list[VM] = []
        sources: dict[str, Host] = {}
        for r in overloaded:
            for name in r.migration_candidates:
                vm = vm_by_name[name]
                to_place.append(vm)
                sources[name] = by_name[r.host_name]
        targets = [h for h in self.dc.hosts
                   if h.state in MANAGED_STATES and h.name not in over_names]
        placement = self.placer.place(to_place, targets, hour_index, sources)
        unplaced = [vm for vm in to_place if vm.name not in placement]
        if unplaced:
            off_hosts = sorted((h for h in self.dc.hosts
                                if h.state is PowerState.OFF),
                               key=lambda h: h.name)
            if off_hosts:
                placement.update(self.placer.place(unplaced, off_hosts,
                                                   hour_index, sources))
        for vm in to_place:
            dest = placement.get(vm.name)
            if dest is not None:
                executor(vm, dest)
                moved += 1

        receivers = {placement[vm.name].name for vm in to_place
                     if vm.name in placement}
        underloaded = sorted(
            (r for r in reports if r.status is HostStatus.UNDERLOADED),
            key=lambda r: (r.utilization, r.host_name))
        for r in underloaded:
            host = by_name[r.host_name]
            if host.name in receivers or not host.vms:
                continue
            vms = [vm_by_name[n] for n in r.migration_candidates
                   if n in vm_by_name]
            targets = [h for h in self.dc.hosts
                       if h.state in MANAGED_STATES and h is not host]
            current = {vm.name: host for vm in vms}
            evacuation = self.placer.place(vms, targets, hour_index, current)
            if len(evacuation) != len(vms):
                break
            for vm in vms:
                executor(vm, evacuation[vm.name])
                receivers.add(evacuation[vm.name].name)
                moved += 1
        return moved


class DistributedNeat:
    """Drop-in controller using the local/global decomposition."""

    name = "neat-distributed"
    uses_idleness = False

    def __init__(self, dc: DataCenter, params: DrowsyParams = DEFAULT_PARAMS,
                 detector_factory=None, selector_factory=None,
                 placer: PlacementPolicy | None = None,
                 underload_threshold: float = 0.2) -> None:
        self.dc = dc
        self.params = params
        self.locals = {
            h.name: LocalManager(
                h,
                detector=(detector_factory or ThresholdDetector)(),
                selector=(selector_factory or MinimumMigrationTimeSelector)(),
                underload_threshold=underload_threshold)
            for h in dc.hosts}
        self.global_manager = GlobalManager(dc, placer)
        self.last_reports: list[LocalManagerReport] = []

    def observe_hour(self, hour_index: int) -> None:
        acc = columnar_host_view(self.dc)
        if acc is not None:
            utils = acc.cpu_utilization(hour_index)
            for k, host in enumerate(self.dc.hosts):
                self.locals[host.name].observe(
                    hour_index,
                    float(utils[k]) if host.state is PowerState.ON else 0.0)
            return
        for lm in self.locals.values():
            lm.observe(hour_index)

    def step(self, hour_index: int, now: float,
             executor: MigrationExecutor | None = None) -> int:
        if executor is None:
            executor = lambda vm, dest: self.dc.migrate(vm, dest, now)
        self.last_reports = [lm.report(hour_index)
                             for lm in self.locals.values()]
        moved = self.global_manager.step(self.last_reports, hour_index, now,
                                         executor)
        self.dc.check_invariants()
        return moved
