"""The Drowsy-DC consolidation controller (paper section III-D).

Extends Neat by (a) swapping VM selection for the IP-distance policy and
placement for the IP-proximity policy, (b) appending the *opportunistic
consolidation step* that splits hosts whose VM-IP range exceeds 7σ, and
(c) offering the periodic full-relocation mode used by the testbed
evaluation (section VI-A.1) where all VMs are re-placed by IP every
round "instead of waiting for the need of a migration decision".
"""

from __future__ import annotations

import numpy as np

from ..cluster.accounting import columnar_host_view
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .detection import OverloadDetector
from .neat import MANAGED_STATES, MigrationExecutor, NeatController
from .placement import IPAwarePlacement
from .selection import IPDistanceSelector


class DrowsyController(NeatController):
    """Neat + idleness-aware selection/placement + opportunistic step."""

    name = "drowsy-dc"
    uses_idleness = True

    def __init__(
        self,
        dc: DataCenter,
        detector: OverloadDetector | None = None,
        params: DrowsyParams = DEFAULT_PARAMS,
        overload_target: float = 0.8,
        history_window: int = 24,
    ) -> None:
        super().__init__(
            dc,
            detector=detector,
            selector=IPDistanceSelector(params=params),
            placer=IPAwarePlacement(params=params),
            params=params,
            overload_target=overload_target,
            history_window=history_window,
        )

    # ------------------------------------------------------------------
    def step(self, hour_index: int, now: float,
             executor: MigrationExecutor | None = None) -> int:
        """Neat's rounds, then the IP-based opportunistic step."""
        if executor is None:
            executor = lambda vm, dest: self.dc.migrate(vm, dest, now)
        moved = super().step(hour_index, now, executor)
        if self.params.opportunistic_step:
            moved += self.opportunistic_step(hour_index, executor)
        return moved

    # ------------------------------------------------------------------
    def opportunistic_step(self, hour_index: int,
                           executor: MigrationExecutor) -> int:
        """Split hosts whose VM IP range is wider than the 7σ threshold.

        Per section III-D: (1) find hosts with a too-wide IP range;
        (2) select the VMs with the most extreme IPs; (3) place them on
        the host with the closest IP, until the range is under the
        threshold or no destination fits.
        """
        threshold = self.params.ip_range_threshold
        # Columnar IP ranges/means when the host accounting is active
        # (recomputed after every migration — the placement epoch keys
        # the cache); scalar per-host fallback otherwise.
        acc = columnar_host_view(self.dc)

        def ip_range(host: Host) -> float:
            if acc is not None:
                return float(acc.ip_range(hour_index)[acc.pos(host)])
            return host.ip_range(hour_index)

        moved = 0
        for host in list(self.managed_hosts()):
            guard = len(host.vms) + 1
            while ip_range(host) > threshold and guard > 0:
                guard -= 1
                vm = self._most_extreme_vm(host, hour_index, acc)
                if vm is None:
                    break
                targets = [h for h in self.managed_hosts() if h is not host]
                placement = self.placer.place([vm], targets, hour_index,
                                              {vm.name: host})
                dest = placement.get(vm.name)
                if dest is None:
                    break
                executor(vm, dest)
                moved += 1
        self.dc.check_invariants()
        return moved

    def _most_extreme_vm(self, host: Host, hour_index: int,
                         acc=None) -> VM | None:
        if len(host.vms) < 2:
            return None
        if acc is not None:
            mean_ip = float(acc.mean_raw_ip(hour_index)[acc.pos(host)])
        else:
            mean_ip = host.mean_raw_ip(hour_index)
        return max(host.vms,
                   key=lambda vm: (abs(vm.raw_ip(hour_index) - mean_ip), vm.name))

    # ------------------------------------------------------------------
    def relocate_all(self, hour_index: int, now: float) -> int:
        """Evaluation mode: re-place every VM purely by IP proximity.

        Starting from the current placement, performs a local search
        over VM swaps (and moves into free slots) that reduce the total
        per-host IP *dispersion* -- the sum over VMs of their distance
        to their host's mean IP.  An improvement must exceed the paper's
        IP-distance tolerance (footnote 3): placements therefore
        converge and "a migrated VM reaches a stable state" (Fig. 2)
        instead of reshuffling on IP noise.  Returns the number of
        migrations performed.
        """
        hosts = [h for h in self.dc.hosts if h.state in MANAGED_STATES]
        vms = [vm for h in hosts for vm in h.vms]
        if not vms:
            return 0
        # Predicted raw IP of each VM over the next day of hourly slots
        # (models trained on the past only — no oracle).  A whole-day
        # profile separates patterns that a single slot cannot: two VMs
        # can tie at 3 am yet differ at 9 am.
        window = 24
        ips = {vm.name: np.array([vm.raw_ip(hour_index + k)
                                  for k in range(window)]) for vm in vms}
        groups: dict[str, list[VM]] = {h.name: list(h.vms) for h in hosts}
        host_by_name = {h.name: h for h in hosts}

        def dispersion(group: list[VM]) -> float:
            """Summed per-slot IP spread of a host's VMs over the window."""
            if len(group) < 2:
                return 0.0
            vals = np.stack([ips[vm.name] for vm in group])
            mean = vals.mean(axis=0)
            return float(np.abs(vals - mean).sum())

        threshold = self.params.ip_distance_tolerance
        names = sorted(groups)
        for _ in range(len(vms)):  # convergence bound
            improved = False
            for i, n1 in enumerate(names):
                for n2 in names[i + 1:]:
                    g1, g2 = groups[n1], groups[n2]
                    h1, h2 = host_by_name[n1], host_by_name[n2]
                    mem1 = sum(v.resources.memory_mb for v in g1)
                    cpu1 = sum(v.resources.cpus for v in g1)
                    mem2 = sum(v.resources.memory_mb for v in g2)
                    cpu2 = sum(v.resources.cpus for v in g2)
                    base = dispersion(g1) + dispersion(g2)
                    best: tuple[float, VM | None, VM | None] | None = None
                    # Swaps and one-way moves into genuinely free slots
                    # (never onto an emptied host: splitting a group
                    # onto idle metal is anti-consolidation).
                    candidates: list[tuple[VM | None, VM | None]] = [
                        (a, b) for a in g1 for b in g2]
                    if g2:
                        candidates += [(a, None) for a in g1]
                    if g1:
                        candidates += [(None, b) for b in g2]
                    for a, b in candidates:
                        am, ac = ((a.resources.memory_mb, a.resources.cpus)
                                  if a is not None else (0, 0))
                        bm, bc = ((b.resources.memory_mb, b.resources.cpus)
                                  if b is not None else (0, 0))
                        # Capacity is a hard constraint in *both*
                        # directions: with heterogeneous flavors (the
                        # scenario fleets) even a swap is not
                        # capacity-neutral.  O(1) deltas off the hoisted
                        # group sums; always true for uniform flavors,
                        # so the E8 search is unchanged.
                        if (mem1 - am + bm > h1.capacity.memory_mb
                                or cpu1 - ac + bc > h1.capacity.schedulable_cpus
                                or mem2 - bm + am > h2.capacity.memory_mb
                                or cpu2 - bc + ac > h2.capacity.schedulable_cpus):
                            continue
                        new1 = [v for v in g1 if v is not a] + ([b] if b else [])
                        new2 = [v for v in g2 if v is not b] + ([a] if a else [])
                        gain = base - (dispersion(new1) + dispersion(new2))
                        if gain > threshold and (best is None or gain > best[0]):
                            best = (gain, a, b)
                    if best is not None:
                        _, a, b = best
                        groups[n1] = [v for v in g1 if v is not a] + ([b] if b else [])
                        groups[n2] = [v for v in g2 if v is not b] + ([a] if a else [])
                        improved = True
            if not improved:
                break

        assignment = {vm.name: host_by_name[hname]
                      for hname, group in groups.items() for vm in group}
        records = self.dc.apply_assignment(assignment, now)
        return len(records)
