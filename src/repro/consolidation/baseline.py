"""Pairwise-matching placement baseline (paper section VII).

The paper contrasts Drowsy-DC's O(n) consolidation with systems that
check *pairs* of VMs for complementary patterns (VM multiplexing, [38]),
which is O(n²) in the number of VMs.  This module implements such a
pairwise matcher so the scalability claim (E9 in DESIGN.md) can be
benchmarked head-to-head.
"""

from __future__ import annotations

import numpy as np

from ..cluster.host import Host
from ..cluster.vm import VM


class PassiveController:
    """No-op consolidation: VMs stay where they were placed.

    The un-managed reference point (registered as ``"none"`` in
    :data:`repro.api.controllers`): no migrations ever happen, so hosts
    sleep — or fail to — purely on the merits of the initial placement
    and the per-host suspend logic.  Combined with
    ``suspend_enabled=False`` this is the paper's "current real world
    case" baseline.
    """

    name = "none"
    uses_idleness = False

    def observe_hour(self, hour_index: int) -> None:
        pass

    def step(self, hour_index: int, now: float, executor=None) -> int:
        return 0


def drowsy_linear_grouping(vms: list[VM], hosts: list[Host],
                           hour_index: int) -> list[list[VM]]:
    """Drowsy-style O(n log n) grouping: sort VMs by IP, cut into hosts.

    (The sort dominates; the per-VM work is O(1) thanks to the idleness
    model being incrementally maintained.)
    """
    ordered = sorted(vms, key=lambda vm: (-vm.raw_ip(hour_index), vm.name))
    groups: list[list[VM]] = []
    i = 0
    for host in hosts:
        group: list[VM] = []
        mem = cpu = 0
        while i < len(ordered):
            vm = ordered[i]
            if (mem + vm.resources.memory_mb > host.capacity.memory_mb
                    or cpu + vm.resources.cpus > host.capacity.schedulable_cpus):
                break
            group.append(vm)
            mem += vm.resources.memory_mb
            cpu += vm.resources.cpus
            i += 1
        groups.append(group)
    return groups


def pairwise_matching_grouping(vms: list[VM], hosts: list[Host],
                               hour_index: int) -> list[list[VM]]:
    """O(n²) pairwise matcher: greedily merge the closest-IP VM pairs.

    Builds the full |IP_i - IP_j| matrix, then repeatedly joins the
    closest compatible pair into host-sized clusters — the multiplexing
    approach the paper's related work section describes.
    """
    n = len(vms)
    if n == 0:
        return [[] for _ in hosts]
    ips = np.array([vm.raw_ip(hour_index) for vm in vms])
    # Full pairwise distance matrix: the O(n^2) step.
    dist = np.abs(ips[:, None] - ips[None, :])
    np.fill_diagonal(dist, np.inf)

    cluster_of = list(range(n))
    clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
    max_size = max(1, hosts[0].capacity.memory_mb // max(
        vms[0].resources.memory_mb, 1)) if hosts else 1

    order = np.dstack(np.unravel_index(np.argsort(dist, axis=None), dist.shape))[0]
    for i, j in order:
        ci, cj = cluster_of[i], cluster_of[j]
        if ci == cj:
            continue
        if len(clusters[ci]) + len(clusters[cj]) > max_size:
            continue
        clusters[ci].extend(clusters[cj])
        for k in clusters[cj]:
            cluster_of[k] = ci
        del clusters[cj]
        if len(clusters) <= len(hosts):
            break

    groups = [[vms[k] for k in members] for members in clusters.values()]
    groups.sort(key=len, reverse=True)
    while len(groups) < len(hosts):
        groups.append([])
    return groups[:len(hosts)]
