"""OpenStack Neat reimplementation (paper references [19], [25]).

Neat decomposes dynamic VM consolidation into four sub-problems:
(1) underload detection, (2) overload detection, (3) VM selection and
(4) VM placement.  :class:`NeatController` wires the pluggable pieces
from :mod:`.detection`, :mod:`.selection` and :mod:`.placement`; the
Drowsy-DC controller subclasses it, swapping (3) and (4) for the
IP-aware policies and appending the opportunistic step — exactly how
the paper describes its integration (section III-D-b).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..cluster.accounting import columnar_host_view
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .detection import OverloadDetector, ThresholdDetector, underloaded_candidates
from .placement import PlacementPolicy, PowerAwareBestFitDecreasing
from .selection import (
    MinimumMigrationTimeSelector,
    VMSelector,
    select_until_not_overloaded,
)

#: Hosts in these states participate in consolidation (a drowsy host
#: still hosts VMs; powered-off hosts do not).
MANAGED_STATES = (PowerState.ON, PowerState.SUSPENDED)

#: Executor callback: perform one migration (driver wakes hosts, etc.).
MigrationExecutor = Callable[[VM, Host], None]


class NeatController:
    """Dynamic consolidation in the style of OpenStack Neat."""

    name = "neat"
    #: Whether this controller consumes idleness models (Drowsy does).
    uses_idleness = False

    def __init__(
        self,
        dc: DataCenter,
        detector: OverloadDetector | None = None,
        selector: VMSelector | None = None,
        placer: PlacementPolicy | None = None,
        params: DrowsyParams = DEFAULT_PARAMS,
        overload_target: float = 0.8,
        history_window: int = 24,
    ) -> None:
        self.dc = dc
        self.params = params
        self.detector = detector or ThresholdDetector()
        self.selector = selector or MinimumMigrationTimeSelector()
        self.placer = placer or PowerAwareBestFitDecreasing()
        self.overload_target = overload_target
        self.history: dict[str, deque[float]] = {
            h.name: deque(maxlen=history_window) for h in dc.hosts}

    # ------------------------------------------------------------------
    def observe_hour(self, hour_index: int) -> None:
        """Record host utilizations (call after activities are set).

        With an active columnar accounting view the utilizations of all
        hosts come from one vectorized pass (bit-identical to the
        scalar ``Host.cpu_utilization`` property, the parity oracle).
        """
        acc = columnar_host_view(self.dc)
        if acc is not None:
            utils = acc.cpu_utilization(hour_index)
            for k, host in enumerate(self.dc.hosts):
                self.history[host.name].append(
                    float(utils[k]) if host.state is PowerState.ON else 0.0)
            return
        for host in self.dc.hosts:
            self.history[host.name].append(
                host.cpu_utilization if host.state is PowerState.ON else 0.0)

    def managed_hosts(self) -> list[Host]:
        return [h for h in self.dc.hosts if h.state in MANAGED_STATES]

    def _current_host_map(self) -> dict[str, Host]:
        return {vm.name: host for host in self.dc.hosts for vm in host.vms}

    # ------------------------------------------------------------------
    def step(self, hour_index: int, now: float,
             executor: MigrationExecutor | None = None) -> int:
        """One consolidation round.  Returns the number of migrations."""
        if executor is None:
            executor = lambda vm, dest: self.dc.migrate(vm, dest, now)
        moved = 0
        moved += self._handle_overloaded(hour_index, executor)
        moved += self._handle_underloaded(hour_index, executor)
        self.dc.check_invariants()
        return moved

    def _handle_overloaded(self, hour_index: int,
                           executor: MigrationExecutor) -> int:
        overloaded = [h for h in self.dc.hosts
                      if h.state is PowerState.ON
                      and self.detector.is_overloaded(list(self.history[h.name]))]
        if not overloaded:
            return 0
        to_place: list[VM] = []
        sources = {}
        for host in overloaded:
            order = self.selector.order(host, hour_index)
            for vm in select_until_not_overloaded(host, order, self.overload_target):
                to_place.append(vm)
                sources[vm.name] = host
        targets = [h for h in self.managed_hosts() if h not in overloaded]
        placement = self.placer.place(to_place, targets, hour_index, sources)
        unplaced = [vm for vm in to_place if vm.name not in placement]
        if unplaced:
            # Neat reactivates powered-off hosts when overload relief
            # cannot fit on the active pool.
            off_hosts = sorted(
                (h for h in self.dc.hosts if h.state is PowerState.OFF),
                key=lambda h: h.name)
            if off_hosts:
                extra = self.placer.place(unplaced, off_hosts, hour_index,
                                          sources)
                placement.update(extra)
        moved = 0
        for vm in to_place:
            dest = placement.get(vm.name)
            if dest is not None:
                executor(vm, dest)
                moved += 1
        return moved

    def _handle_underloaded(self, hour_index: int,
                            executor: MigrationExecutor) -> int:
        """Try to fully evacuate the least-utilized active hosts."""
        acc = columnar_host_view(self.dc)
        if acc is not None:
            u = acc.cpu_utilization(hour_index)
            utils = {h.name: float(u[k])
                     for k, h in enumerate(self.dc.hosts)
                     if h.state is PowerState.ON and h.vms}
        else:
            utils = {h.name: h.cpu_utilization for h in self.dc.hosts
                     if h.state is PowerState.ON and h.vms}
        moved = 0
        receivers: set[str] = set()
        for name in underloaded_candidates(utils):
            host = self.dc.host(name)
            if not host.vms or host.name in receivers:
                # A host that just received evacuated VMs must not be
                # evacuated itself this round (ping-pong guard).
                continue
            vms = list(host.vms)
            targets = [h for h in self.managed_hosts() if h is not host]
            current = {vm.name: host for vm in vms}
            placement = self.placer.place(vms, targets, hour_index, current)
            if len(placement) != len(vms):
                # Neat stops at the first candidate it cannot evacuate.
                break
            for vm in vms:
                executor(vm, placement[vm.name])
                receivers.add(placement[vm.name].name)
                moved += 1
        return moved
