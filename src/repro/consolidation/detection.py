"""Overload / underload detection (OpenStack Neat sub-problems 1 and 2).

Neat [19, 25] splits dynamic consolidation into four sub-problems; the
first two decide *which hosts* need attention.  We reimplement the
detectors from Beloglazov & Buyya that Neat ships:

* static threshold (THR);
* median absolute deviation (MAD) adaptive threshold;
* interquartile range (IQR) adaptive threshold;
* local regression (LR/LRR) trend prediction.

All detectors consume a host's recent CPU-utilization history (most
recent last).  Underload detection follows Neat's simple policy: the
lowest-utilization active host is an underload candidate; the migration
planner then checks that its VMs fit elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np


class OverloadDetector(Protocol):
    """Decides whether a host is overloaded from its utilization history."""

    def is_overloaded(self, history: Sequence[float]) -> bool: ...


@dataclass(frozen=True)
class ThresholdDetector:
    """Static utilization threshold (Neat's THR, default 0.8)."""

    threshold: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")

    def is_overloaded(self, history: Sequence[float]) -> bool:
        return bool(history) and history[-1] > self.threshold


@dataclass(frozen=True)
class MadDetector:
    """Adaptive threshold 1 - s * MAD(history) (Beloglazov's MAD).

    Falls back to THR behaviour until enough history accumulates.
    """

    safety: float = 2.5
    min_history: int = 10
    fallback_threshold: float = 0.8

    def is_overloaded(self, history: Sequence[float]) -> bool:
        if len(history) < self.min_history:
            return ThresholdDetector(self.fallback_threshold).is_overloaded(history)
        h = np.asarray(history, dtype=np.float64)
        mad = float(np.median(np.abs(h - np.median(h))))
        threshold = 1.0 - self.safety * mad
        return float(h[-1]) > max(threshold, 0.0)


@dataclass(frozen=True)
class IqrDetector:
    """Adaptive threshold 1 - s * IQR(history) (Beloglazov's IQR)."""

    safety: float = 1.5
    min_history: int = 10
    fallback_threshold: float = 0.8

    def is_overloaded(self, history: Sequence[float]) -> bool:
        if len(history) < self.min_history:
            return ThresholdDetector(self.fallback_threshold).is_overloaded(history)
        h = np.asarray(history, dtype=np.float64)
        q75, q25 = np.percentile(h, [75, 25])
        threshold = 1.0 - self.safety * float(q75 - q25)
        return float(h[-1]) > max(threshold, 0.0)


@dataclass(frozen=True)
class LocalRegressionDetector:
    """Local regression (LR): predict next utilization from a trend fit.

    A weighted least-squares line (tricube weights, a là Loess) is fit
    over the last ``window`` points; the host is overloaded if the
    extrapolated next value, inflated by the safety factor, reaches 1.
    """

    window: int = 10
    safety: float = 1.2
    fallback_threshold: float = 0.8

    def is_overloaded(self, history: Sequence[float]) -> bool:
        if len(history) < self.window:
            return ThresholdDetector(self.fallback_threshold).is_overloaded(history)
        h = np.asarray(history[-self.window:], dtype=np.float64)
        x = np.arange(self.window, dtype=np.float64)
        # Tricube weights emphasizing recent observations.
        d = (x[-1] - x) / max(x[-1] - x[0], 1.0)
        w = (1.0 - d**3) ** 3
        xm = np.average(x, weights=w)
        ym = np.average(h, weights=w)
        denom = np.average((x - xm) ** 2, weights=w)
        slope = 0.0 if denom == 0 else float(np.average((x - xm) * (h - ym), weights=w) / denom)
        predicted = ym + slope * (self.window - xm)
        return self.safety * predicted >= 1.0


def underloaded_candidates(utilizations: dict[str, float],
                           exclude: frozenset[str] = frozenset()) -> list[str]:
    """Hosts ordered from least to most utilized (Neat's underload scan).

    The planner walks this list trying to fully evacuate each candidate;
    ``exclude`` removes hosts already being handled as overloaded.
    """
    items = [(u, name) for name, u in utilizations.items() if name not in exclude]
    items.sort()
    return [name for _, name in items]
