"""VM selection (Neat sub-problem 3) — classic and IP-aware policies.

Given an overloaded host, pick which VMs to migrate away.  Classic
policies (Beloglazov): minimum migration time (MMT), random selection
(RS), maximum correlation (MC).  Drowsy-DC replaces the ordering with:
sort by decreasing distance between the VM's IP and its host's IP, with
a tolerance making close distances equal, and classic criteria breaking
those ties (paper section III-D-b, step 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..cluster.host import Host
from ..cluster.migration import MigrationModel
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams


class VMSelector(Protocol):
    """Order the VMs of a host from first-to-migrate to last."""

    def order(self, host: Host, hour_index: int) -> list[VM]: ...


@dataclass(frozen=True)
class MinimumMigrationTimeSelector:
    """MMT: migrate the cheapest-to-move VMs first."""

    model: MigrationModel = MigrationModel()

    def order(self, host: Host, hour_index: int) -> list[VM]:
        return sorted(host.vms,
                      key=lambda vm: (self.model.duration_s(vm), vm.name))


class RandomSelector:
    """RS: uniformly random order (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    def order(self, host: Host, hour_index: int) -> list[VM]:
        vms = sorted(host.vms, key=lambda vm: vm.name)
        self.rng.shuffle(vms)
        return list(vms)


class MaximumCorrelationSelector:
    """MC: migrate the VM most correlated with the host's aggregate load.

    Uses each VM's recent trace window as its utilization history; falls
    back to MMT order when histories are too short or degenerate.
    """

    def __init__(self, window: int = 24,
                 model: MigrationModel = MigrationModel()) -> None:
        self.window = window
        self.model = model

    def order(self, host: Host, hour_index: int) -> list[VM]:
        if len(host.vms) < 2 or hour_index < 2:
            return MinimumMigrationTimeSelector(self.model).order(host, hour_index)
        start = max(hour_index - self.window, 0)
        hours = np.arange(start, hour_index)
        series = {vm.name: np.array([vm.activity_at(int(h)) for h in hours])
                  for vm in host.vms}

        def corr(vm: VM) -> float:
            others = [series[v.name] for v in host.vms if v is not vm]
            agg = np.sum(others, axis=0)
            mine = series[vm.name]
            if np.std(mine) == 0.0 or np.std(agg) == 0.0:
                return 0.0
            return float(np.corrcoef(mine, agg)[0, 1])

        return sorted(host.vms, key=lambda vm: (-corr(vm), vm.name))


@dataclass(frozen=True)
class IPDistanceSelector:
    """Drowsy-DC selection: most IP-mismatched VMs first.

    Distances are bucketed by the paper's tolerance so that "close
    distances are considered equal" (footnote 3) and the classic
    criterion (MMT) decides inside a bucket.
    """

    params: DrowsyParams = DEFAULT_PARAMS
    model: MigrationModel = MigrationModel()

    def order(self, host: Host, hour_index: int) -> list[VM]:
        host_ip = host.mean_raw_ip(hour_index)
        tol = self.params.ip_distance_tolerance

        def key(vm: VM) -> tuple:
            distance = abs(vm.raw_ip(hour_index) - host_ip)
            bucket = int(distance / tol) if tol > 0 else 0
            return (-bucket, self.model.duration_s(vm), vm.name)

        return sorted(host.vms, key=key)


def select_until_not_overloaded(host: Host, order: Sequence[VM],
                                threshold: float) -> list[VM]:
    """Take VMs from ``order`` until the host's utilization drops under
    ``threshold`` (the Neat overload-resolution loop)."""
    selected: list[VM] = []
    remaining_demand = sum(vm.current_activity * vm.resources.cpus for vm in host.vms)
    capacity = host.capacity.cpus
    for vm in order:
        if remaining_demand / capacity <= threshold:
            break
        selected.append(vm)
        remaining_demand -= vm.current_activity * vm.resources.cpus
    return selected
