"""VM placement (Neat sub-problem 4) — PABFD and the IP-aware variant.

Classic Neat places migrating VMs with Power-Aware Best Fit Decreasing
(PABFD): VMs in decreasing CPU demand, each to the host whose power draw
increases least.  Drowsy-DC keeps the decreasing-demand outer loop
("we first treat VMs with the biggest resource requirements") but picks,
among the hosts that can take the VM, the one with the IP closest to the
VM's (paper section III-D-b, step 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..cluster.accounting import columnar_host_view
from ..cluster.host import Host
from ..cluster.power import PowerModel
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams


class PlacementPolicy(Protocol):
    """Choose a destination for each VM in a batch."""

    def place(self, vms: list[VM], hosts: list[Host], hour_index: int,
              current_host: dict[str, Host]) -> dict[str, Host]: ...


def _fits(host: Host, vm: VM) -> bool:
    used = host.used_resources
    return (used.memory_mb + vm.resources.memory_mb <= host.capacity.memory_mb
            and used.cpus + vm.resources.cpus <= host.capacity.schedulable_cpus)


def _accounting_for(hosts: list[Host]):
    """The columnar host accounting covering ``hosts``, or ``None``.

    Placement policies only see a host list; the data-center
    back-reference lets them read per-host loads and IP means from the
    columnar view (bit-identical to the scalar properties) instead of
    re-summing VM lists per candidate host.
    """
    if not hosts:
        return None
    dc = getattr(hosts[0], "_dc", None)
    if dc is None:
        return None
    acc = columnar_host_view(dc)
    if acc is None:
        return None
    if any(acc.position(h.name) is None for h in hosts):
        return None
    return acc


def decreasing_demand(vms: list[VM]) -> list[VM]:
    """Sort by decreasing CPU demand, then memory, then name (stable)."""
    return sorted(vms, key=lambda vm: (-vm.current_activity * vm.resources.cpus,
                                       -vm.resources.memory_mb, vm.name))


@dataclass
class PowerAwareBestFitDecreasing:
    """Beloglazov's PABFD."""

    power_model: PowerModel = PowerModel()

    def place(self, vms: list[VM], hosts: list[Host], hour_index: int,
              current_host: dict[str, Host]) -> dict[str, Host]:
        from ..cluster.power import PowerState

        placement: dict[str, Host] = {}
        # Host membership is fixed during a planning round, so the base
        # loads are computed once per host instead of once per
        # (vm, host) pair; planned additions accumulate incrementally.
        # The running sums reproduce the seed's left-to-right Python
        # sums exactly (same floats, same order of additions) — as do
        # the columnar accounting columns used when available.
        acc = _accounting_for(hosts)
        if acc is not None:
            mem_col, cpu_col = acc.used_memory_mb(), acc.used_cpus()
            demand_col = acc.cpu_demand(hour_index)
            used_mem, used_cpu, base_demand = {}, {}, {}
            for h in hosts:
                k = acc.position(h.name)
                used_mem[h.name] = int(mem_col[k])
                used_cpu[h.name] = int(cpu_col[k])
                base_demand[h.name] = float(demand_col[k])
        else:
            used_mem = {h.name: h.used_resources.memory_mb for h in hosts}
            used_cpu = {h.name: h.used_resources.cpus for h in hosts}
            base_demand = {
                h.name: sum(v.current_activity * v.resources.cpus
                            for v in h.vms)
                for h in hosts}
        planned_demand = {h.name: 0.0 for h in hosts}

        for vm in decreasing_demand(vms):
            best: tuple[float, str] | None = None
            src = current_host.get(vm.name)
            for host in hosts:
                if src is not None and host is src:
                    continue
                name = host.name
                if not (used_mem[name] + vm.resources.memory_mb
                        <= host.capacity.memory_mb
                        and used_cpu[name] + vm.resources.cpus
                        <= host.capacity.schedulable_cpus):
                    continue
                demand = base_demand[name] + planned_demand[name]
                cap = host.capacity.cpus
                before = self.power_model.power(
                    PowerState.ON, min((demand + 0.0) / cap, 1.0))
                extra = vm.current_activity * vm.resources.cpus
                after = self.power_model.power(
                    PowerState.ON, min((demand + extra) / cap, 1.0))
                cand = (after - before, name)
                if best is None or cand < best:
                    best = cand
            if best is not None:
                dest = next(h for h in hosts if h.name == best[1])
                placement[vm.name] = dest
                used_mem[dest.name] += vm.resources.memory_mb
                used_cpu[dest.name] += vm.resources.cpus
                planned_demand[dest.name] += (vm.current_activity
                                              * vm.resources.cpus)
        return placement


@dataclass
class IPAwarePlacement:
    """Drowsy-DC placement: biggest VMs first, destination = closest IP.

    Among suitable hosts, minimize |host IP - VM IP|; resource fit is a
    hard constraint.  Ties (within the tolerance bucket) go to the more
    loaded host (stacking), then host name for determinism.
    """

    params: DrowsyParams = DEFAULT_PARAMS

    def place(self, vms: list[VM], hosts: list[Host], hour_index: int,
              current_host: dict[str, Host]) -> dict[str, Host]:
        placement: dict[str, Host] = {}
        tol = self.params.ip_distance_tolerance
        # Per-host quantities that are constant for the whole planning
        # round (models and membership don't change mid-round), hoisted
        # out of the (vm, host) pair loop: the host IP means, the free
        # memory used for stacking ties, and the running fit loads.
        # The columnar accounting supplies them in one pass when active.
        acc = _accounting_for(hosts)
        if acc is not None:
            ip_col = acc.mean_raw_ip(hour_index)
            mem_col, cpu_col = acc.used_memory_mb(), acc.used_cpus()
            mean_ip, free_mem, used_mem, used_cpu = {}, {}, {}, {}
            for h in hosts:
                k = acc.position(h.name)
                mean_ip[h.name] = float(ip_col[k])
                used_mem[h.name] = int(mem_col[k])
                used_cpu[h.name] = int(cpu_col[k])
                free_mem[h.name] = h.capacity.memory_mb - used_mem[h.name]
        else:
            mean_ip = {h.name: h.mean_raw_ip(hour_index) for h in hosts}
            free_mem = {h.name: h.capacity.memory_mb
                        - h.used_resources.memory_mb for h in hosts}
            used_mem = {h.name: h.capacity.memory_mb - free_mem[h.name]
                        for h in hosts}
            used_cpu = {h.name: h.used_resources.cpus for h in hosts}

        ordered = sorted(vms, key=lambda vm: (-vm.resources.memory_mb,
                                              -vm.resources.cpus, vm.name))
        for vm in ordered:
            vm_ip = vm.raw_ip(hour_index)
            src = current_host.get(vm.name)
            best: tuple[int, float, str] | None = None
            for host in hosts:
                if src is not None and host is src:
                    continue
                name = host.name
                if not (used_mem[name] + vm.resources.memory_mb
                        <= host.capacity.memory_mb
                        and used_cpu[name] + vm.resources.cpus
                        <= host.capacity.schedulable_cpus):
                    continue
                distance = abs(mean_ip[name] - vm_ip)
                bucket = int(distance / tol) if tol > 0 else 0
                cand = (bucket, float(free_mem[name]), name)
                if best is None or cand < best:
                    best = cand
            if best is not None:
                dest = next(h for h in hosts if h.name == best[2])
                placement[vm.name] = dest
                used_mem[dest.name] += vm.resources.memory_mb
                used_cpu[dest.name] += vm.resources.cpus
        return placement
