"""VM placement (Neat sub-problem 4) — PABFD and the IP-aware variant.

Classic Neat places migrating VMs with Power-Aware Best Fit Decreasing
(PABFD): VMs in decreasing CPU demand, each to the host whose power draw
increases least.  Drowsy-DC keeps the decreasing-demand outer loop
("we first treat VMs with the biggest resource requirements") but picks,
among the hosts that can take the VM, the one with the IP closest to the
VM's (paper section III-D-b, step 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..cluster.host import Host
from ..cluster.power import PowerModel
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams


class PlacementPolicy(Protocol):
    """Choose a destination for each VM in a batch."""

    def place(self, vms: list[VM], hosts: list[Host], hour_index: int,
              current_host: dict[str, Host]) -> dict[str, Host]: ...


def _fits(host: Host, vm: VM) -> bool:
    used = host.used_resources
    return (used.memory_mb + vm.resources.memory_mb <= host.capacity.memory_mb
            and used.cpus + vm.resources.cpus <= host.capacity.schedulable_cpus)


def decreasing_demand(vms: list[VM]) -> list[VM]:
    """Sort by decreasing CPU demand, then memory, then name (stable)."""
    return sorted(vms, key=lambda vm: (-vm.current_activity * vm.resources.cpus,
                                       -vm.resources.memory_mb, vm.name))


@dataclass
class PowerAwareBestFitDecreasing:
    """Beloglazov's PABFD."""

    power_model: PowerModel = PowerModel()

    def place(self, vms: list[VM], hosts: list[Host], hour_index: int,
              current_host: dict[str, Host]) -> dict[str, Host]:
        placement: dict[str, Host] = {}
        # Track planned extra load per host so a batch doesn't overpack.
        planned: dict[str, list[VM]] = {h.name: [] for h in hosts}

        for vm in decreasing_demand(vms):
            best: tuple[float, str] | None = None
            src = current_host.get(vm.name)
            for host in hosts:
                if src is not None and host is src:
                    continue
                if not self._fits_planned(host, planned[host.name], vm):
                    continue
                delta = self._power_delta(host, planned[host.name], vm)
                cand = (delta, host.name)
                if best is None or cand < best:
                    best = cand
            if best is not None:
                dest = next(h for h in hosts if h.name == best[1])
                placement[vm.name] = dest
                planned[dest.name].append(vm)
        return placement

    def _fits_planned(self, host: Host, planned: list[VM], vm: VM) -> bool:
        used = host.used_resources
        mem = used.memory_mb + sum(v.resources.memory_mb for v in planned)
        cpu = used.cpus + sum(v.resources.cpus for v in planned)
        return (mem + vm.resources.memory_mb <= host.capacity.memory_mb
                and cpu + vm.resources.cpus <= host.capacity.schedulable_cpus)

    def _power_delta(self, host: Host, planned: list[VM], vm: VM) -> float:
        def util(extra: float) -> float:
            demand = sum(v.current_activity * v.resources.cpus for v in host.vms)
            demand += sum(v.current_activity * v.resources.cpus for v in planned)
            return min((demand + extra) / host.capacity.cpus, 1.0)

        from ..cluster.power import PowerState

        before = self.power_model.power(PowerState.ON, util(0.0))
        after = self.power_model.power(
            PowerState.ON, util(vm.current_activity * vm.resources.cpus))
        return after - before


@dataclass
class IPAwarePlacement:
    """Drowsy-DC placement: biggest VMs first, destination = closest IP.

    Among suitable hosts, minimize |host IP - VM IP|; resource fit is a
    hard constraint.  Ties (within the tolerance bucket) go to the more
    loaded host (stacking), then host name for determinism.
    """

    params: DrowsyParams = DEFAULT_PARAMS

    def place(self, vms: list[VM], hosts: list[Host], hour_index: int,
              current_host: dict[str, Host]) -> dict[str, Host]:
        placement: dict[str, Host] = {}
        planned: dict[str, list[VM]] = {h.name: [] for h in hosts}
        tol = self.params.ip_distance_tolerance

        ordered = sorted(vms, key=lambda vm: (-vm.resources.memory_mb,
                                              -vm.resources.cpus, vm.name))
        for vm in ordered:
            vm_ip = vm.raw_ip(hour_index)
            src = current_host.get(vm.name)
            best: tuple[int, float, str] | None = None
            for host in hosts:
                if src is not None and host is src:
                    continue
                if not self._fits_planned(host, planned[host.name], vm):
                    continue
                distance = abs(host.mean_raw_ip(hour_index) - vm_ip)
                bucket = int(distance / tol) if tol > 0 else 0
                free_mem = host.capacity.memory_mb - host.used_resources.memory_mb
                cand = (bucket, float(free_mem), host.name)
                if best is None or cand < best:
                    best = cand
            if best is not None:
                dest = next(h for h in hosts if h.name == best[2])
                placement[vm.name] = dest
                planned[dest.name].append(vm)
        return placement

    def _fits_planned(self, host: Host, planned: list[VM], vm: VM) -> bool:
        used = host.used_resources
        mem = used.memory_mb + sum(v.resources.memory_mb for v in planned)
        cpu = used.cpus + sum(v.resources.cpus for v in planned)
        return (mem + vm.resources.memory_mb <= host.capacity.memory_mb
                and cpu + vm.resources.cpus <= host.capacity.schedulable_cpus)
