"""Oasis-like baseline (paper reference [20], comparison in section VII).

Oasis (Zhi, Bila, de Lara — EuroSys'16) reaches energy proportionality
with *hybrid* consolidation: when a VM idles, only its working set is
partially migrated to an always-on consolidation server, letting the
source host sleep; when the VM becomes active again its state is
restored (migrated back) on demand.

Key behavioural differences from Drowsy-DC that our model preserves:

* **Reactive, not predictive** — parking happens after idleness is
  observed; there is no placement by matching idleness patterns, so
  hosts with unaligned VMs oscillate more and sleep less.
* **Always-on consolidation servers** — they burn full S0 power.
* **Pairwise/partial-migration costs** — every activity burst of a
  parked VM pays a restore penalty (latency and network energy).

This simplified model is sufficient for the paper's two comparison
axes: total energy (section VI-B / VII: Drowsy outperforms Oasis by an
average of 81 %) and algorithmic scalability (O(n) vs O(n²)).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..core.params import DEFAULT_PARAMS, DrowsyParams


@dataclass(frozen=True)
class OasisCosts:
    """Cost model of partial migration."""

    #: Fraction of VM memory in the working set that moves on park.
    working_set_fraction: float = 0.10
    #: Latency to restore a parked VM on its first access.
    restore_latency_s: float = 3.0
    #: Energy per MB transferred over the consolidation network (J/MB).
    transfer_j_per_mb: float = 0.02


class OasisController:
    """Reactive idle-VM parking onto consolidation servers."""

    name = "oasis"
    uses_idleness = False

    def __init__(self, dc: DataCenter, params: DrowsyParams = DEFAULT_PARAMS,
                 n_consolidation_hosts: int = 1,
                 costs: OasisCosts = OasisCosts()) -> None:
        if n_consolidation_hosts < 1:
            raise ValueError("Oasis needs at least one consolidation server")
        if n_consolidation_hosts >= len(dc.hosts):
            raise ValueError("consolidation servers must leave worker hosts")
        self.dc = dc
        self.params = params
        self.costs = costs
        self.consolidation_hosts = frozenset(
            h.name for h in dc.hosts[:n_consolidation_hosts])
        self.parked: set[str] = set()
        self.park_count = 0
        self.restore_count = 0
        self.transfer_energy_j = 0.0
        #: Restore latencies incurred this step (for SLA accounting).
        self.last_restores: list[str] = []

    # ------------------------------------------------------------------
    def observe_hour(self, hour_index: int) -> None:
        """Interface parity with the Neat-family controllers (no-op)."""

    def step(self, hour_index: int, now: float, executor=None) -> int:
        """Park newly idle VMs, restore newly active ones.

        Parking/restoring is partial migration: the VM's *home* does not
        change (no :class:`DataCenter` migration records), only its
        working-set location.  Returns the number of partial migrations.
        """
        self.last_restores = []
        ops = 0
        for host in self.dc.hosts:
            if host.name in self.consolidation_hosts:
                continue
            for vm in host.vms:
                ws_mb = vm.resources.memory_mb * self.costs.working_set_fraction
                if vm.is_idle_now and vm.name not in self.parked:
                    self.parked.add(vm.name)
                    self.park_count += 1
                    self.transfer_energy_j += ws_mb * self.costs.transfer_j_per_mb
                    ops += 1
                elif not vm.is_idle_now and vm.name in self.parked:
                    self.parked.discard(vm.name)
                    self.restore_count += 1
                    self.transfer_energy_j += ws_mb * self.costs.transfer_j_per_mb
                    self.last_restores.append(vm.name)
                    ops += 1
        return ops

    # ------------------------------------------------------------------
    def host_can_sleep(self, host: Host) -> bool:
        """A worker host sleeps iff every VM's working set is parked;
        consolidation servers never sleep."""
        if host.name in self.consolidation_hosts:
            return False
        return bool(host.vms) and all(vm.name in self.parked for vm in host.vms)

    def host_must_wake(self, host: Host) -> bool:
        """A sleeping worker must wake when any of its VMs was restored."""
        return any(vm.name not in self.parked and not vm.is_idle_now
                   for vm in host.vms)
