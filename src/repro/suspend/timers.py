"""High-resolution timer registry (paper section V-B).

Simulates the kernel hrtimer subsystem: every sleeping process that set
a wakeup registers a timer in a red-black tree keyed by expiry.  On
suspension, the suspending module walks the tree for the earliest timer
that belongs to a non-blacklisted process — that is the waking date.  If
no valid timer exists, the host "can remain suspended indefinitely until
the waking module wakes it up because of an external request".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.host import Host
from .process import DEFAULT_BLACKLIST
from .rbtree import RedBlackTree


@dataclass(frozen=True)
class TimerEntry:
    """One registered hrtimer."""

    fire_time_s: float
    process_name: str
    timer_name: str
    vm_name: str | None = None


class TimerRegistry:
    """Red-black tree of pending timers with process-based filtering."""

    def __init__(self) -> None:
        self._tree = RedBlackTree()
        self._handles: dict[tuple[str, str], object] = {}

    def __len__(self) -> int:
        return len(self._tree)

    def register(self, entry: TimerEntry) -> None:
        """Register (or re-arm) a timer; re-arming replaces the old expiry."""
        key = (entry.process_name, entry.timer_name)
        old = self._handles.pop(key, None)
        if old is not None:
            self._tree.remove_node(old)
        self._handles[key] = self._tree.insert(entry.fire_time_s, entry)

    def cancel(self, process_name: str, timer_name: str) -> bool:
        """Cancel a timer; returns False if it was not registered."""
        handle = self._handles.pop((process_name, timer_name), None)
        if handle is None:
            return False
        self._tree.remove_node(handle)
        return True

    def earliest_valid(self, blacklist: frozenset[str] = DEFAULT_BLACKLIST) -> TimerEntry | None:
        """Earliest timer of a non-blacklisted process (the waking date).

        This is the section V-B walk: timers registered by the same
        processes the idleness check ignores are filtered out, so a
        watchdog's periodic timer cannot wake the host.
        """
        for _, entry in self._tree.items():
            if entry.process_name not in blacklist:
                return entry
        return None

    def entries(self) -> list[TimerEntry]:
        """All pending timers in expiry order."""
        return [entry for _, entry in self._tree.items()]


def build_host_registry(host: Host, now: float,
                        daemon_period_s: float = 60.0) -> TimerRegistry:
    """Snapshot the hrtimer tree of a host at time ``now``.

    Each VM contributes the next expiry of each of its service timers;
    host daemons contribute their own periodic timers (which must be
    filtered out by the blacklist — they are the "false positives" of
    section V-B).
    """
    registry = TimerRegistry()
    for daemon in sorted(DEFAULT_BLACKLIST):
        registry.register(TimerEntry(
            fire_time_s=now + daemon_period_s,
            process_name=daemon, timer_name=f"{daemon}-tick"))
    for vm in host.vms:
        for timer in vm.timers:
            registry.register(TimerEntry(
                fire_time_s=timer.next_fire(now),
                process_name=timer.process_name,
                timer_name=f"{vm.name}:{timer.name}",
                vm_name=vm.name))
    return registry


def compute_waking_date(host: Host, now: float,
                        blacklist: frozenset[str] = DEFAULT_BLACKLIST) -> float | None:
    """The waking date for a host about to suspend, or None.

    None means no work of interest is scheduled: the host may sleep
    until an external request arrives (section V-B).
    """
    registry = build_host_registry(host, now)
    entry = registry.earliest_valid(blacklist)
    return entry.fire_time_s if entry is not None else None
