"""Host process model for idleness detection (paper section IV).

"In a naive way, a system is idle if none of its processes is in the
running state.  However, there are false negatives and false positives."

* **False negatives** — processes that run but must not keep the host
  awake: monitoring agents, kernel watchdogs.  Handled with a blacklist.
* **False positives** — processes not running whose service is not idle:
  a process blocked waiting for a disk read must keep the host awake;
  a VM with open-but-silent SSH/TCP sessions *looks* idle and the paper
  deliberately does not introspect it (mitigated by the quick resume).

This module renders a host's VM population into a process table the
suspending module inspects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cluster.host import Host
from ..cluster.vm import VM


class ProcState(enum.Enum):
    """Scheduler states relevant to the idleness decision."""

    RUNNING = "R"       # on CPU or runnable
    BLOCKED_IO = "D"    # uninterruptible sleep (disk wait)
    SLEEPING = "S"      # interruptible sleep (idle)


@dataclass(frozen=True)
class Process:
    """One process as seen by the host-side monitor."""

    name: str
    state: ProcState
    #: Owning VM, or None for a host-level daemon.
    vm_name: str | None = None


#: Host daemons that always run but must not block suspension
#: (the paper's blacklisting system).
DEFAULT_BLACKLIST: frozenset[str] = frozenset({
    "watchdogd",
    "monitord",
    "kworker",
    "collectd",
    "drowsy-agent",
})


def vm_process_name(vm: VM) -> str:
    """Name of the QEMU process backing a VM."""
    return f"qemu-{vm.name}"


def host_process_table(host: Host, include_daemons: bool = True) -> list[Process]:
    """Render the current process table of a host.

    Each VM contributes its QEMU process: RUNNING when the VM has
    activity this hour, BLOCKED_IO when the simulator injected an I/O
    wait (``vm.blocked_io`` attribute), SLEEPING otherwise.  Host
    daemons are always RUNNING — they are the false negatives the
    blacklist must absorb.
    """
    table: list[Process] = []
    if include_daemons:
        table.extend(Process(d, ProcState.RUNNING) for d in sorted(DEFAULT_BLACKLIST))
    for vm in host.vms:
        if getattr(vm, "blocked_io", False):
            state = ProcState.BLOCKED_IO
        elif vm.current_activity > 0.0:
            state = ProcState.RUNNING
        else:
            state = ProcState.SLEEPING
        table.append(Process(vm_process_name(vm), state, vm_name=vm.name))
    return table


def is_host_idle(table: list[Process],
                 blacklist: frozenset[str] = DEFAULT_BLACKLIST) -> bool:
    """Idleness verdict over a process table.

    A host is idle iff no non-blacklisted process is RUNNING and no
    process (blacklisted or not) is blocked on I/O — a blocked read is
    pending work, suspending would lose it (section IV).
    """
    for proc in table:
        if proc.state is ProcState.BLOCKED_IO:
            return False
        if proc.state is ProcState.RUNNING and proc.name not in blacklist:
            return False
    return True
