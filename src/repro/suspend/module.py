"""The suspending module (paper section IV).

One instance runs per managed host.  It monitors the host's process
table, applies the blacklist and the blocked-I/O rule, honours the
grace time, computes the waking date from the hrtimer tree, and hands
both the suspend decision and the waking date to the waking module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cluster.host import Host
from ..cluster.power import PowerState
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .grace import grace_from_raw_ip
from .process import DEFAULT_BLACKLIST, ProcState, host_process_table
from .timers import compute_waking_date


class SuspendDecision(enum.Enum):
    """Outcome of one idleness evaluation."""

    SUSPEND = "suspend"
    ACTIVE = "active processes"         # some VM is computing
    BLOCKED_IO = "blocked on I/O"       # pending work, must stay up
    IN_GRACE = "within grace period"    # anti-oscillation window
    NOT_RUNNING = "host not in S0"      # already suspended/transitioning
    EMPTY = "no VMs hosted"             # classic consolidation's job (S5)
    HEURISTIC_VETO = "resource heuristic veto"  # e.g. page-dirtying rate


@dataclass(frozen=True)
class SuspendVerdict:
    """Decision plus the information the waking module needs."""

    decision: SuspendDecision
    #: Earliest valid hrtimer expiry, None = sleep until external wake.
    waking_date_s: float | None = None

    @property
    def should_suspend(self) -> bool:
        return self.decision is SuspendDecision.SUSPEND


class SuspendingModule:
    """Per-host suspend decision logic."""

    def __init__(self, host: Host, params: DrowsyParams = DEFAULT_PARAMS,
                 blacklist: frozenset[str] = DEFAULT_BLACKLIST,
                 heuristic=None) -> None:
        self.host = host
        self.params = params
        self.blacklist = blacklist
        #: Optional :class:`~repro.suspend.heuristics.IdlenessHeuristic`
        #: consulted on top of the process-table check (paper §IV's
        #: page-dirtying-rate suggestion).
        self.heuristic = heuristic
        #: Evaluations rejected per reason (suspending-module evaluation,
        #: section VI-A.4).
        self.decision_counts: dict[SuspendDecision, int] = {
            d: 0 for d in SuspendDecision}

    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> SuspendVerdict:
        """One idleness check.  Pure: no state transition is performed."""
        verdict = self._evaluate(now)
        self.decision_counts[verdict.decision] += 1
        return verdict

    def _evaluate(self, now: float) -> SuspendVerdict:
        host = self.host
        if host.state is not PowerState.ON:
            return SuspendVerdict(SuspendDecision.NOT_RUNNING)
        if not host.vms:
            return SuspendVerdict(SuspendDecision.EMPTY)

        table = host_process_table(host)
        # Blocked-on-I/O processes are pending work (false positives of
        # the naive check): never suspend over them.
        if any(p.state is ProcState.BLOCKED_IO for p in table):
            return SuspendVerdict(SuspendDecision.BLOCKED_IO)
        # Any non-blacklisted runnable process keeps the host awake.
        if any(p.state is ProcState.RUNNING and p.name not in self.blacklist
               for p in table):
            return SuspendVerdict(SuspendDecision.ACTIVE)
        if self.heuristic is not None and not self.heuristic.host_seems_idle(host):
            return SuspendVerdict(SuspendDecision.HEURISTIC_VETO)
        if host.in_grace(now):
            return SuspendVerdict(SuspendDecision.IN_GRACE)

        return SuspendVerdict(
            SuspendDecision.SUSPEND,
            waking_date_s=compute_waking_date(host, now, self.blacklist))

    # ------------------------------------------------------------------
    def grace_for_resume(self, now: float, hour_index: int) -> float:
        """Grace window to apply when the host resumes (section IV).

        Derived from the host's idleness probability at resume time:
        likely-active hosts get a long window to protect their QoS.
        """
        return grace_from_raw_ip(self.host.mean_raw_ip(hour_index), self.params)
