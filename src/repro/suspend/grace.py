"""Grace time: anti-oscillation guard (paper section IV).

After a resume there is a window during which the host cannot be
suspended again, "whatever its activity level", preventing servers from
ping-ponging between awake and suspended.  The window length depends on
the host's idleness probability: "if the IP tells that it is likely that
the host is active, the grace time is longer ... empirically set between
5 s and 2 min, exponentially increasing as the IP decreases".
"""

from __future__ import annotations

import math

from ..core.params import DEFAULT_PARAMS, DrowsyParams


def grace_time_s(ip_probability: float, params: DrowsyParams = DEFAULT_PARAMS) -> float:
    """Grace window (seconds) for a host with normalized IP ``ip_probability``.

    Exponential interpolation: probability 1 (surely idle) gives the
    minimum (5 s), probability 0 (surely active) the maximum (2 min).
    """
    if not 0.0 <= ip_probability <= 1.0:
        raise ValueError(f"ip_probability must be in [0, 1], got {ip_probability}")
    if not params.use_grace:
        return 0.0
    lo, hi = params.grace_min_s, params.grace_max_s
    # Clamp: the exponential can overshoot the bound by one ulp.
    return min(max(lo * math.exp((1.0 - ip_probability) * math.log(hi / lo)), lo), hi)


def grace_from_raw_ip(raw_ip: float, params: DrowsyParams = DEFAULT_PARAMS) -> float:
    """Grace window from a host's *raw* IP (the w^T SI scale).

    Raw IPs move by sigma-sized steps, so they are first rescaled by
    ``params.grace_ip_scale`` (a couple of weeks of divergence saturates
    the window) before the exponential mapping: a clearly-active host
    (negative raw IP) gets the full 2-minute window, a clearly-idle one
    the 5-second minimum.
    """
    scaled = 0.5 + raw_ip / (2.0 * params.grace_ip_scale)
    return grace_time_s(min(max(scaled, 0.0), 1.0), params)
