"""Red-black tree keyed by timer expiry (the kernel hrtimer structure).

Paper section V-B: the suspending module "walks the red-black tree
structure that is used internally by the kernel to store the timers" to
find the earliest valid waking date.  We implement the same structure —
a classic CLRS red-black tree with duplicate-key support — so the walk,
the filtering and the complexity are faithful to the original.

Invariants (checked by :meth:`RedBlackTree.validate` and property tests):
root is black; no red node has a red child; every root-leaf path has the
same black height; in-order traversal yields keys in non-decreasing
order.
"""

from __future__ import annotations

from typing import Any, Iterator

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: float, value: Any, color: bool, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """Ordered multimap from float keys to arbitrary values."""

    def __init__(self) -> None:
        self._nil = _Node.__new__(_Node)
        self._nil.key = float("nan")
        self._nil.value = None
        self._nil.color = BLACK
        self._nil.left = self._nil
        self._nil.right = self._nil
        self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # rotations
    # ------------------------------------------------------------------
    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, key: float, value: Any) -> Any:
        """Insert a (key, value) pair; duplicate keys allowed.

        Returns an opaque handle usable with :meth:`remove_node`.
        """
        node = _Node(float(key), value, RED, self._nil)
        parent, cur = self._nil, self._root
        while cur is not self._nil:
            parent = cur
            cur = cur.left if node.key < cur.key else cur.right
        node.parent = parent
        if parent is self._nil:
            self._root = node
        elif node.key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._size += 1
        self._insert_fixup(node)
        return node

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            gp = z.parent.parent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = gp.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def remove_node(self, z: _Node) -> None:
        """Remove a node previously returned by :meth:`insert`."""
        y = z
        y_original_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        self._size -= 1
        if y_original_color is BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def min_item(self) -> tuple[float, Any]:
        """Smallest (key, value) — the next timer to expire."""
        if self._root is self._nil:
            raise KeyError("tree is empty")
        node = self._minimum(self._root)
        return node.key, node.value

    def pop_min(self) -> tuple[float, Any]:
        """Remove and return the smallest (key, value)."""
        if self._root is self._nil:
            raise KeyError("tree is empty")
        node = self._minimum(self._root)
        item = (node.key, node.value)
        self.remove_node(node)
        return item

    def items(self) -> Iterator[tuple[float, Any]]:
        """In-order (sorted) walk over all (key, value) pairs."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    # ------------------------------------------------------------------
    # validation (tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all red-black invariants; raises AssertionError if broken."""
        assert self._root.color is BLACK, "root must be black"

        def walk(node: _Node) -> int:
            if node is self._nil:
                return 1
            if node.color is RED:
                assert node.left.color is BLACK and node.right.color is BLACK, \
                    "red node with red child"
            if node.left is not self._nil:
                assert node.left.key <= node.key, "BST order violated"
            if node.right is not self._nil:
                assert node.right.key >= node.key, "BST order violated"
            lh = walk(node.left)
            rh = walk(node.right)
            assert lh == rh, "black heights differ"
            return lh + (0 if node.color is RED else 1)

        walk(self._root)
        assert sum(1 for _ in self.items()) == self._size, "size mismatch"
