"""Columnar suspend verdicts: fleet-wide idleness checks (DESIGN.md §10).

The scalar :class:`~repro.suspend.module.SuspendingModule` renders a
host's process table and walks it per evaluation — exact, but ~50 µs of
Python per host per check, and the event-driven simulator performs one
check per host every ``suspend_check_period_s``.  This module derives
the same verdicts for *every* host at once from the columnar state the
fleet binding already maintains:

* runnable mask — a VM's QEMU process is RUNNING iff its activity this
  hour is positive; host daemons always run but are all blacklisted, so
  "some non-blacklisted process runnable" reduces to "not
  :meth:`~repro.cluster.accounting.HostAccounting.all_idle`";
* blocked-I/O mask — the fleet's ``blocked_io`` column (mirrored by the
  ``VM.blocked_io`` property) reduced per host;
* emptiness — the accounting's VM counts.

Grace windows and the final waking-date computation stay scalar: grace
is one float comparison per due host, and waking dates are only needed
for hosts that actually suspend.

Equivalence contract: for a module with the default blacklist and no
heuristic, :func:`classify_hosts`'s code (plus the caller's grace check)
maps to exactly the decision :meth:`SuspendingModule._evaluate` returns
for an ON host, in the same priority order (blocked-I/O before active,
active before grace).  Hosts whose module deviates — custom blacklist,
attached heuristic — are excluded via :func:`module_is_columnar` and
evaluated scalar by the sweep.  The per-host event path remains the
parity oracle (``EventConfig.use_batched_checks=False``).
"""

from __future__ import annotations

import numpy as np

from .module import SuspendDecision, SuspendingModule
from .process import DEFAULT_BLACKLIST

#: Host classification codes of :func:`classify_hosts`.  CANDIDATE means
#: "idle and unblocked: suspend unless within grace" — the only code
#: whose final decision needs per-host, per-sweep state (the grace
#: window against the current clock).
CODE_CANDIDATE = 0
CODE_EMPTY = 1
CODE_BLOCKED_IO = 2
CODE_ACTIVE = 3

#: Decision a non-candidate code maps to (candidates resolve to either
#: IN_GRACE or SUSPEND at sweep time).
DECISION_OF_CODE = {
    CODE_EMPTY: SuspendDecision.EMPTY,
    CODE_BLOCKED_IO: SuspendDecision.BLOCKED_IO,
    CODE_ACTIVE: SuspendDecision.ACTIVE,
}


def module_is_columnar(module: SuspendingModule) -> bool:
    """Can this module's verdicts come from the columnar pass?

    Deviations — a resource heuristic, a non-default blacklist — change
    the decision logic in ways the fleet-wide masks don't model, so such
    hosts fall back to the scalar :meth:`SuspendingModule.evaluate`.
    """
    if module.heuristic is not None:
        return False
    bl = module.blacklist
    return bl is DEFAULT_BLACKLIST or bl == DEFAULT_BLACKLIST


def classify_hosts(accounting, hour_index: int) -> np.ndarray:
    """(n_hosts,) classification codes for one simulated hour.

    One vectorized pass over the accounting's cached per-hour columns;
    priority mirrors the scalar walk: emptiness, then blocked I/O, then
    runnable processes, leaving CANDIDATE for hosts that may suspend
    (subject to the caller's grace check).
    """
    counts = accounting.vm_counts()
    blocked = accounting.any_blocked_io()
    idle = accounting.all_idle(hour_index)
    return np.where(
        counts == 0, CODE_EMPTY,
        np.where(blocked, CODE_BLOCKED_IO,
                 np.where(~idle, CODE_ACTIVE, CODE_CANDIDATE)))
