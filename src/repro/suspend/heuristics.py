"""Hypervisor-side idleness heuristics (paper §IV).

"It is also possible to use a heuristic based on the fraction of
currently used resources. One example of a metric is VM page dirtying
rate, that can be monitored from the hypervisor [20]."

These heuristics complement the process-table check: a VM whose qemu
process naps between requests still dirties pages while it holds active
sessions, so a dirty-rate gate catches some of the open-session false
positives the process view misses — without guest introspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..cluster.host import Host


class IdlenessHeuristic(Protocol):
    """Extra veto on top of the process-table idleness check."""

    def host_seems_idle(self, host: Host) -> bool: ...


@dataclass(frozen=True)
class DirtyRateHeuristic:
    """Host idle iff every VM's page-dirtying rate is below a floor.

    ``threshold`` is on the normalized dirty-rate scale of
    :attr:`repro.cluster.vm.VM.dirty_page_rate` (0 = no writes,
    1 = dirtying at full speed).
    """

    threshold: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    def host_seems_idle(self, host: Host) -> bool:
        return all(vm.dirty_page_rate <= self.threshold for vm in host.vms)


@dataclass(frozen=True)
class ResourceFractionHeuristic:
    """Host idle iff CPU utilization is below a floor (the generic
    "fraction of currently used resources" variant)."""

    cpu_threshold: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_threshold <= 1.0:
            raise ValueError("cpu_threshold must be in [0, 1]")

    def host_seems_idle(self, host: Host) -> bool:
        return host.cpu_utilization <= self.cpu_threshold


@dataclass(frozen=True)
class CombinedHeuristic:
    """All component heuristics must agree the host is idle."""

    heuristics: tuple[IdlenessHeuristic, ...]

    def host_seems_idle(self, host: Host) -> bool:
        return all(h.host_seems_idle(host) for h in self.heuristics)
