"""Host suspension subsystem: idleness detection, grace, timers."""

from .columnar import classify_hosts, module_is_columnar
from .grace import grace_from_raw_ip, grace_time_s
from .heuristics import (
    CombinedHeuristic,
    DirtyRateHeuristic,
    IdlenessHeuristic,
    ResourceFractionHeuristic,
)
from .module import SuspendDecision, SuspendingModule, SuspendVerdict
from .process import (
    DEFAULT_BLACKLIST,
    Process,
    ProcState,
    host_process_table,
    is_host_idle,
    vm_process_name,
)
from .rbtree import RedBlackTree
from .timers import TimerEntry, TimerRegistry, build_host_registry, compute_waking_date

__all__ = [
    "CombinedHeuristic",
    "DEFAULT_BLACKLIST",
    "DirtyRateHeuristic",
    "IdlenessHeuristic",
    "ProcState",
    "ResourceFractionHeuristic",
    "Process",
    "RedBlackTree",
    "SuspendDecision",
    "SuspendVerdict",
    "SuspendingModule",
    "TimerEntry",
    "TimerRegistry",
    "build_host_registry",
    "classify_hosts",
    "compute_waking_date",
    "grace_from_raw_ip",
    "grace_time_s",
    "host_process_table",
    "is_host_idle",
    "module_is_columnar",
    "vm_process_name",
]
