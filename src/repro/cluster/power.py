"""Host power states and energy accounting (paper sections IV, VI-A.2).

The power model is the standard linear-in-utilization server model with
the paper's measured constants: a suspended (ACPI S3) host draws about
5 W, roughly 10 % of its S0-idle draw.  State transitions (suspending /
resuming) are modelled with the S0 power draw for their (short)
duration, which is conservative for the energy results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.params import DEFAULT_PARAMS, DrowsyParams


class PowerState(enum.Enum):
    """ACPI-flavoured host power states."""

    ON = "S0"              # running (idle or busy)
    SUSPENDING = "S0->S3"  # transition into suspend-to-RAM
    SUSPENDED = "S3"       # suspend-to-RAM ("drowsy")
    RESUMING = "S3->S0"    # waking up
    OFF = "S5"             # powered off (empty host, classic consolidation)
    CRASHED = "fault"      # abruptly down (fault injection); draws off_w


@dataclass(frozen=True)
class PowerModel:
    """Linear utilization power model with S3/off floors."""

    idle_w: float = DEFAULT_PARAMS.idle_power_w
    max_w: float = DEFAULT_PARAMS.max_power_w
    suspend_w: float = DEFAULT_PARAMS.suspend_power_w
    off_w: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.suspend_w <= self.idle_w <= self.max_w:
            raise ValueError("power model must satisfy 0 <= S3 <= idle <= max")

    def power(self, state: PowerState, utilization: float) -> float:
        """Instantaneous draw (W) for a state and CPU utilization in [0,1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        if state is PowerState.SUSPENDED:
            return self.suspend_w
        if state is PowerState.OFF or state is PowerState.CRASHED:
            return self.off_w
        # ON and both transitions draw S0 power.
        return self.idle_w + (self.max_w - self.idle_w) * utilization

    @classmethod
    def from_params(cls, params: DrowsyParams) -> "PowerModel":
        return cls(idle_w=params.idle_power_w, max_w=params.max_power_w,
                   suspend_w=params.suspend_power_w)


@dataclass
class EnergyMeter:
    """Piecewise-constant energy integrator for one host.

    Callers must invoke :meth:`advance` *before* changing the host's
    state or utilization so the elapsed interval is charged at the old
    operating point.  Also tracks wall time per power state, which is
    what Table I reports.
    """

    model: PowerModel
    last_time: float = 0.0
    energy_j: float = 0.0
    state_seconds: dict[PowerState, float] = field(
        default_factory=lambda: {s: 0.0 for s in PowerState})

    def advance(self, now: float, state: PowerState, utilization: float) -> None:
        """Charge the interval [last_time, now] at (state, utilization)."""
        dt = now - self.last_time
        if dt < -1e-9:
            raise ValueError(f"time went backwards: {self.last_time} -> {now}")
        if dt > 0:
            self.energy_j += self.model.power(state, utilization) * dt
            self.state_seconds[state] += dt
            self.last_time = now

    @property
    def energy_kwh(self) -> float:
        return self.energy_j / 3.6e6

    @property
    def total_seconds(self) -> float:
        return sum(self.state_seconds.values())

    def fraction_in(self, *states: PowerState) -> float:
        """Fraction of metered time spent in the given states."""
        total = self.total_seconds
        if total == 0.0:
            return 0.0
        return sum(self.state_seconds[s] for s in states) / total

    @property
    def suspended_fraction(self) -> float:
        """Fraction of time in S3 — the Table I metric."""
        return self.fraction_in(PowerState.SUSPENDED)
