"""Data-center substrate: hosts, VMs, power, events, migrations."""

from .accounting import HostAccounting, columnar_host_view
from .datacenter import DataCenter, PlacementError
from .events import Event, EventSimulator
from .host import Host, HostStateError, Transition
from .migration import MigrationModel, MigrationRecord
from .power import EnergyMeter, PowerModel, PowerState
from .resources import TESTBED_HOST, TESTBED_VM, HostCapacity, ResourceSpec
from .vm import VM, ServiceTimer

__all__ = [
    "DataCenter",
    "EnergyMeter",
    "HostAccounting",
    "columnar_host_view",
    "Event",
    "EventSimulator",
    "Host",
    "HostCapacity",
    "HostStateError",
    "MigrationModel",
    "MigrationRecord",
    "PlacementError",
    "PowerModel",
    "PowerState",
    "ResourceSpec",
    "ServiceTimer",
    "TESTBED_HOST",
    "TESTBED_VM",
    "Transition",
    "VM",
]
