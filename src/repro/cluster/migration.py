"""Live-migration cost model.

Pre-copy live migration: total duration dominated by transferring the
VM's memory over the management network, plus a short stop-and-copy
downtime.  Dirty-page re-transmission is modelled with a geometric
series in the dirtying-to-bandwidth ratio, the standard first-order
model (Clark et al.); the paper's consolidators only need duration and
a migration count, but the cost model also feeds the "migration speed"
classic selection criterion of section III-D.
"""

from __future__ import annotations

from dataclasses import dataclass

from .vm import VM


@dataclass(frozen=True)
class MigrationModel:
    """Cost model for live migrations on a given network fabric."""

    #: Management-network bandwidth in MB/s (10 Gb/s testbed ~ 1.1 GB/s).
    bandwidth_mb_s: float = 1100.0
    #: Stop-and-copy downtime floor in seconds.
    downtime_s: float = 0.1
    #: Memory dirtying rate at full activity, MB/s.
    max_dirty_mb_s: float = 200.0

    def duration_s(self, vm: VM) -> float:
        """Expected migration duration for ``vm`` at its current activity."""
        ratio = (vm.dirty_page_rate * self.max_dirty_mb_s) / self.bandwidth_mb_s
        base = vm.resources.memory_mb / self.bandwidth_mb_s
        # Geometric re-copy factor, capped for pathological dirty rates.
        factor = 1.0 / (1.0 - min(ratio, 0.9))
        return base * factor + self.downtime_s


@dataclass(frozen=True)
class MigrationRecord:
    """One completed migration (for Fig. 2's #mig column)."""

    time: float
    vm_name: str
    source: str
    destination: str
    duration_s: float
