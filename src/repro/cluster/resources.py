"""Resource accounting for hosts and VMs.

The consolidation problem is bin packing over multiple resource
dimensions; memory is space-shared (the usual limiting resource, paper
section I) while CPU is time-shared and may be overcommitted by a
configurable factor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceSpec:
    """A bundle of resources: virtual/physical CPUs and memory (MB)."""

    cpus: int
    memory_mb: int

    def __post_init__(self) -> None:
        if self.cpus < 0 or self.memory_mb < 0:
            raise ValueError(f"resources must be non-negative, got {self}")

    def __add__(self, other: "ResourceSpec") -> "ResourceSpec":
        return ResourceSpec(self.cpus + other.cpus,
                            self.memory_mb + other.memory_mb)

    def __sub__(self, other: "ResourceSpec") -> "ResourceSpec":
        return ResourceSpec(self.cpus - other.cpus,
                            self.memory_mb - other.memory_mb)


@dataclass(frozen=True)
class HostCapacity:
    """Host capacity with a CPU overcommit factor (memory never overcommits;
    the paper explicitly avoids ballooning/page-sharing, section I)."""

    cpus: int
    memory_mb: int
    cpu_overcommit: float = 2.0

    def __post_init__(self) -> None:
        if self.cpus <= 0 or self.memory_mb <= 0:
            raise ValueError(f"capacity must be positive, got {self}")
        if self.cpu_overcommit < 1.0:
            raise ValueError("cpu_overcommit must be >= 1")

    @property
    def schedulable_cpus(self) -> float:
        return self.cpus * self.cpu_overcommit

    def fits(self, used: ResourceSpec, extra: ResourceSpec) -> bool:
        """Would ``extra`` fit on top of ``used``?"""
        return (used.cpus + extra.cpus <= self.schedulable_cpus
                and used.memory_mb + extra.memory_mb <= self.memory_mb)


#: The testbed host of section VI-A.2: i7-3770 (4 cores / 8 threads),
#: 16 GB RAM, hosting at most two 6 GB / 2-vCPU VMs.
TESTBED_HOST = HostCapacity(cpus=8, memory_mb=16 * 1024, cpu_overcommit=1.0)

#: The testbed VM flavor (6 GB memory, 2 vCPUs).
TESTBED_VM = ResourceSpec(cpus=2, memory_mb=6 * 1024)
