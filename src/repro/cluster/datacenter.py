"""Data-center registry: hosts, VMs, placement and migrations.

The :class:`DataCenter` is the single source of truth for "which VM runs
where".  Consolidation controllers express decisions as migration lists;
the data center validates and applies them, keeping the records Fig. 2
is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .host import Host
from .migration import MigrationModel, MigrationRecord
from .vm import VM


class PlacementError(RuntimeError):
    """Raised when a placement/migration violates capacity or identity."""


@dataclass
class DataCenter:
    """Hosts, VMs and their current placement."""

    hosts: list[Host]
    params: DrowsyParams = DEFAULT_PARAMS
    migration_model: MigrationModel = field(default_factory=MigrationModel)
    migrations: list[MigrationRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise PlacementError("duplicate host names")
        self._host_by_name = {h.name: h for h in self.hosts}
        for host in self.hosts:
            host._dc = self
        #: Placement index (vm name -> host), maintained by every
        #: placement-changing operation so :meth:`host_of` is O(1) on the
        #: migration and request paths instead of an O(hosts x vms) scan.
        self._placement: dict[str, Host] = {
            vm.name: host for host in self.hosts for vm in host.vms}
        #: VM registry (vm name -> VM), the other half of the O(1)
        #: request path (:meth:`find_vm`); kept in lockstep with the
        #: placement index.
        self._vm_by_name: dict[str, VM] = {
            vm.name: vm for host in self.hosts for vm in host.vms}
        #: Wake-path index (MAC -> host): WoL delivery is per-packet, so
        #: a linear scan over hosts would be O(hosts) per wake
        #: (DESIGN.md §10).  Host MACs are construction-time constants.
        self.host_by_mac: dict[str, Host] = {
            h.mac_address: h for h in self.hosts}
        #: Columnar host accounting (attached by the fleet binding, see
        #: :mod:`repro.cluster.accounting`).  Placement-changing
        #: operations notify it incrementally so its incidence rows
        #: track host membership without rescans.
        self._accounting = None

    # ------------------------------------------------------------------
    def _note_attach(self, vm: VM, host: Host) -> None:
        if self._accounting is not None:
            self._accounting.on_place(vm.name, host)

    def _note_detach(self, vm: VM, host: Host) -> None:
        if self._accounting is not None:
            self._accounting.on_remove(vm.name, host)

    # ------------------------------------------------------------------
    @property
    def vms(self) -> list[VM]:
        """All placed VMs (stable order: host order, then host-local)."""
        return [vm for host in self.hosts for vm in host.vms]

    def host_of(self, vm: VM) -> Host:
        host = self._placement.get(vm.name)
        if host is not None and vm in host.vms:
            return host
        # Index miss or staleness (e.g. tests wiring host.vms directly):
        # fall back to the scan once and repair the index.
        for host in self.hosts:
            if vm in host.vms:
                self._placement[vm.name] = host
                return host
        self._placement.pop(vm.name, None)
        raise PlacementError(f"{vm.name} is not placed")

    def host(self, name: str) -> Host:
        try:
            return self._host_by_name[name]
        except KeyError:
            raise PlacementError(f"unknown host {name}") from None

    def find_vm(self, vm_name: str) -> tuple[VM, Host]:
        """O(1) ``(vm, host)`` lookup by VM name (the per-packet path).

        Raises ``KeyError`` for unknown VMs (the request path's
        contract).  Index misses — a VM wired onto ``host.vms`` directly
        by tests — fall back to one scan that repairs the registry, like
        :meth:`host_of` does for the placement index.
        """
        vm = self._vm_by_name.get(vm_name)
        if vm is not None:
            host = self._placement.get(vm_name)
            if host is not None and vm in host.vms:
                return vm, host
        for host in self.hosts:
            for vm in host.vms:
                if vm.name == vm_name:
                    self._vm_by_name[vm_name] = vm
                    self._placement[vm_name] = host
                    return vm, host
        self._vm_by_name.pop(vm_name, None)
        raise KeyError(f"unknown VM {vm_name}")

    # ------------------------------------------------------------------
    def place(self, vm: VM, host: Host) -> None:
        """Initial placement of an unplaced VM."""
        current = self._placement.get(vm.name)
        if current is not None and vm in current.vms:
            raise PlacementError(f"{vm.name} already placed on {current.name}")
        # Index miss/stale: scan, so VMs wired onto a host directly (the
        # pattern host_of's repair fallback supports) are still rejected
        # instead of double-placed.  Placement is a cold path; O(1)
        # lookups matter on the migration/request paths (host_of).
        for h in self.hosts:
            if vm in h.vms:
                self._placement[vm.name] = h
                raise PlacementError(f"{vm.name} already placed on {h.name}")
        host.add_vm(vm)
        self._placement[vm.name] = host
        self._vm_by_name[vm.name] = vm
        self._note_attach(vm, host)

    def migrate(self, vm: VM, destination: Host, now: float) -> MigrationRecord:
        """Move ``vm`` to ``destination``, recording the migration.

        A migration to the current host is rejected — controllers must
        filter no-ops so Fig. 2's migration counts stay meaningful.
        """
        source = self.host_of(vm)
        if source is destination:
            raise PlacementError(f"{vm.name} already on {destination.name}")
        if not destination.can_host(vm):
            raise PlacementError(f"{vm.name} does not fit on {destination.name}")
        duration = self.migration_model.duration_s(vm)
        source.sync_meter(now)
        destination.sync_meter(now)
        source.remove_vm(vm)
        destination.add_vm(vm)
        self._placement[vm.name] = destination
        self._note_detach(vm, source)
        self._note_attach(vm, destination)
        vm.migrations += 1
        record = MigrationRecord(time=now, vm_name=vm.name,
                                 source=source.name,
                                 destination=destination.name,
                                 duration_s=duration)
        self.migrations.append(record)
        return record

    def apply_assignment(self, assignment: dict[str, Host], now: float) -> list[MigrationRecord]:
        """Bulk relocation: move every named VM to its assigned host.

        Used by the periodic-relocation evaluation mode (section VI-A.1),
        where whole groups of VMs swap hosts at once: per-move capacity
        checking would deadlock on swaps, so VMs are detached first and
        the *final* state is validated instead.  Only VMs that actually
        change host are recorded as migrations.
        """
        vm_by_name = {vm.name: vm for vm in self.vms}
        moves: list[tuple[VM, Host, Host]] = []
        for name, dest in assignment.items():
            vm = vm_by_name.get(name)
            if vm is None:
                raise PlacementError(f"unknown VM {name}")
            src = self.host_of(vm)
            if src is not dest:
                moves.append((vm, src, dest))
        self.sync_meters(now)
        for vm, src, _ in moves:
            src.remove_vm(vm)
            self._placement.pop(vm.name, None)
            self._note_detach(vm, src)
        records = []
        for vm, src, dest in moves:
            if not dest.can_host(vm):
                # Roll forward is impossible; surface the planning bug.
                raise PlacementError(
                    f"assignment overfills {dest.name} with {vm.name}")
            dest.add_vm(vm)
            self._placement[vm.name] = dest
            self._note_attach(vm, dest)
            vm.migrations += 1
            record = MigrationRecord(
                time=now, vm_name=vm.name, source=src.name,
                destination=dest.name,
                duration_s=self.migration_model.duration_s(vm))
            self.migrations.append(record)
            records.append(record)
        self.check_invariants()
        return records

    def evacuate(self, host: Host, now: float,
                 targets: list[Host] | None = None) -> tuple[list[VM], list[VM]]:
        """Drain ``host``: migrate every hosted VM to the first target
        with room (first-fit in the given order; default: every other
        host).  Returns ``(migrated, stranded)`` — stranded VMs stay put
        when nothing fits, and the caller (e.g. a scenario maintenance
        window, DESIGN.md §12) decides whether the drain still counts.
        """
        if targets is None:
            targets = [h for h in self.hosts if h is not host]
        migrated: list[VM] = []
        stranded: list[VM] = []
        for vm in list(host.vms):
            dest = next((t for t in targets
                         if t is not host and t.can_host(vm)), None)
            if dest is None:
                stranded.append(vm)
            else:
                self.migrate(vm, dest, now)
                migrated.append(vm)
        return migrated, stranded

    def remove(self, vm: VM, now: float) -> None:
        """Terminate a VM (e.g. an SLMU task completing): meters are
        charged up to ``now`` and the VM leaves its host.

        The hourly simulator may have pre-charged a transition a few
        seconds past the hour boundary; removal never rewinds the meter.
        """
        host = self.host_of(vm)
        host.sync_meter(max(now, host.meter.last_time))
        host.remove_vm(vm)
        self._placement.pop(vm.name, None)
        self._vm_by_name.pop(vm.name, None)
        self._note_detach(vm, host)

    # ------------------------------------------------------------------
    def available_hosts(self) -> list[Host]:
        """Hosts currently able to run VM work (S0)."""
        return [h for h in self.hosts if h.is_available]

    def sync_meters(self, now: float, utilizations=None) -> None:
        """Advance every host's energy meter to ``now``.

        ``utilizations`` (optional, ``(n_hosts,)`` in host order) lets
        the columnar hot path hand each host its precomputed CPU
        utilization instead of the per-VM ``Host.cpu_utilization`` sum;
        values must equal the scalar property bit-for-bit (they do when
        taken from :class:`~repro.cluster.accounting.HostAccounting`).
        """
        if utilizations is None:
            for host in self.hosts:
                host.sync_meter(now)
        else:
            for host, util in zip(self.hosts, utilizations):
                host.sync_meter(now, float(util))

    def total_energy_kwh(self) -> float:
        return sum(h.meter.energy_kwh for h in self.hosts)

    def set_hour_activities(self, hour_index: int, now: float) -> None:
        """Load each VM's trace activity for the given hour.

        Meters are advanced first so the previous hour is charged at the
        old utilization.
        """
        self.sync_meters(now)
        for host in self.hosts:
            for vm in host.vms:
                vm.current_activity = vm.activity_at(hour_index)

    def check_invariants(self) -> None:
        """Structural sanity: each VM on exactly one host, capacity held.

        The walk also reconciles the O(1) placement index with the real
        host membership, so code that wires ``host.vms`` directly (tests,
        failure injection) converges back to a consistent index.
        """
        seen: dict[str, Host] = {}
        for host in self.hosts:
            cpus = 0
            memory_mb = 0
            for vm in host.vms:
                cpus += vm.resources.cpus
                memory_mb += vm.resources.memory_mb
            if memory_mb > host.capacity.memory_mb:
                raise PlacementError(f"{host.name} over memory capacity")
            if cpus > host.capacity.schedulable_cpus:
                raise PlacementError(f"{host.name} over CPU capacity")
            for vm in host.vms:
                if vm.name in seen:
                    raise PlacementError(
                        f"{vm.name} on both {seen[vm.name].name} and {host.name}")
                seen[vm.name] = host
        self._placement = seen
        self._vm_by_name = {vm.name: vm for host in self.hosts
                            for vm in host.vms}
        self.host_by_mac = {h.mac_address: h for h in self.hosts}
        if self._accounting is not None:
            self._accounting.resync()
