"""Virtual machine model.

A VM couples an identity (name, IP address), a resource flavor, a
workload trace and the runtime annotations the Drowsy-DC modules need:
its idleness model, service timers (for timer-driven workloads like the
backup service of section VI-A.3) and interactive-service flags used by
the false-positive analysis of section IV.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.calendar import slot_of_hour
from ..core.model import IdlenessModel
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..traces.base import ActivityTrace, VMKind
from .resources import ResourceSpec, TESTBED_VM


def _default_ip(name: str) -> str:
    digest = int.from_bytes(hashlib.blake2b(name.encode(), digest_size=4).digest(),
                            "big")
    return f"10.0.0.{digest % 250 + 1}"


@dataclass(frozen=True)
class ServiceTimer:
    """A periodic in-guest timer (e.g. the 2 am backup cron job).

    The suspending module reads these out of the (simulated) kernel
    hrtimer tree to compute the waking date (section V-B).
    """

    name: str
    period_s: float
    first_fire_s: float = 0.0
    #: Timers of blacklisted processes are filtered out when computing
    #: the waking date (watchdogs, monitoring agents).
    process_name: str = "service"

    def next_fire(self, now: float) -> float:
        """Earliest fire time strictly after ``now``."""
        if now < self.first_fire_s:
            return self.first_fire_s
        k = int((now - self.first_fire_s) // self.period_s) + 1
        return self.first_fire_s + k * self.period_s


class VM:
    """One virtual machine and its Drowsy-DC-relevant state."""

    def __init__(
        self,
        name: str,
        trace: ActivityTrace,
        resources: ResourceSpec = TESTBED_VM,
        ip_address: str | None = None,
        params: DrowsyParams = DEFAULT_PARAMS,
        timers: tuple[ServiceTimer, ...] = (),
        interactive: bool = True,
    ) -> None:
        self.name = name
        self.trace = trace
        self.resources = resources
        # Stable digest, not the per-process-salted builtin hash():
        # sweep workers must derive identical addresses for the same VM.
        self.ip_address = ip_address or _default_ip(name)
        self.params = params
        self.timers = timers
        #: Interactive services receive network requests; their activity
        #: is externally triggered so a suspended host adds wake latency.
        self.interactive = interactive
        self.model = IdlenessModel(params)
        #: Activity level of the current hour (set by the simulator).
        self.current_activity = 0.0
        self.migrations = 0
        self._blocked_io = False

    @property
    def blocked_io(self) -> bool:
        """Simulated uninterruptible I/O wait (``D`` state) for this VM's
        QEMU process — pending work that must veto suspension (§IV)."""
        return self._blocked_io

    @blocked_io.setter
    def blocked_io(self, value: bool) -> None:
        self._blocked_io = bool(value)
        # Mirror into the fleet's columnar blocked-I/O flags when bound,
        # so the batched suspend sweep sees the change without a rescan.
        model = self.model
        fleet = getattr(model, "fleet", None)
        if fleet is not None and hasattr(fleet, "set_blocked_io"):
            fleet.set_blocked_io(model.fleet_index, self._blocked_io)

    # ------------------------------------------------------------------
    @property
    def kind(self) -> VMKind:
        return self.trace.kind

    def activity_at(self, hour_index: int) -> float:
        """Trace activity for an absolute hour (periodic extension)."""
        return self.trace.activity(hour_index)

    @property
    def is_idle_now(self) -> bool:
        """Idle in the current hour (activity exactly zero)."""
        return self.current_activity == 0.0

    @property
    def dirty_page_rate(self) -> float:
        """Hypervisor-visible page-dirtying heuristic (section IV, [20]).

        Modelled as proportional to activity: pages/s normalized to
        [0, 1].  Zero when idle — the signal Oasis-style systems use.
        """
        return self.current_activity

    def raw_ip(self, hour_index: int) -> float:
        """Raw idleness probability for the given absolute hour."""
        return self.model.raw_ip(slot_of_hour(hour_index))

    def idleness_probability(self, hour_index: int) -> float:
        """Normalized idleness probability in [0, 1] for the given hour."""
        return self.model.idleness_probability(slot_of_hour(hour_index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VM({self.name}, {self.kind.name}, {self.resources})"
