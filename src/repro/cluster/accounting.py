"""Columnar host accounting: per-hour host views in one pass (DESIGN.md §8).

PR 1 made the per-VM idleness updates columnar, but every simulated hour
still walked ``hosts × vms`` in Python for the host-level quantities:
``Host.cpu_utilization`` / ``used_resources`` (controller queries and
SLATAH), ``all_vms_idle`` (suspend checks) and ``mean_raw_ip`` (grace
windows, IP-aware placement).  :class:`HostAccounting` derives all of
them for every host at once from the fleet binding's columnar state plus
a placement incidence structure kept in sync by the
:class:`~repro.cluster.datacenter.DataCenter` placement index —
migrations, placements and removals update it incrementally through the
data center's notification hooks.

Bit-for-bit equivalence with the scalar :class:`~repro.cluster.host.Host`
properties is a hard requirement (the scalar per-host property loop is
kept as the parity oracle; see ``tests/test_host_accounting.py``).  Two
details make the columnar numbers *identical* rather than merely close:

* per-host float sums are accumulated **in host-local VM order** with a
  strictly sequential reduction (a rank-major scatter matrix summed row
  by row), reproducing Python's left-to-right ``sum`` exactly — a BLAS
  matrix product against the incidence matrix would reassociate the
  additions and drift in the last ulp;
* per-VM inputs are the very arrays the scalar path reads: the trace
  activity column of :class:`~repro.core.binding.FleetBinding` and the
  version-cached ``raw_ip_column`` of
  :class:`~repro.core.fleet.FleetIdlenessModel`.
"""

from __future__ import annotations

import numpy as np

from ..core.calendar import slot_of_hour


class HostAccounting:
    """Columnar per-host accounting over a bound fleet.

    One instance is attached per (binding, data center) pair by
    :meth:`repro.core.binding.FleetBinding.try_bind`.  All public array
    accessors return ``(n_hosts,)`` vectors ordered like ``dc.hosts``.
    """

    def __init__(self, binding, dc) -> None:
        self.binding = binding
        self.dc = dc
        self._host_list = dc.hosts
        self.hosts = list(dc.hosts)
        self.n_hosts = len(self.hosts)
        self._pos = {h.name: k for k, h in enumerate(self.hosts)}
        vms = binding.vms
        self._vm_cpus = np.array([vm.resources.cpus for vm in vms],
                                 dtype=np.float64)
        self._vm_cpus_i = np.array([vm.resources.cpus for vm in vms],
                                   dtype=np.int64)
        self._vm_mem_i = np.array([vm.resources.memory_mb for vm in vms],
                                  dtype=np.int64)
        self._cap_cpus = np.array([h.capacity.cpus for h in self.hosts],
                                  dtype=np.float64)
        # Same float expression as the scalar SLATAH check's
        # ``host.capacity.cpus * 0.999`` per host.
        self._overload_cpus = self._cap_cpus * 0.999
        #: Host-local fleet-index rows, mirroring each ``host.vms`` list
        #: (same VMs, same order).  This is the placement incidence
        #: structure; :meth:`incidence_matrix` materializes it as the
        #: classic 0/1 ``(n_hosts, n_vms)`` matrix.
        self._rows: list[list[int]] = [[] for _ in self.hosts]
        self._stale = False
        #: Monotonic placement epoch; every placement change bumps it
        #: and invalidates the derived caches.
        self.epoch = 0
        self._geometry: tuple | None = None  # (epoch, placed, rank, hpos, counts, kmax)
        self._static_cache: tuple | None = None  # (epoch, used_cpus, used_mem)
        self._hour_cache: dict = {}
        self._ip_cache: dict = {}
        self._blocked_cache: tuple | None = None
        self.resync()

    # ------------------------------------------------------------------
    # synchronization with the DataCenter placement index
    # ------------------------------------------------------------------
    @property
    def valid(self) -> bool:
        """Usable for columnar queries?  False after an unknown VM or a
        host-set change appeared — consumers then fall back to the
        scalar per-host path until the simulators rebind."""
        return (not self._stale and self.dc.hosts is self._host_list
                and len(self.dc.hosts) == self.n_hosts)

    def pos(self, host) -> int:
        """Index of ``host`` in the accounting vectors (dc.hosts order)."""
        return self._pos[host.name]

    @property
    def positions(self) -> dict[str, int]:
        """Host name -> vector index (read-only use; hot-loop access)."""
        return self._pos

    def position(self, host_name: str) -> int | None:
        """Like :meth:`pos` by name; ``None`` for unknown hosts."""
        return self._pos.get(host_name)

    def _index_of(self, vm_name: str) -> int | None:
        idx = self.binding.index.get(vm_name)
        if idx is None:
            self._stale = True
        return idx

    def on_place(self, vm_name: str, host) -> None:
        """Incremental hook: ``vm_name`` was attached to ``host``."""
        idx = self._index_of(vm_name)
        pos = self._pos.get(host.name)
        if idx is None or pos is None:
            self._stale = True
            return
        self._rows[pos].append(idx)
        self._bump()

    def on_remove(self, vm_name: str, host) -> None:
        """Incremental hook: ``vm_name`` was detached from ``host``."""
        idx = self._index_of(vm_name)
        pos = self._pos.get(host.name)
        if idx is None or pos is None:
            self._stale = True
            return
        try:
            self._rows[pos].remove(idx)
        except ValueError:
            self._stale = True
            return
        self._bump()

    def resync(self) -> None:
        """Rebuild the incidence rows from actual host membership.

        Called by :meth:`DataCenter.check_invariants` so code that wires
        ``host.vms`` directly converges back to a consistent view, like
        the O(1) placement index does.  A successful rebuild also clears
        staleness: once every placed VM resolves in the binding again
        (e.g. an out-of-binding VM arrived and has since departed), the
        columnar view recovers instead of staying disabled forever."""
        index = self.binding.index
        rows: list[list[int]] = []
        for host in self.hosts:
            row = []
            for vm in host.vms:
                idx = index.get(vm.name)
                if idx is None:
                    self._stale = True
                    return
                row.append(idx)
            rows.append(row)
        self._stale = False
        if rows != self._rows:
            self._rows = rows
            self._bump()

    def _bump(self) -> None:
        self.epoch += 1
        self._hour_cache.clear()
        self._ip_cache.clear()

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    def _geom(self):
        """(placed, rank, hpos, counts, kmax) for the current epoch.

        ``placed[j]`` is the fleet index of the j-th placed VM walking
        hosts in order; ``rank[j]`` its position within its host's VM
        list; ``hpos[j]`` its host's position.  These drive the
        order-preserving segment reductions below.
        """
        g = self._geometry
        if g is not None and g[0] == self.epoch:
            return g[1:]
        placed, rank, hpos = [], [], []
        counts = np.zeros(self.n_hosts, dtype=np.int64)
        for k, row in enumerate(self._rows):
            counts[k] = len(row)
            for r, idx in enumerate(row):
                placed.append(idx)
                rank.append(r)
                hpos.append(k)
        geom = (np.array(placed, dtype=np.intp),
                np.array(rank, dtype=np.intp),
                np.array(hpos, dtype=np.intp),
                counts,
                int(counts.max()) if self.n_hosts else 0)
        self._geometry = (self.epoch, *geom)
        return geom

    def incidence_matrix(self) -> np.ndarray:
        """The 0/1 ``(n_hosts, n_vms)`` placement incidence matrix."""
        placed, _, hpos, _, _ = self._geom()
        P = np.zeros((self.n_hosts, self.binding.fleet.n))
        P[hpos, placed] = 1.0
        return P

    def _seg_sum(self, values: np.ndarray, dtype=np.float64) -> np.ndarray:
        """Per-host sums of per-VM ``values`` in host-local VM order.

        Scatter into a (kmax, n_hosts) rank matrix, then accumulate the
        ranks sequentially: host ``h`` gets ``((0 + x0) + x1) + ...`` in
        exactly ``host.vms`` order — bit-identical to the scalar
        ``sum(... for vm in host.vms)`` loops (absent entries add +0.0,
        which never perturbs an IEEE sum of finite values).
        """
        placed, rank, hpos, _, kmax = self._geom()
        out = np.zeros(self.n_hosts, dtype=dtype)
        if kmax == 0:
            return out
        m = np.zeros((kmax, self.n_hosts), dtype=dtype)
        m[rank, hpos] = values[placed]
        for k in range(kmax):
            out += m[k]
        return out

    def _seg_minmax(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-host (min, max) of per-VM ``values`` (order-free exact)."""
        placed, rank, hpos, _, kmax = self._geom()
        lo = np.full(self.n_hosts, np.inf)
        hi = np.full(self.n_hosts, -np.inf)
        if kmax == 0:
            return lo, hi
        m_lo = np.full((kmax, self.n_hosts), np.inf)
        m_lo[rank, hpos] = values[placed]
        m_hi = np.full((kmax, self.n_hosts), -np.inf)
        m_hi[rank, hpos] = values[placed]
        for k in range(kmax):
            np.minimum(lo, m_lo[k], out=lo)
            np.maximum(hi, m_hi[k], out=hi)
        return lo, hi

    # ------------------------------------------------------------------
    # placement-static columns (change only with placement)
    # ------------------------------------------------------------------
    def vm_counts(self) -> np.ndarray:
        """(n_hosts,) number of VMs placed on each host."""
        return self._geom()[3]

    def used_cpus(self) -> np.ndarray:
        """(n_hosts,) vCPUs attached to each host (``used_resources.cpus``)."""
        return self._static()[0]

    def used_memory_mb(self) -> np.ndarray:
        """(n_hosts,) memory attached to each host (``used_resources.memory_mb``)."""
        return self._static()[1]

    def _static(self):
        c = self._static_cache
        if c is not None and c[0] == self.epoch:
            return c[1:]
        used_cpus = self._seg_sum(self._vm_cpus_i, dtype=np.int64)
        used_mem = self._seg_sum(self._vm_mem_i, dtype=np.int64)
        self._static_cache = (self.epoch, used_cpus, used_mem)
        return used_cpus, used_mem

    # ------------------------------------------------------------------
    # per-hour columns
    # ------------------------------------------------------------------
    def _hour(self, hour_index: int):
        key = (hour_index, self.epoch)
        cached = self._hour_cache.get(key)
        if cached is not None:
            return cached
        if len(self._hour_cache) >= 8:
            # Only the current hour (and t-1 for the meter charge) is
            # ever re-read; cap the cache so year-long static-placement
            # runs don't accumulate one entry per simulated hour.
            self._hour_cache.clear()
        activities = self.binding.activities(hour_index)
        demand = self._seg_sum(activities * self._vm_cpus)
        active = self._seg_sum((activities > 0.0).astype(np.int64),
                               dtype=np.int64)
        util = np.minimum(demand / self._cap_cpus, 1.0)
        cached = (demand, util, active == 0)
        self._hour_cache[key] = cached
        return cached

    def cpu_demand(self, hour_index: int) -> np.ndarray:
        """(n_hosts,) CPU demand ``Σ activity·cpus`` (SLATAH numerator)."""
        return self._hour(hour_index)[0]

    def cpu_utilization(self, hour_index: int) -> np.ndarray:
        """(n_hosts,) ``Host.cpu_utilization`` for every host at once."""
        return self._hour(hour_index)[1]

    def all_idle(self, hour_index: int) -> np.ndarray:
        """(n_hosts,) bool ``Host.all_vms_idle`` (True for empty hosts)."""
        return self._hour(hour_index)[2]

    def overload_cpus(self) -> np.ndarray:
        """(n_hosts,) SLATAH saturation thresholds (cpus × 0.999)."""
        return self._overload_cpus

    def sleepable(self, hour_index: int) -> np.ndarray:
        """(n_hosts,) bool: non-empty and every hosted VM idle — the
        hourly simulator's default suspend predicate."""
        return (self.vm_counts() > 0) & self.all_idle(hour_index)

    def any_blocked_io(self) -> np.ndarray:
        """(n_hosts,) bool: some hosted VM is blocked on I/O (``D``
        state) — the suspend sweep's per-host blocked-I/O mask, derived
        from the fleet's columnar flags (cached per placement epoch and
        blocked-column version; the flags are almost always all-False)."""
        fleet = self.binding.fleet
        key = (self.epoch, fleet.blocked_version)
        cached = self._blocked_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        if not fleet.blocked_io.any():
            blocked = np.zeros(self.n_hosts, dtype=bool)
        else:
            blocked = self._seg_sum(fleet.blocked_io.astype(np.int64),
                                    dtype=np.int64) > 0
        self._blocked_cache = (key, blocked)
        return blocked

    # ------------------------------------------------------------------
    # idleness-probability columns (also keyed on model version)
    # ------------------------------------------------------------------
    def _ip(self, hour_index: int):
        fleet = self.binding.fleet
        key = (hour_index, self.epoch, fleet.version)
        cached = self._ip_cache.get(key)
        if cached is not None:
            return cached
        if len(self._ip_cache) >= 8:
            self._ip_cache.clear()
        col = fleet.raw_ip_column(slot_of_hour(hour_index))
        counts = self.vm_counts()
        total = self._seg_sum(col)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = total / counts
        mean = np.where(counts > 0, mean, 0.0)
        lo, hi = self._seg_minmax(col)
        rng = np.where(counts >= 2, hi - lo, 0.0)
        cached = (mean, rng)
        self._ip_cache[key] = cached
        return cached

    def mean_raw_ip(self, hour_index: int) -> np.ndarray:
        """(n_hosts,) ``Host.mean_raw_ip`` (0.0 for empty hosts)."""
        return self._ip(hour_index)[0]

    def ip_range(self, hour_index: int) -> np.ndarray:
        """(n_hosts,) ``Host.ip_range`` (0.0 below two VMs)."""
        return self._ip(hour_index)[1]

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Assert the incidence rows mirror actual host membership
        (property-test helper; O(hosts × vms))."""
        index = self.binding.index
        for host, row in zip(self.hosts, self._rows):
            expected = [index[vm.name] for vm in host.vms]
            if row != expected:
                raise AssertionError(
                    f"accounting rows diverged on {host.name}: "
                    f"{row} != {expected}")


def columnar_host_view(dc) -> HostAccounting | None:
    """The data center's active host accounting, or ``None``.

    Controllers and simulators call this each hour; a ``None`` return
    (no fleet binding, stale accounting, non-standard models) means
    "use the scalar per-host properties".
    """
    acc = getattr(dc, "_accounting", None)
    if acc is None or not acc.valid:
        return None
    return acc
