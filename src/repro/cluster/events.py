"""Deterministic discrete-event simulation kernel.

A minimal, allocation-light event queue: a binary heap of
``(time, sequence, Event)`` entries.  The sequence number makes ordering
total and deterministic for simultaneous events (FIFO within a
timestamp), which the reproduction relies on for exact repeatability.

Cancellation is O(1) by tombstoning: cancelled events stay in the heap
and are skipped on pop (the standard lazy-deletion idiom, cheaper than
re-heapifying).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable


class Event:
    """A scheduled callback.  Use :meth:`cancel` to revoke it.

    ``__slots__`` keeps the event kernel allocation-light: millions of
    events are created per request-level run and a slotted instance is
    both smaller and faster to construct than a dict-backed one.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None] | None, args: tuple = (),
                 owner: "EventSimulator | None" = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self) -> None:
        """Revoke the event; it will be skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._owner is not None:
                self._owner._live -= 1
        self.callback = None  # free references early
        self.args = ()


class EventSimulator:
    """Priority-queue driven simulator with a monotonic clock (seconds)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.events_processed = 0
        #: Live (non-cancelled) events in the heap; kept in lockstep by
        #: schedule/cancel/pop so :attr:`pending` is O(1), not a scan.
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}")
        ev = Event(time=max(time, self._now), seq=next(self._seq),
                   callback=callback, args=args, owner=self)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        self._live += 1
        return ev

    def schedule_in(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_batch(
            self, entries: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> list[Event]:
        """Schedule a block of ``(time, callback, args)`` entries at once.

        Behaviourally identical to calling :meth:`schedule_at` once per
        entry in order — sequence numbers are assigned in entry order, so
        FIFO-within-timestamp ties break exactly the same way — but the
        heap is restored with one O(n + m) ``heapify`` instead of m
        O(log n) sifts, which is what makes bulk request generation
        cheap (DESIGN.md §10).
        """
        events: list[Event] = []
        now = self._now
        # Validate and build first, then commit: a bad entry must not
        # leave the heap half-extended or the live counter skewed.
        for time, callback, args in entries:
            if time < now - 1e-9:
                raise ValueError(
                    f"cannot schedule in the past: {time} < now {now}")
            events.append(Event(time=max(time, now), seq=next(self._seq),
                                callback=callback, args=args, owner=self))
        if events:
            self._heap.extend((ev.time, ev.seq, ev) for ev in events)
            heapq.heapify(self._heap)
            self._live += len(events)
        return events

    def count_coalesced(self, n: int) -> None:
        """Account ``n`` extra *logical* events absorbed by the currently
        executing physical event.

        A batched handler (e.g. the suspend-check sweep) that stands in
        for ``k`` per-entity events calls ``count_coalesced(k - 1)`` so
        :attr:`events_processed` — the throughput metric and a parity
        observable — matches the unbatched event path exactly.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.events_processed += n

    # ------------------------------------------------------------------
    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._heap:
            _, _, ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            return ev.time
        return None

    def step(self) -> bool:
        """Process the next live event.  Returns False when drained."""
        while self._heap:
            _, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            ev._owner = None  # consumed: a late cancel() must not decrement
            self._now = ev.time
            cb, args = ev.callback, ev.args
            self.events_processed += 1
            assert cb is not None
            cb(*args)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``, then advance
        the clock to ``end_time`` even if the queue drained earlier."""
        while True:
            t = self.peek_time()
            if t is None or t > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Process events until the queue is drained."""
        while self.step():
            pass

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        a maintained counter, not a heap scan."""
        return self._live
