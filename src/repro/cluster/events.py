"""Deterministic discrete-event simulation kernel.

A minimal, allocation-light event queue: a binary heap of
``(time, sequence, Event)`` entries.  The sequence number makes ordering
total and deterministic for simultaneous events (FIFO within a
timestamp), which the reproduction relies on for exact repeatability.

Cancellation is O(1) by tombstoning: cancelled events stay in the heap
and are skipped on pop (the standard lazy-deletion idiom, cheaper than
re-heapifying).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=False)
class Event:
    """A scheduled callback.  Use :meth:`cancel` to revoke it."""

    time: float
    seq: int
    callback: Callable[..., None] | None
    args: tuple = ()
    cancelled: bool = False

    def cancel(self) -> None:
        """Revoke the event; it will be skipped when its time comes."""
        self.cancelled = True
        self.callback = None  # free references early
        self.args = ()


class EventSimulator:
    """Priority-queue driven simulator with a monotonic clock (seconds)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}")
        ev = Event(time=max(time, self._now), seq=next(self._seq),
                   callback=callback, args=args)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def schedule_in(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._heap:
            _, _, ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            return ev.time
        return None

    def step(self) -> bool:
        """Process the next live event.  Returns False when drained."""
        while self._heap:
            _, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            cb, args = ev.callback, ev.args
            self.events_processed += 1
            assert cb is not None
            cb(*args)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``, then advance
        the clock to ``end_time`` even if the queue drained earlier."""
        while True:
            t = self.peek_time()
            if t is None or t > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Process events until the queue is drained."""
        while self.step():
            pass

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)
