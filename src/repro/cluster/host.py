"""Physical host model: capacity, hosted VMs, power-state machine.

The host is a passive state machine — simulation drivers call the
transition methods at the right times; every transition first advances
the energy meter so each interval is charged at the operating point that
actually held during it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .power import EnergyMeter, PowerModel, PowerState
from .resources import HostCapacity, ResourceSpec, TESTBED_HOST
from .vm import VM


class HostStateError(RuntimeError):
    """Raised on an illegal power-state transition."""


def _default_mac(name: str) -> str:
    """Deterministic locally-administered MAC derived from the host name.

    Uses a stable digest, not ``hash()``: the builtin is salted per
    process (PYTHONHASHSEED), which would give sweep workers different
    MACs for the same host and break WoL matching / run determinism.
    """
    h = hashlib.blake2b(name.encode(), digest_size=3).hexdigest()
    return f"52:54:00:{h[0:2]}:{h[2:4]}:{h[4:6]}"


@dataclass(frozen=True)
class Transition:
    """One recorded power-state change (for oscillation analysis)."""

    time: float
    from_state: PowerState
    to_state: PowerState


class Host:
    """A server in the data center."""

    def __init__(
        self,
        name: str,
        capacity: HostCapacity = TESTBED_HOST,
        params: DrowsyParams = DEFAULT_PARAMS,
        power_model: PowerModel | None = None,
        mac_address: str | None = None,
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.params = params
        #: Back-reference to the owning DataCenter (set on registration);
        #: lets leaf policies reach the columnar host accounting.
        self._dc = None
        self.mac_address = mac_address or _default_mac(name)
        self.vms: list[VM] = []
        self.state = PowerState.ON
        self.meter = EnergyMeter(power_model or PowerModel.from_params(params))
        self.transitions: list[Transition] = []
        #: End of the current grace period (no suspend before this time).
        self.grace_until = 0.0
        #: Resumes triggered so far (suspend/resume cycle counting).
        self.resume_count = 0
        self.suspend_count = 0
        #: Injected crashes survived so far (fault accounting).
        self.crash_count = 0

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    @property
    def used_resources(self) -> ResourceSpec:
        return ResourceSpec(
            cpus=sum(vm.resources.cpus for vm in self.vms),
            memory_mb=sum(vm.resources.memory_mb for vm in self.vms))

    def can_host(self, vm: VM) -> bool:
        """Capacity check for adding ``vm`` (memory + overcommitted CPU)."""
        used = self.used_resources
        return (used.cpus + vm.resources.cpus <= self.capacity.schedulable_cpus
                and used.memory_mb + vm.resources.memory_mb <= self.capacity.memory_mb)

    def add_vm(self, vm: VM) -> None:
        if vm in self.vms:
            raise ValueError(f"{vm.name} already on {self.name}")
        if not self.can_host(vm):
            raise ValueError(f"{vm.name} does not fit on {self.name}")
        self.vms.append(vm)

    def remove_vm(self, vm: VM) -> None:
        self.vms.remove(vm)

    # ------------------------------------------------------------------
    # load / idleness
    # ------------------------------------------------------------------
    @property
    def cpu_utilization(self) -> float:
        """Current CPU utilization in [0, 1] from hosted VM activities."""
        if not self.vms:
            return 0.0
        demand = sum(vm.current_activity * vm.resources.cpus for vm in self.vms)
        return min(demand / self.capacity.cpus, 1.0)

    @property
    def all_vms_idle(self) -> bool:
        """True iff every hosted VM is idle in the current hour."""
        return all(vm.is_idle_now for vm in self.vms)

    def mean_raw_ip(self, hour_index: int) -> float:
        """The host's IP: average of its VMs' raw IPs (section III).

        An empty host has no IP; we return 0.0 (undetermined), which
        makes empty hosts neutral targets for the IP weigher.
        """
        if not self.vms:
            return 0.0
        return sum(vm.raw_ip(hour_index) for vm in self.vms) / len(self.vms)

    def ip_range(self, hour_index: int) -> float:
        """Spread between most-idle and most-active VM IPs (section III-D)."""
        if len(self.vms) < 2:
            return 0.0
        ips = [vm.raw_ip(hour_index) for vm in self.vms]
        return max(ips) - min(ips)

    # ------------------------------------------------------------------
    # power-state machine
    # ------------------------------------------------------------------
    @property
    def is_available(self) -> bool:
        """Can the host execute VM work right now?"""
        return self.state is PowerState.ON

    @property
    def is_suspended(self) -> bool:
        return self.state is PowerState.SUSPENDED

    def _advance(self, now: float, utilization: float | None = None) -> None:
        if self.state is PowerState.ON:
            util = self.cpu_utilization if utilization is None else utilization
        else:
            util = 0.0
        self.meter.advance(now, self.state, util)

    def _transition(self, now: float, allowed_from: tuple[PowerState, ...],
                    to_state: PowerState) -> None:
        if self.state not in allowed_from:
            raise HostStateError(
                f"{self.name}: illegal transition {self.state.name} -> {to_state.name}")
        self._advance(now)
        self.transitions.append(Transition(now, self.state, to_state))
        self.state = to_state

    def begin_suspend(self, now: float) -> None:
        """Enter S0->S3; the driver schedules :meth:`finish_suspend`."""
        self._transition(now, (PowerState.ON,), PowerState.SUSPENDING)
        self.suspend_count += 1

    def finish_suspend(self, now: float) -> None:
        self._transition(now, (PowerState.SUSPENDING,), PowerState.SUSPENDED)

    def begin_resume(self, now: float) -> None:
        """Enter S3->S0 (triggered by a WoL packet)."""
        self._transition(now, (PowerState.SUSPENDED,), PowerState.RESUMING)

    def finish_resume(self, now: float, grace_s: float = 0.0) -> None:
        """Back to S0; a grace period of ``grace_s`` starts now (section IV)."""
        self._transition(now, (PowerState.RESUMING,), PowerState.ON)
        self.resume_count += 1
        self.grace_until = max(self.grace_until, now + grace_s)

    def power_off(self, now: float) -> None:
        """S5 for empty hosts (classic consolidation's low-power state)."""
        if self.vms:
            raise HostStateError(f"{self.name}: cannot power off with VMs")
        self._transition(now, (PowerState.ON,), PowerState.OFF)

    def power_on(self, now: float) -> None:
        self._transition(now, (PowerState.OFF,), PowerState.ON)

    def crash(self, now: float) -> None:
        """Abrupt failure (fault injection): any live state drops to
        CRASHED.  VMs stay resident — the placement record stands, and
        shared storage restores them on :meth:`recover` — but the host
        serves nothing and draws off-state power until then."""
        self._transition(
            now,
            (PowerState.ON, PowerState.SUSPENDING, PowerState.SUSPENDED,
             PowerState.RESUMING),
            PowerState.CRASHED)
        self.crash_count += 1

    def recover(self, now: float) -> None:
        """Reboot a crashed host straight into S0 (no grace period)."""
        self._transition(now, (PowerState.CRASHED,), PowerState.ON)

    def sync_meter(self, now: float, utilization: float | None = None) -> None:
        """Charge energy up to ``now`` without changing state.

        Call before changing VM activities (utilization) and at the end
        of a simulation.  ``utilization`` optionally supplies the
        host's precomputed CPU utilization (the columnar accounting hot
        path); it must equal :attr:`cpu_utilization` exactly.
        """
        self._advance(now, utilization)

    def in_grace(self, now: float) -> bool:
        """Within the post-resume grace period? (no suspend allowed)."""
        return now < self.grace_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name}, {self.state.name}, vms={[v.name for v in self.vms]})"
