"""Compile scenario specs onto the two simulators (DESIGN.md §12).

:class:`ScenarioCompiler` turns a pure :class:`~repro.scenarios.spec.
ScenarioSpec` plus a seed into a ready-to-run :class:`CompiledRun`: a
heterogeneous :class:`~repro.cluster.datacenter.DataCenter`, a
consolidation controller, and either an
:class:`~repro.sim.hourly.HourlySimulator` or an
:class:`~repro.sim.event_driven.EventDrivenSimulation` wired with the
scenario's shaped request profile and — when the spec declares churn —
a :class:`ChurnInjector` registered as an hour hook.

Every random draw is keyed by stable digests of ``(seed, entity
name)`` (:func:`~repro.scenarios.spec.stable_seed`), and the event
simulator runs the PR 3 per-VM Philox request substreams, so a
scenario's behaviour is a pure function of ``(spec, seed)`` — the same
under both simulators, across worker processes and across fleet
reorderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import Observer, Simulation
from ..faults import FaultInjector
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..network.requests import RequestProfile
from ..sim.event_driven import EventConfig
from ..sim.hourly import HourlyConfig
from .spec import ScenarioSpec, stable_seed


class ChurnInjector(Observer):
    """Apply a scenario's churn as an observer on either backend.

    The injector owns one Philox stream keyed by ``(seed, scenario)``;
    it draws the hourly arrival/departure counts in a fixed order, so
    the churn sequence is identical under the hourly and event-driven
    backends.  Backend-specific effects (forcing a drowsy host awake,
    reinstating suspend checks after maintenance, swallowing a departed
    VM's scheduled requests, rebinding the columnar fleet) go through
    the :class:`~repro.api.Simulation` façade's administrative surface
    (:meth:`bind`), which dispatches to the backend adapter.
    """

    #: Churn feeds ``now`` into simulated state (placement/power
    #: timestamps), so it must see the engines' simulated clock, not
    #: the wall clock other observers get (repro.api.observers).
    wants_sim_time = True

    def __init__(self, spec: ScenarioSpec, dc: DataCenter,
                 params: DrowsyParams, seed: int, start_hour: int,
                 ephemeral_names: set[str]) -> None:
        self.spec = spec
        self.churn = spec.churn
        self.dc = dc
        self.params = params
        self.seed = seed
        self.start_hour = start_hour
        self.rng = np.random.Generator(np.random.Philox(
            key=stable_seed(seed, "churn", spec.name)))
        #: VMs eligible for churn departures (ephemeral classes at build
        #: time, plus every churn-created VM).
        self.ephemeral_names = set(ephemeral_names)
        self.in_maintenance: set[str] = set()
        self._powered_off: set[str] = set()
        self._counter = 0
        self.vms_added = 0
        self.vms_removed = 0
        self.vms_evacuated = 0
        self.arrivals_dropped = 0
        # Backend adapters (wired by :meth:`bind`).  The fleet-mutating
        # four default to direct data-center/host calls so an unbound
        # injector (engine-level tests) keeps working; the sharded
        # backend needs them routed through the façade, which captures
        # each effect for replay into the owning shard.
        self.force_awake = None       # (host, now) -> None
        self.reinstate_check = None   # (host) -> None
        self.on_vm_removed = None     # (vm_name) -> None
        self.rebind = None            # () -> None
        # Bound methods, not lambdas: the injector is part of the
        # checkpointed observer graph and must pickle.
        self.evacuate_host = self._evacuate_direct   # (host, now, targets)
        self.place_vm = self.dc.place                # (vm, dest) -> None
        self.power_off_host = self._power_off_direct  # (host, now) -> None
        self.power_on_host = self._power_on_direct    # (host, now) -> None

    # -- unbound (engine-level) defaults for the façade adapters ------
    def _evacuate_direct(self, host, now, targets):
        return self.dc.evacuate(host, now, targets)

    def _power_off_direct(self, host, now) -> None:
        host.power_off(now)

    def _power_on_direct(self, host, now) -> None:
        host.power_on(now)

    # ------------------------------------------------------------------
    def bind(self, simulation: Simulation) -> None:
        """Route the backend-specific effects through the façade."""
        self.force_awake = simulation.force_awake
        self.reinstate_check = simulation.reinstate_check
        self.on_vm_removed = simulation.note_vm_departed
        self.rebind = simulation.rebind_fleet
        self.evacuate_host = simulation.evacuate_host
        self.place_vm = simulation.place_vm
        self.power_off_host = simulation.power_off_host
        self.power_on_host = simulation.power_on_host

    # ------------------------------------------------------------------
    def hook(self, t: int, now: float) -> None:
        """Hour hook: maintenance transitions, departures, arrivals.

        Runs at the end of each hour tick on both simulators; the draw
        order below is fixed so the Philox stream advances identically
        everywhere.
        """
        rel = t - self.start_hour
        changed = False
        # All window ends strictly before any begin: with back-to-back
        # windows this order must not depend on how the spec happened
        # to list them.
        for w in self.churn.maintenance:
            if rel == w.start_hour + w.duration_h:
                self._end_maintenance(self.dc.hosts[w.host_index], now)
        for w in self.churn.maintenance:
            if rel == w.start_hour:
                self._begin_maintenance(self.dc.hosts[w.host_index], now)
        if self.churn.vm_departures_per_h > 0:
            changed |= self._depart(int(self.rng.poisson(
                self.churn.vm_departures_per_h)), now)
        if self.churn.vm_arrivals_per_h > 0:
            changed |= self._arrive(int(self.rng.poisson(
                self.churn.vm_arrivals_per_h)), t, now)
        if changed and self.rebind is not None:
            self.rebind()

    #: Observer-protocol spelling of :meth:`hook` (same bound method, so
    #: tests and tools that grab ``churn.hook`` see the same callable).
    on_hour = hook

    # ------------------------------------------------------------------
    # maintenance windows
    # ------------------------------------------------------------------
    def _begin_maintenance(self, host: Host, now: float) -> None:
        """Best-effort drain: wake the host if drowsy, migrate its VMs
        to the first non-maintenance host with room, and power it off.
        A host caught mid-transition (or with stranded VMs) is drained
        as far as possible but left powered."""
        self.in_maintenance.add(host.name)
        if host.state is not PowerState.ON and self.force_awake is not None:
            self.force_awake(host, now)
        candidates = [h for h in self.dc.hosts
                      if h.name not in self.in_maintenance]
        targets = ([h for h in candidates if h.is_available]
                   + [h for h in candidates if not h.is_available])
        migrated, _ = self.evacuate_host(host, now, targets)
        self.vms_evacuated += len(migrated)
        if self.force_awake is not None:
            # A drowsy fallback destination must wake to run its new
            # VM: the event simulator has no hourly power step to
            # notice an active VM landing on a suspended host.
            for vm in migrated:
                dest = self.dc.host_of(vm)
                if dest.state is not PowerState.ON:
                    self.force_awake(dest, now)
        if not host.vms and host.state is PowerState.ON:
            self.power_off_host(host, now)
            self._powered_off.add(host.name)

    def _end_maintenance(self, host: Host, now: float) -> None:
        self.in_maintenance.discard(host.name)
        if host.name in self._powered_off:
            self._powered_off.discard(host.name)
            if host.state is PowerState.OFF:
                self.power_on_host(host, now)
                if self.reinstate_check is not None:
                    self.reinstate_check(host)

    # ------------------------------------------------------------------
    # VM arrivals / departures
    # ------------------------------------------------------------------
    def _depart(self, k: int, now: float) -> bool:
        # Sorted by name: the victim choice is invariant to placement
        # history, so both simulators remove the same VMs.
        candidates = sorted(
            (vm for vm in self.dc.vms if vm.name in self.ephemeral_names),
            key=lambda vm: vm.name)
        k = min(k, len(candidates))
        if k == 0:
            return False
        picks = self.rng.choice(len(candidates), size=k, replace=False)
        for i in sorted(int(p) for p in picks):
            vm = candidates[i]
            self.dc.remove(vm, now)
            self.ephemeral_names.discard(vm.name)
            if self.on_vm_removed is not None:
                self.on_vm_removed(vm.name)
            self.vms_removed += 1
        return True

    def _arrive(self, k: int, t: int, now: float) -> bool:
        if k == 0:
            return False
        cls = self.spec.vm_class(self.churn.arrival_class)
        horizon = self.start_hour + self.spec.horizon_hours
        changed = False
        for _ in range(k):
            if self.vms_added >= self.churn.max_extra_vms:
                self.arrivals_dropped += 1
                continue
            name = f"{self.spec.name}-x{self._counter:04d}"
            self._counter += 1
            trace = cls.trace.build(name, self._counter, horizon, self.seed)
            vm = VM(name, trace, cls.resources, params=self.params,
                    interactive=cls.interactive)
            dest = next(
                (h for h in self.dc.hosts
                 if h.name not in self.in_maintenance and h.can_host(vm)),
                None)
            if dest is None:
                self.arrivals_dropped += 1
                continue
            self.place_vm(vm, dest)
            # The newcomer runs from this hour on: give it the hour's
            # trace activity so the scalar view agrees with the columnar
            # one after the rebind.
            vm.current_activity = vm.activity_at(t)
            if (vm.current_activity > 0.0
                    and dest.state is not PowerState.ON
                    and self.force_awake is not None):
                # Like the evacuation path: an active newcomer on a
                # drowsy host must wake it — the event simulator has no
                # hourly power step to notice, and a non-interactive VM
                # sends no request that would.
                self.force_awake(dest, now)
            self.ephemeral_names.add(name)
            self.vms_added += 1
            changed = True
        return changed


@dataclass
class CompiledRun:
    """One ready-to-run scenario simulation.

    ``simulation`` is the :class:`~repro.api.Simulation` façade;
    ``sim`` remains the underlying engine (compatibility: probes and
    tests that patch ``sim.hour_hooks`` keep working).
    """

    spec: ScenarioSpec
    seed: int
    simulator: str
    controller_name: str
    hours: int
    dc: DataCenter
    simulation: Simulation
    sim: object  # the engine: HourlySimulator | EventDrivenSimulation
    controller: object
    churn: ChurnInjector | None = None
    _result: object = field(default=None, repr=False)

    def run(self):
        """Run to the horizon; returns the unified
        :class:`~repro.api.RunResult`."""
        self._result = self.simulation.run(self.hours)
        return self._result


class ScenarioCompiler:
    """Compile a :class:`ScenarioSpec` for either simulator."""

    def __init__(self, spec: ScenarioSpec,
                 params: DrowsyParams = DEFAULT_PARAMS) -> None:
        self.spec = spec
        self.params = params

    # ------------------------------------------------------------------
    def build_datacenter(self, seed: int) -> tuple[DataCenter, set[str]]:
        """The scenario fleet with its initial placement.

        Hosts materialize class by class; VM traces are keyed by VM
        name; the VM list is shuffled by a seed-keyed RNG before a
        rotating first-fit placement — an idleness-oblivious initial
        state, like :func:`~repro.experiments.common.build_fleet`, but
        capacity-aware across heterogeneous host classes.  Returns the
        data center and the names of ephemeral VMs (churn candidates).
        """
        spec, params = self.spec, self.params
        hosts = [Host(f"{cls.name}-{i:03d}", cls.capacity, params)
                 for cls in spec.hosts for i in range(cls.count)]
        dc = DataCenter(hosts, params)

        horizon = spec.horizon_hours
        vms: list[VM] = []
        ephemeral: set[str] = set()
        ordinal = 0
        for cls in spec.vms:
            for i in range(cls.count):
                name = f"{cls.name}-{i:03d}"
                trace = cls.trace.build(name, ordinal, horizon, seed)
                vms.append(VM(name, trace, cls.resources, params=params,
                              interactive=cls.interactive))
                if cls.ephemeral:
                    ephemeral.add(name)
                ordinal += 1

        rng = np.random.default_rng(stable_seed(seed, "placement", spec.name))
        rng.shuffle(vms)
        ptr = 0
        n = len(hosts)
        for vm in vms:
            for probe in range(n):
                host = hosts[(ptr + probe) % n]
                if host.can_host(vm):
                    dc.place(vm, host)
                    ptr = (ptr + probe + 1) % n
                    break
            else:
                raise ValueError(
                    f"scenario {spec.name!r} does not fit: {vm.name} "
                    f"({vm.resources}) has no host with room")
        dc.check_invariants()
        return dc, ephemeral

    # ------------------------------------------------------------------
    def compile(self, controller: str = "drowsy", simulator: str = "hourly",
                seed: int = 0, hours: int | None = None,
                relocate_all: bool | None = None,
                shards: int = 4, workers: int = 0) -> CompiledRun:
        """Build the data center, controller and simulator for one run.

        ``relocate_all`` defaults to the E8 convention: Drowsy runs its
        periodic full-relocation evaluation mode, reactive baselines run
        their normal migration loop.  ``simulator="sharded"`` partitions
        the run over ``shards`` shard engines (event inner, which the
        scenario request wiring already matches) on ``workers`` worker
        processes (0 = in-process threads); results are bit-identical
        to ``simulator="event"`` for every shard/worker count.
        """
        spec, params = self.spec, self.params
        if simulator not in ("hourly", "event", "sharded"):
            raise ValueError(
                f"unknown simulator {simulator!r}; expected 'hourly', "
                "'event' or 'sharded'")
        hours = spec.horizon_hours if hours is None else hours
        if relocate_all is None:
            relocate_all = controller == "drowsy"
        dc, ephemeral = self.build_datacenter(seed)
        churn = (ChurnInjector(spec, dc, params, seed, start_hour=0,
                               ephemeral_names=ephemeral)
                 if spec.churn.enabled else None)
        # Chaos plans compile like everything else: a pure function of
        # (spec, seed), so fault matrices shard byte-identically.
        faults = (FaultInjector(spec.faults, seed)
                  if spec.faults is not None else None)

        if simulator == "hourly":
            config = HourlyConfig(relocate_all_mode=relocate_all)
        else:
            profile = RequestProfile(
                peak_rate_per_s=spec.request_peak_rate_per_s,
                shape=spec.arrivals)
            config = EventConfig(relocate_all_mode=relocate_all,
                                 request_profile=profile,
                                 seed=seed,
                                 request_streams="per-vm")
            if simulator == "sharded":
                from ..api.sharded import ShardedConfig

                config = ShardedConfig(shards=shards, inner="event",
                                       inner_config=config,
                                       workers=workers)
        observers = tuple(o for o in (churn, faults) if o is not None)
        simulation = Simulation(
            dc, controller, simulator, params=params, config=config,
            observers=observers)
        simulation.hours = hours
        simulation.churn = churn
        if churn is not None:
            churn.bind(simulation)
        return CompiledRun(spec=spec, seed=seed, simulator=simulator,
                           controller_name=controller, hours=hours,
                           dc=dc, simulation=simulation,
                           sim=simulation.engine,
                           controller=simulation.controller,
                           churn=churn)
