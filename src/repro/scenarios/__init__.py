"""Declarative workload/fleet scenarios compiled onto both simulators.

The scenario engine (DESIGN.md §12) turns a :class:`ScenarioSpec` —
fleet composition over heterogeneous host/VM classes, a trace mix drawn
from the :mod:`repro.traces` generators, arrival-pattern shaping and
optional churn — into ready-to-run hourly or event-driven simulations,
and shards scenario × controller × seed grids across cores through the
:class:`~repro.sim.sweep.SweepRunner` with byte-identical tables.
"""

from .compiler import ChurnInjector, CompiledRun, ScenarioCompiler
from .registry import get_scenario, list_scenarios, register_scenario
from .spec import (
    ChurnSpec,
    HostClass,
    MaintenanceWindow,
    ScenarioSpec,
    TraceSpec,
    VMClass,
    stable_seed,
)
from .sweep import (
    ScenarioCell,
    ScenarioRow,
    ScenarioTable,
    run_scenario_cell,
    run_scenario_sweep,
    scenario_grid,
)

__all__ = [
    "ChurnInjector",
    "ChurnSpec",
    "CompiledRun",
    "HostClass",
    "MaintenanceWindow",
    "ScenarioCell",
    "ScenarioCompiler",
    "ScenarioRow",
    "ScenarioSpec",
    "ScenarioTable",
    "TraceSpec",
    "VMClass",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario_cell",
    "run_scenario_sweep",
    "scenario_grid",
    "stable_seed",
]
