"""Scenario × controller × seed sweeps on the multi-core runner.

Every cell is fully specified by its :class:`ScenarioCell` (scenario
name, controller, seed, simulator, scale) and builds all of its state
inside the worker, like the E8 cells — so
:class:`~repro.sim.sweep.SweepRunner` shards scenario grids across
spawn workers with **byte-identical** tables vs the serial run
(asserted by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.sweep import SweepRunner, SweepTable
from .compiler import ScenarioCompiler
from .registry import get_scenario

#: Simulators a scenario cell may target.
SIMULATOR_NAMES = ("hourly", "event")


@dataclass(frozen=True)
class ScenarioCell:
    """One independent scenario simulation of a sweep grid."""

    scenario: str
    controller: str = "drowsy"
    seed: int = 0
    simulator: str = "hourly"
    #: Class-count multiplier (floor one per class): smoke grids run the
    #: built-ins at fractional scale.
    scale: float = 1.0
    #: 0 = the scenario's own horizon.
    hours: int = 0


@dataclass(frozen=True)
class ScenarioRow:
    """One tidy result row (quantities both simulators produce)."""

    scenario: str
    simulator: str
    controller: str
    seed: int
    hours: int
    n_hosts: int
    n_vms: int
    vms_added: int
    vms_removed: int
    energy_kwh: float
    migrations: int
    suspend_cycles: int
    suspended_fraction: float


def run_scenario_cell(cell: ScenarioCell) -> ScenarioRow:
    """Run one cell (top-level so spawn workers can pickle it)."""
    spec = get_scenario(cell.scenario)
    if cell.scale != 1.0:
        spec = spec.scaled(cell.scale)
    run = ScenarioCompiler(spec).compile(
        controller=cell.controller, simulator=cell.simulator,
        seed=cell.seed, hours=cell.hours or None)
    n_vms = len(run.dc.vms)
    result = run.run()
    churn = run.churn
    return ScenarioRow(
        scenario=cell.scenario,
        simulator=cell.simulator,
        controller=cell.controller,
        seed=cell.seed,
        hours=result.hours,
        n_hosts=len(run.dc.hosts),
        n_vms=n_vms,
        vms_added=churn.vms_added if churn is not None else 0,
        vms_removed=churn.vms_removed if churn is not None else 0,
        energy_kwh=result.total_energy_kwh,
        migrations=result.migrations,
        suspend_cycles=sum(result.suspend_cycles_by_host.values()),
        suspended_fraction=result.global_suspended_fraction,
    )


def scenario_grid(scenarios, controllers=("drowsy", "neat"),
                  seeds=(0,), simulator: str = "hourly",
                  scale: float = 1.0, hours: int = 0) -> list[ScenarioCell]:
    """The standard (scenario × controller × seed) cell grid."""
    if simulator not in SIMULATOR_NAMES:
        raise ValueError(f"unknown simulator {simulator!r}; "
                         f"expected one of {SIMULATOR_NAMES}")
    for name in scenarios:
        get_scenario(name)  # fail fast on typos, before any cell runs
    return [ScenarioCell(scenario=s, controller=c, seed=seed,
                         simulator=simulator, scale=scale, hours=hours)
            for s in scenarios for c in controllers for seed in seeds]


@dataclass
class ScenarioTable(SweepTable):
    """Tidy scenario sweep table (CSV/SQLite/parquet via the base)."""

    rows: list[ScenarioRow]

    row_type = ScenarioRow
    _TABLE = "scenario_sweep"

    def render(self) -> str:
        header = (f"{'scenario':<20}{'sim':<8}{'controller':<17}{'seed':>5}"
                  f"{'hours':>6}{'hosts':>6}{'VMs':>5}{'+VM':>5}{'-VM':>5}"
                  f"{'kWh':>9}{'migr':>6}{'susp':>6}{'drowsy %':>10}")
        lines = ["scenario sweep (one row per scenario x controller x seed)",
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.scenario:<20}{row.simulator:<8}{row.controller:<17}"
                f"{row.seed:>5}{row.hours:>6}{row.n_hosts:>6}{row.n_vms:>5}"
                f"{row.vms_added:>5}{row.vms_removed:>5}"
                f"{row.energy_kwh:>9.1f}{row.migrations:>6}"
                f"{row.suspend_cycles:>6}"
                f"{100 * row.suspended_fraction:>9.1f}%")
        return "\n".join(lines)


def run_scenario_sweep(cells: list[ScenarioCell],
                       workers: int = 1) -> ScenarioTable:
    """Shard scenario cells across cores into a :class:`ScenarioTable`."""
    return ScenarioTable(
        rows=SweepRunner(workers=workers).map(run_scenario_cell, cells))
