"""Scenario × controller × seed sweeps on the multi-core runner.

Every cell is fully specified by its :class:`ScenarioCell` (scenario
name, controller, seed, simulator, scale) and builds all of its state
inside the worker, like the E8 cells — so
:class:`~repro.sim.sweep.SweepRunner` shards scenario grids across
spawn workers with **byte-identical** tables vs the serial run
(asserted by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.sweep import SweepRunner, SweepTable
from .compiler import ScenarioCompiler
from .registry import get_scenario

#: Simulators a scenario cell may target.  ``"sharded"`` runs the
#: event inner partitioned over shard engines — bit-identical rows.
SIMULATOR_NAMES = ("hourly", "event", "sharded")


@dataclass(frozen=True)
class ScenarioCell:
    """One independent scenario simulation of a sweep grid."""

    scenario: str
    controller: str = "drowsy"
    seed: int = 0
    simulator: str = "hourly"
    #: Class-count multiplier (floor one per class): smoke grids run the
    #: built-ins at fractional scale.
    scale: float = 1.0
    #: 0 = the scenario's own horizon.
    hours: int = 0
    #: Sharded-simulator geometry (ignored by the single-engine ones):
    #: shard count, and worker processes (0 = in-process threads —
    #: the right default inside an already-sharded sweep).
    shards: int = 4
    workers: int = 0


@dataclass(frozen=True)
class ScenarioRow:
    """One tidy result row.

    The first block holds quantities both backends produce; the
    SLA/latency block is filled from the unified
    :class:`~repro.api.RunResult`'s request summary and is all-zero for
    hourly cells (the hourly backend has no request path) and for event
    cells that served no requests.
    """

    scenario: str
    simulator: str
    controller: str
    seed: int
    hours: int
    n_hosts: int
    n_vms: int
    vms_added: int
    vms_removed: int
    energy_kwh: float
    migrations: int
    suspend_cycles: int
    suspended_fraction: float
    # -- event-backend SLA/latency (zero where not measured) -----------
    requests: int = 0
    sla_fraction: float = 0.0
    mean_sojourn_ms: float = 0.0
    p99_sojourn_ms: float = 0.0
    wake_requests: int = 0
    wol_sent: int = 0
    # -- fault injection (zero for plan-free cells) --------------------
    faults_injected: int = 0
    wol_retries: int = 0
    failovers: int = 0
    stranded_requests: int = 0
    unavailability_s: float = 0.0
    #: Deterministic activity column (DESIGN.md §17): total events the
    #: engine processed (0 on the hourly backend, which has no queue).
    events_processed: int = 0


def _sla_columns(result) -> dict:
    """The event-only row columns, zeroed when the backend (or an empty
    request log) provides nothing — tidy tables stay flat floats/ints."""
    summary = result.request_summary
    if not summary or not summary.get("requests"):
        return {}

    def _ms(key: str) -> float:
        value = summary.get(key, 0.0)
        return 1e3 * value if value == value else 0.0  # NaN -> 0.0

    return dict(
        requests=int(summary["requests"]),
        sla_fraction=summary["sla_fraction"],
        mean_sojourn_ms=_ms("mean_s"),
        p99_sojourn_ms=_ms("p99_s"),
        wake_requests=int(summary["wake_requests"]),
        wol_sent=int(result.wol_sent or 0),
    )


def _fault_columns(result) -> dict:
    """Degradation columns for chaos cells; empty (row defaults) when no
    fault plan rode the run."""
    s = result.fault_summary
    if s is None:
        return {}
    return dict(
        faults_injected=s.faults_injected,
        wol_retries=s.wol_retries,
        failovers=s.failovers,
        stranded_requests=s.stranded_requests,
        unavailability_s=s.unavailability_s,
    )


def run_scenario_cell(cell: ScenarioCell) -> ScenarioRow:
    """Run one cell (top-level so spawn workers can pickle it)."""
    spec = get_scenario(cell.scenario)
    if cell.scale != 1.0:
        spec = spec.scaled(cell.scale)
    run = ScenarioCompiler(spec).compile(
        controller=cell.controller, simulator=cell.simulator,
        seed=cell.seed, hours=cell.hours or None,
        shards=cell.shards, workers=cell.workers)
    n_vms = len(run.dc.vms)
    result = run.run()
    churn = run.churn
    return ScenarioRow(
        scenario=cell.scenario,
        simulator=cell.simulator,
        controller=cell.controller,
        seed=cell.seed,
        hours=result.hours,
        n_hosts=len(run.dc.hosts),
        n_vms=n_vms,
        vms_added=churn.vms_added if churn is not None else 0,
        vms_removed=churn.vms_removed if churn is not None else 0,
        energy_kwh=result.total_energy_kwh,
        migrations=result.migrations,
        suspend_cycles=result.total_suspend_cycles,
        suspended_fraction=result.global_suspended_fraction,
        events_processed=int(result.events_processed or 0),
        **_sla_columns(result),
        **_fault_columns(result),
    )


def scenario_grid(scenarios, controllers=("drowsy", "neat"),
                  seeds=(0,), simulator: str = "hourly",
                  scale: float = 1.0, hours: int = 0) -> list[ScenarioCell]:
    """The standard (scenario × controller × seed) cell grid."""
    if simulator not in SIMULATOR_NAMES:
        raise ValueError(f"unknown simulator {simulator!r}; "
                         f"expected one of {SIMULATOR_NAMES}")
    for name in scenarios:
        get_scenario(name)  # fail fast on typos, before any cell runs
    return [ScenarioCell(scenario=s, controller=c, seed=seed,
                         simulator=simulator, scale=scale, hours=hours)
            for s in scenarios for c in controllers for seed in seeds]


@dataclass
class ScenarioTable(SweepTable):
    """Tidy scenario sweep table (CSV/SQLite/parquet via the base)."""

    rows: list[ScenarioRow]

    row_type = ScenarioRow
    _TABLE = "scenario_sweep"

    def render(self) -> str:
        header = (f"{'scenario':<20}{'sim':<8}{'controller':<17}{'seed':>5}"
                  f"{'hours':>6}{'hosts':>6}{'VMs':>5}{'+VM':>5}{'-VM':>5}"
                  f"{'kWh':>9}{'migr':>6}{'susp':>6}{'drowsy %':>10}"
                  f"{'p99 ms':>8}{'wake':>6}{'faults':>7}")
        lines = ["scenario sweep (one row per scenario x controller x seed)",
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.scenario:<20}{row.simulator:<8}{row.controller:<17}"
                f"{row.seed:>5}{row.hours:>6}{row.n_hosts:>6}{row.n_vms:>5}"
                f"{row.vms_added:>5}{row.vms_removed:>5}"
                f"{row.energy_kwh:>9.1f}{row.migrations:>6}"
                f"{row.suspend_cycles:>6}"
                f"{100 * row.suspended_fraction:>9.1f}%"
                f"{row.p99_sojourn_ms:>8.0f}{row.wake_requests:>6}"
                f"{row.faults_injected:>7}")
        return "\n".join(lines)


def run_scenario_sweep(cells: list[ScenarioCell], workers: int = 1,
                       supervise=None, journal=None,
                       progress: bool = False) -> ScenarioTable:
    """Shard scenario cells across cores into a :class:`ScenarioTable`.

    ``supervise``/``journal``/``progress`` pass through to
    :class:`~repro.sim.sweep.SweepRunner` — crashed workers respawn,
    an interrupted sweep resumes from its journal (DESIGN.md §16), and
    ``progress`` redraws a TTY-gated cells-done line (§17).
    """
    runner = SweepRunner(workers=workers, supervise=supervise,
                         journal=journal, progress=progress)
    return ScenarioTable(rows=runner.map(run_scenario_cell, cells))
