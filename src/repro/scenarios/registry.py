"""Built-in named scenarios (DESIGN.md §12, EXPERIMENTS.md).

Each entry is a pure :class:`~repro.scenarios.spec.ScenarioSpec` —
list them with ``python -m repro scenario list``, run one with
``python -m repro scenario run <name>``, grid them with
``python -m repro scenario sweep``.  The built-ins deliberately cover
the dimensions the paper's evaluation varies least: arrival shaping
(diurnal, weekly, flash crowds), fleet heterogeneity, and churn (VM
create/delete, host maintenance windows).
"""

from __future__ import annotations

from ..faults.spec import (
    FaultPlan,
    HostCrashFaults,
    PartitionWindow,
    TransitionFaults,
    WakingServiceFaults,
    WolFaults,
)
from ..network.requests import ArrivalShape
from .spec import (
    ChurnSpec,
    HostClass,
    MaintenanceWindow,
    ScenarioSpec,
    TraceSpec,
    VMClass,
)

#: Name -> spec.  Use :func:`register_scenario` to add entries (e.g.
#: experiment modules contributing bespoke scenarios).
SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a scenario under its own name (last writer wins)."""
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(SCENARIOS))}") from None


def list_scenarios() -> list[ScenarioSpec]:
    """All registered scenarios, name order."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


# ----------------------------------------------------------------------
# built-ins
# ----------------------------------------------------------------------

register_scenario(ScenarioSpec(
    name="diurnal-office",
    description="office-hours LLMI fleet over an always-on LLMU base, "
                "diurnal request shaping peaking mid-afternoon",
    hosts=(HostClass("std", count=16),),
    vms=(
        VMClass("office", count=40, trace=TraceSpec(
            generator="weekly", weekdays=(0, 1, 2, 3, 4),
            hours_of_day=(8, 9, 10, 11, 12, 13, 14, 15, 16, 17),
            level=0.25)),
        VMClass("web", count=24, trace=TraceSpec(
            generator="google-llmu", base_level=0.45)),
    ),
    arrivals=ArrivalShape(kind="diurnal", amplitude=0.7, phase_h=15.0),
))

register_scenario(ScenarioSpec(
    name="flash-crowd",
    description="interactive web fleet hit by recurring flash crowds "
                "(8x traffic bursts precessing across the day)",
    hosts=(HostClass("std", count=12),),
    vms=(
        VMClass("web", count=32, trace=TraceSpec(
            generator="google-llmu", base_level=0.5,
            diurnal_amplitude=0.2)),
        VMClass("tail", count=16, trace=TraceSpec(
            generator="production")),
    ),
    arrivals=ArrivalShape(kind="flash", burst_period_h=47, burst_len_h=2,
                          burst_factor=8.0),
))

register_scenario(ScenarioSpec(
    name="weekly-batch",
    description="deep-idle batch estate: nightly backups and weekday "
                "bursts with weekend-damped request traffic",
    hosts=(HostClass("std", count=16),),
    vms=(
        VMClass("backup", count=24, trace=TraceSpec(
            generator="backup", backup_hour=2, level=0.8),
            interactive=False),
        VMClass("reporting", count=24, trace=TraceSpec(
            generator="weekly", weekdays=(0, 2, 4),
            hours_of_day=(9, 10), level=0.3)),
        VMClass("frontend", count=16, trace=TraceSpec(
            generator="production")),
    ),
    arrivals=ArrivalShape(kind="weekly", amplitude=0.5, weekend_factor=0.3),
))

register_scenario(ScenarioSpec(
    name="heterogeneous-fleet",
    description="big/small host classes hosting mixed VM flavors — the "
                "packing problem the uniform sweeps never exercise",
    hosts=(
        HostClass("big", count=4, cpus=32, memory_mb=64 * 1024),
        HostClass("small", count=12, cpus=8, memory_mb=16 * 1024),
    ),
    vms=(
        VMClass("fat", count=8, cpus=8, memory_mb=16 * 1024,
                trace=TraceSpec(generator="llmu", base_level=0.5)),
        VMClass("std", count=24, trace=TraceSpec(generator="production")),
        VMClass("tiny", count=24, cpus=1, memory_mb=2 * 1024,
                trace=TraceSpec(generator="weekly", level=0.15)),
    ),
    arrivals=ArrivalShape(kind="diurnal", amplitude=0.5),
))

register_scenario(ScenarioSpec(
    name="maintenance-churn",
    description="rolling host maintenance windows draining one host a "
                "day across the first fleet half",
    hosts=(HostClass("std", count=8),),
    vms=(
        VMClass("app", count=16, trace=TraceSpec(generator="production")),
        VMClass("web", count=8, trace=TraceSpec(
            generator="google-llmu", base_level=0.4)),
    ),
    churn=ChurnSpec(maintenance=tuple(
        MaintenanceWindow(host_index=i, start_hour=12 + 24 * i, duration_h=8)
        for i in range(4))),
    arrivals=ArrivalShape(kind="diurnal", amplitude=0.4),
))

register_scenario(ScenarioSpec(
    name="dev-churn",
    description="steady production base plus ephemeral dev VMs arriving "
                "and departing around the clock",
    hosts=(HostClass("std", count=12),),
    vms=(
        VMClass("prod", count=24, trace=TraceSpec(generator="production")),
        VMClass("dev", count=8, ephemeral=True, cpus=1, memory_mb=4 * 1024,
                trace=TraceSpec(
                    generator="weekly", weekdays=(0, 1, 2, 3, 4),
                    hours_of_day=(9, 10, 11, 13, 14, 15, 16), level=0.35)),
    ),
    churn=ChurnSpec(vm_arrivals_per_h=0.25, vm_departures_per_h=0.25,
                    arrival_class="dev", max_extra_vms=32),
    arrivals=ArrivalShape(kind="weekly", amplitude=0.5),
))

register_scenario(ScenarioSpec(
    name="steady-llmu",
    description="always-active streaming fleet — the negative control "
                "where consolidation should find almost nothing",
    hosts=(HostClass("std", count=12),),
    vms=(
        VMClass("stream", count=40, trace=TraceSpec(
            generator="llmu", base_level=0.6, diurnal_amplitude=0.2)),
    ),
))

# ----------------------------------------------------------------------
# chaos built-ins (DESIGN.md §14): the flash-crowd and maintenance
# scenarios above, re-run under fault plans — `scenario run` and
# `scenario sweep` take them like any other entry.
# ----------------------------------------------------------------------

register_scenario(ScenarioSpec(
    name="flash-crowd-lossy-wol",
    description="flash crowds over a lossy rack network: 20% WoL loss "
                "plus in-flight delays — retries/backoff must strand "
                "no request",
    hosts=(HostClass("std", count=12),),
    vms=(
        VMClass("web", count=32, trace=TraceSpec(
            generator="google-llmu", base_level=0.5,
            diurnal_amplitude=0.2)),
        VMClass("tail", count=16, trace=TraceSpec(
            generator="production")),
    ),
    arrivals=ArrivalShape(kind="flash", burst_period_h=47, burst_len_h=2,
                          burst_factor=8.0),
    faults=FaultPlan(
        name="lossy-wol",
        wol=WolFaults(loss_probability=0.2, delay_probability=0.1,
                      mean_delay_s=0.5)),
))

register_scenario(ScenarioSpec(
    name="maintenance-with-crashes",
    description="rolling maintenance windows while hosts crash at random "
                "and the occasional resume fails over to live migration",
    hosts=(HostClass("std", count=8),),
    vms=(
        VMClass("app", count=16, trace=TraceSpec(generator="production")),
        VMClass("web", count=8, trace=TraceSpec(
            generator="google-llmu", base_level=0.4)),
    ),
    churn=ChurnSpec(maintenance=tuple(
        MaintenanceWindow(host_index=i, start_hour=12 + 24 * i, duration_h=8)
        for i in range(4))),
    arrivals=ArrivalShape(kind="diurnal", amplitude=0.4),
    faults=FaultPlan(
        name="crashes",
        crashes=HostCrashFaults(rate_per_host_per_h=0.01,
                                recover_after_s=1800.0, max_crashes=6),
        transitions=TransitionFaults(resume_failure_probability=0.02,
                                     recover_after_s=900.0)),
))

register_scenario(ScenarioSpec(
    name="failover-drill",
    description="diurnal fleet whose waking-module primary is killed on "
                "day two, with an SDN partition window on day three — "
                "the paper's section V failover claim as a scenario",
    hosts=(HostClass("std", count=12),),
    vms=(
        VMClass("office", count=24, trace=TraceSpec(
            generator="weekly", weekdays=(0, 1, 2, 3, 4),
            hours_of_day=(8, 9, 10, 11, 12, 13, 14, 15, 16, 17),
            level=0.25)),
        VMClass("web", count=16, trace=TraceSpec(
            generator="google-llmu", base_level=0.45)),
    ),
    horizon_hours=96,
    arrivals=ArrivalShape(kind="diurnal", amplitude=0.6, phase_h=15.0),
    faults=FaultPlan(
        name="failover-drill",
        waking=WakingServiceFaults(
            kill_primary_at_h=30.0,
            partitions=(PartitionWindow(start_h=54.0, duration_h=2.0),))),
))

register_scenario(ScenarioSpec(
    name="seasonal-quiet",
    description="extreme LLMI estate (long-idle services, rare bursts) — "
                "the upper bound of what suspension can harvest",
    hosts=(HostClass("std", count=12),),
    vms=(
        VMClass("archive", count=24, trace=TraceSpec(
            generator="weekly", weekdays=(0,), hours_of_day=(9,),
            level=0.2)),
        VMClass("backup", count=16, trace=TraceSpec(
            generator="backup", backup_hour=3, level=0.7),
            interactive=False),
        VMClass("dormant", count=8, trace=TraceSpec(
            generator="always-idle"), interactive=False),
    ),
    arrivals=ArrivalShape(kind="weekly", amplitude=0.4, weekend_factor=0.2),
))
