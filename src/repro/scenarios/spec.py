"""Scenario specification dataclasses (DESIGN.md §12).

A :class:`ScenarioSpec` is a pure, frozen description of a workload
scenario: which host classes make up the fleet, which VM classes run on
it (each with a declarative :class:`TraceSpec` naming one of the
:mod:`repro.traces` generators), how client request rates are shaped
over the horizon, and what churn — VM arrivals/departures, host
maintenance windows — perturbs the fleet mid-run.

Specs carry no RNG state and no simulator references, so the same spec
compiles onto the hourly and the event-driven simulator, serially or in
a spawn worker, with every random draw derived from stable name-keyed
digests (:func:`stable_seed`, the PR 3 bulk-request machinery): a
scenario's randomness is a pure function of ``(spec, seed)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from dataclasses import is_dataclass

import numpy as np

from ..cluster.resources import HostCapacity, ResourceSpec
from ..faults.spec import FaultPlan
from ..network.requests import ArrivalShape
from ..traces.base import ActivityTrace
from ..traces.google import google_llmu_trace
from ..traces.production import PRODUCTION_SPECS, production_trace
from ..traces.replay import trace_from_csv
from ..traces.synthetic import (
    always_idle_trace,
    build_trace,
    daily_backup_trace,
    llmu_trace,
)

#: Trace generator names a :class:`TraceSpec` may reference.
TRACE_GENERATORS = ("production", "google-llmu", "llmu", "backup",
                    "weekly", "always-idle", "csv")


def stable_seed(*parts) -> int:
    """Deterministic 64-bit seed from a tuple of parts.

    Like the host-MAC / VM-IP digests and the per-VM Philox request
    streams: a blake2b digest of the joined parts, never the salted
    builtin ``hash()``, so every spawn worker (and every fleet
    iteration order) derives the same randomness for the same entity.
    """
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big")


def _to_jsonable(value):
    """Recursively lower dataclasses to dicts and tuples to lists."""
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _to_jsonable(getattr(value, f.name))
                for f in dataclass_fields(value)}
    if isinstance(value, tuple):
        return [_to_jsonable(v) for v in value]
    return value


def _from_dict(cls, data: dict, converters: dict | None = None):
    """Rebuild a frozen spec dataclass from its ``_to_jsonable`` dict.

    Absent keys fall back to the field defaults (specs stay loadable
    after a field gains a default); unknown keys fail fast — a typo'd
    key silently dropped would mean a spec that validates but does not
    describe what its author wrote.  JSON arrays come back as tuples,
    so the rebuilt spec compares equal to the original.
    """
    known = {f.name for f in dataclass_fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {', '.join(sorted(unknown))}")
    converters = converters or {}
    kwargs = {}
    for name, value in data.items():
        conv = converters.get(name)
        if conv is not None:
            value = conv(value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


def _fault_plan_from_dict(data: dict) -> FaultPlan:
    from ..faults.spec import (
        HostCrashFaults,
        PartitionWindow,
        TransitionFaults,
        WakingServiceFaults,
        WolFaults,
    )

    return _from_dict(FaultPlan, data, converters={
        "wol": lambda d: _from_dict(WolFaults, d),
        "crashes": lambda d: _from_dict(HostCrashFaults, d),
        "transitions": lambda d: _from_dict(TransitionFaults, d),
        "waking": lambda d: _from_dict(WakingServiceFaults, d, converters={
            "partitions": lambda ws: tuple(
                _from_dict(PartitionWindow, w) for w in ws)}),
    })


@dataclass(frozen=True)
class TraceSpec:
    """Declarative reference to one of the trace generators.

    ``build`` derives each VM's trace deterministically from the
    scenario seed and the VM's *name* (not its position), so traces are
    invariant under fleet reordering and churn history.
    """

    generator: str = "production"
    #: production: spec index in [1, 5]; 0 cycles the five specs by VM
    #: ordinal (the heterogeneous default).
    index: int = 0
    #: weekly: active weekdays / hours-of-day and the activity level.
    weekdays: tuple[int, ...] = (0, 1, 2, 3, 4)
    hours_of_day: tuple[int, ...] = (9, 10, 11, 12, 13, 14, 15, 16)
    level: float = 0.2
    level_jitter: float = 0.2
    #: llmu / google-llmu: load baseline and diurnal swing.
    base_level: float = 0.55
    diurnal_amplitude: float = 0.25
    #: backup: hour of day the daily job runs.
    backup_hour: int = 2
    #: csv: path to (or inline text of) an hourly activity table.
    csv: str = ""

    def __post_init__(self) -> None:
        if self.generator not in TRACE_GENERATORS:
            raise ValueError(
                f"unknown trace generator {self.generator!r}; "
                f"expected one of {TRACE_GENERATORS}")
        if self.generator == "production" and not (
                0 <= self.index <= len(PRODUCTION_SPECS)):
            raise ValueError(
                f"production index must be in [0, {len(PRODUCTION_SPECS)}]")
        if self.generator == "csv" and not self.csv:
            raise ValueError("csv trace spec needs a csv source")

    def build(self, vm_name: str, ordinal: int, hours: int,
              seed: int) -> ActivityTrace:
        """The VM's trace over at least ``hours`` hours."""
        days = max(1, (hours + 23) // 24)
        vm_seed = stable_seed(seed, "trace", vm_name)
        gen = self.generator
        if gen == "production":
            idx = self.index or (ordinal % len(PRODUCTION_SPECS)) + 1
            trace = production_trace(idx, days=days, seed=vm_seed)
        elif gen == "google-llmu":
            trace = google_llmu_trace(
                hours=days * 24, seed=vm_seed, base_level=self.base_level,
                diurnal_amplitude=self.diurnal_amplitude)
        elif gen == "llmu":
            trace = llmu_trace(hours=days * 24, base_level=self.base_level,
                               diurnal_amplitude=self.diurnal_amplitude,
                               seed=vm_seed)
        elif gen == "backup":
            trace = daily_backup_trace(days=days, backup_hour=self.backup_hour,
                                       level=self.level)
        elif gen == "weekly":
            weekdays, hours_of_day = self.weekdays, self.hours_of_day

            def active(h, dw, dm, m, doy):
                return np.isin(dw, weekdays) & np.isin(h, hours_of_day)

            trace = build_trace(
                vm_name, days * 24, active, level=self.level,
                rng=np.random.default_rng(vm_seed),
                level_jitter=self.level_jitter)
        elif gen == "always-idle":
            trace = always_idle_trace(days * 24)
        else:  # csv
            trace = trace_from_csv(self.csv)
        return trace.with_name(vm_name)


@dataclass(frozen=True)
class HostClass:
    """One class of identical hosts in the scenario fleet."""

    name: str
    count: int
    cpus: int = 16
    memory_mb: int = 32 * 1024
    cpu_overcommit: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"host class {self.name!r} needs count >= 1")

    @property
    def capacity(self) -> HostCapacity:
        return HostCapacity(cpus=self.cpus, memory_mb=self.memory_mb,
                            cpu_overcommit=self.cpu_overcommit)


@dataclass(frozen=True)
class VMClass:
    """One class of VMs sharing a flavor and a trace family."""

    name: str
    count: int
    trace: TraceSpec = TraceSpec()
    cpus: int = 2
    memory_mb: int = 8 * 1024
    #: Interactive VMs receive shaped client requests (event simulator).
    interactive: bool = True
    #: Ephemeral VMs are eligible for churn departures.
    ephemeral: bool = False

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"VM class {self.name!r} needs count >= 1")

    @property
    def resources(self) -> ResourceSpec:
        return ResourceSpec(cpus=self.cpus, memory_mb=self.memory_mb)


@dataclass(frozen=True)
class MaintenanceWindow:
    """Drain one host for a window of hours (relative to run start)."""

    host_index: int
    start_hour: int
    duration_h: int

    def __post_init__(self) -> None:
        if self.host_index < 0:
            raise ValueError("host_index must be >= 0")
        if self.start_hour < 0 or self.duration_h < 1:
            raise ValueError("window needs start_hour >= 0, duration >= 1")


@dataclass(frozen=True)
class ChurnSpec:
    """Mid-run fleet perturbations (DESIGN.md §12).

    Arrivals and departures are hourly Poisson counts drawn from a
    scenario-keyed Philox stream — one draw sequence per run, identical
    under both simulators.  Departures pick uniformly among *ephemeral*
    VMs (churn-created ones and classes flagged ``ephemeral``), sorted
    by name so the choice is invariant to placement history.
    """

    vm_arrivals_per_h: float = 0.0
    vm_departures_per_h: float = 0.0
    #: VM class (by name) that churn arrivals instantiate.
    arrival_class: str = ""
    #: Cap on churn-created VMs over a run.
    max_extra_vms: int = 64
    maintenance: tuple[MaintenanceWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.vm_arrivals_per_h < 0 or self.vm_departures_per_h < 0:
            raise ValueError("churn rates must be >= 0")
        if self.vm_arrivals_per_h > 0 and not self.arrival_class:
            raise ValueError("churn arrivals need an arrival_class")

    @property
    def enabled(self) -> bool:
        return bool(self.vm_arrivals_per_h or self.vm_departures_per_h
                    or self.maintenance)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    description: str
    hosts: tuple[HostClass, ...]
    vms: tuple[VMClass, ...]
    horizon_hours: int = 168
    arrivals: ArrivalShape = field(default_factory=ArrivalShape)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    #: Full-activity request rate of interactive VMs (the event
    #: simulator's traffic knob; shaped per hour by ``arrivals``).
    request_peak_rate_per_s: float = 0.01
    #: Optional chaos plan (DESIGN.md §14): compiled runs get a
    #: :class:`~repro.faults.FaultInjector` keyed by the run seed, so
    #: fault matrices shard through ``SweepRunner`` byte-identically.
    #: ``None`` (and any all-zero plan) leaves runs bit-identical to
    #: fault-free ones.
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if not self.hosts or not self.vms:
            raise ValueError(f"scenario {self.name!r} needs host and VM classes")
        if self.horizon_hours < 1:
            raise ValueError("horizon_hours must be >= 1")
        if len({c.name for c in self.vms}) != len(self.vms):
            raise ValueError(f"scenario {self.name!r} has duplicate VM classes")
        if len({c.name for c in self.hosts}) != len(self.hosts):
            raise ValueError(f"scenario {self.name!r} has duplicate host classes")
        churn = self.churn
        if churn.arrival_class and all(
                c.name != churn.arrival_class for c in self.vms):
            raise ValueError(
                f"churn arrival_class {churn.arrival_class!r} is not a "
                f"VM class of scenario {self.name!r}")
        n_hosts = self.n_hosts
        by_host: dict[int, list[MaintenanceWindow]] = {}
        for w in churn.maintenance:
            if w.host_index >= n_hosts:
                raise ValueError(
                    f"maintenance window host_index {w.host_index} out of "
                    f"range for {n_hosts} hosts")
            by_host.setdefault(w.host_index, []).append(w)
        # Overlapping windows on one host would let the first to end
        # cancel maintenance for the rest (the injector tracks hosts,
        # not windows) — a spec error, rejected up front.
        for idx, windows in by_host.items():
            windows.sort(key=lambda w: w.start_hour)
            for prev, nxt in zip(windows, windows[1:]):
                if nxt.start_hour < prev.start_hour + prev.duration_h:
                    raise ValueError(
                        f"overlapping maintenance windows on host "
                        f"{idx}: [{prev.start_hour}, "
                        f"{prev.start_hour + prev.duration_h}) and "
                        f"[{nxt.start_hour}, "
                        f"{nxt.start_hour + nxt.duration_h})")

    @property
    def n_hosts(self) -> int:
        return sum(c.count for c in self.hosts)

    @property
    def n_vms(self) -> int:
        return sum(c.count for c in self.vms)

    def vm_class(self, name: str) -> VMClass:
        for c in self.vms:
            if c.name == name:
                return c
        raise KeyError(f"scenario {self.name!r} has no VM class {name!r}")

    def scaled(self, factor: float) -> "ScenarioSpec":
        """Scale every class count by ``factor`` (floor 1 per class).

        Maintenance windows survive scaling: host indices are clamped
        into the scaled fleet, and a window whose clamped host already
        has an overlapping window is dropped (two hosts' disjoint
        windows can collide when clamped onto one host — a smaller
        fleet simply sees less maintenance, not a validation error).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        hosts = tuple(replace(c, count=max(1, round(c.count * factor)))
                      for c in self.hosts)
        vms = tuple(replace(c, count=max(1, round(c.count * factor)))
                    for c in self.vms)
        n_hosts = sum(c.count for c in hosts)
        kept: list[MaintenanceWindow] = []
        spans: dict[int, list[tuple[int, int]]] = {}
        for w in sorted(self.churn.maintenance,
                        key=lambda w: (w.start_hour, w.host_index)):
            idx = min(w.host_index, n_hosts - 1)
            span = (w.start_hour, w.start_hour + w.duration_h)
            if any(span[0] < hi and lo < span[1]
                   for lo, hi in spans.get(idx, ())):
                continue
            spans.setdefault(idx, []).append(span)
            kept.append(replace(w, host_index=idx))
        return replace(self, hosts=hosts, vms=vms,
                       churn=replace(self.churn, maintenance=tuple(kept)))

    # ------------------------------------------------------------------
    # serialization (the wire form of a scenario)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form: nested dicts and lists only, ready for any
        JSON-shaped transport."""
        return _to_jsonable(self)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to JSON.  Floats are emitted in shortest
        round-trip form (``json`` uses ``repr``), so
        :meth:`from_json` rebuilds a spec that compares equal —
        including every float bit — to the original."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Construction re-runs every ``__post_init__`` validation, so a
        hand-edited document that describes an invalid scenario fails
        here, not at compile time.
        """
        return _from_dict(cls, data, converters={
            "hosts": lambda hs: tuple(
                _from_dict(HostClass, h) for h in hs),
            "vms": lambda vs: tuple(
                _from_dict(VMClass, v, converters={
                    "trace": lambda t: _from_dict(TraceSpec, t)})
                for v in vs),
            "arrivals": lambda a: _from_dict(ArrivalShape, a),
            "churn": lambda c: _from_dict(ChurnSpec, c, converters={
                "maintenance": lambda ws: tuple(
                    _from_dict(MaintenanceWindow, w) for w in ws)}),
            "faults": lambda f: (None if f is None
                                 else _fault_plan_from_dict(f)),
        })

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
