"""``repro.obs`` — observability: metrics, tracing, profiling, logging
(DESIGN.md §17).

The contract is *provably inert when off, bit-identical when on*:

* off (the default) installs zero hooks — engines carry one ``_obs``
  attribute that stays ``None`` and no observer is registered;
* on, every clock read happens outside simulated state, so a run with
  full telemetry produces a ``RunResult`` equal to the bare run on all
  three backends (``tests/test_obs.py`` proves it per backend).

Entry points::

    from repro.api import Simulation
    from repro.obs import TelemetryConfig

    result = Simulation(dc, "drowsy", "event", seed=7,
                        telemetry=TelemetryConfig(
                            metrics=True,
                            trace="run.trace.json")).run(72)
    print(result.telemetry.render())   # per-hour series + run totals
    # run.trace.json opens in Perfetto / chrome://tracing
"""

from .config import (
    TelemetryConfig,
    set_default_telemetry,
    take_default_telemetry,
)
from .log import configure, get_logger, log_context, set_context
from .metrics import MetricsRecorder, Telemetry
from .progress import ProgressObserver
from .runtime import ShardTelemetry, TelemetryRuntime
from .trace import SpanRecorder, write_trace

__all__ = [
    "TelemetryConfig",
    "set_default_telemetry",
    "take_default_telemetry",
    "MetricsRecorder",
    "Telemetry",
    "SpanRecorder",
    "write_trace",
    "TelemetryRuntime",
    "ShardTelemetry",
    "ProgressObserver",
    "configure",
    "get_logger",
    "log_context",
    "set_context",
]
