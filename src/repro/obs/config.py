"""Telemetry configuration (DESIGN.md §17).

:class:`TelemetryConfig` is the one switchboard for the observability
layer: metrics sampling, span tracing, profiling and live progress.
The default config is fully off and installs *nothing* — a
``Simulation`` built without telemetry carries no observer, no engine
hook and no clock read (the bench floor in
``benchmarks/test_bench_obs.py`` enforces it).

Like checkpoint policies, a process default can be staged for code
paths that build their simulations internally (the CLI)::

    set_default_telemetry(TelemetryConfig(trace="run.trace.json"))
    ...  # every Simulation built next picks it up (and uniquifies
    ...  # output paths so two runs in one command don't collide)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

_PROFILERS = ("cprofile",)


@dataclass(frozen=True)
class TelemetryConfig:
    """What to observe during a run.

    Parameters
    ----------
    metrics:
        Sample engine counters at every hour boundary into a frozen
        :class:`~repro.obs.Telemetry` on ``result.telemetry``.
    trace:
        Path for a Chrome trace-event JSON file (hour/phase spans,
        cross-process for the sharded backend); ``None`` disables
        tracing.  Open the file in Perfetto (ui.perfetto.dev) or
        ``chrome://tracing``.
    profile:
        ``"cprofile"`` wraps the run in :mod:`cProfile` and dumps
        binary pstats to :attr:`profile_out` atomically; ``None``
        disables profiling.
    profile_out:
        Destination for the pstats dump (``profile="cprofile"``).
    progress:
        Attach a :class:`~repro.obs.ProgressObserver` (one rewritten
        stderr line; auto-disabled when stderr is not a TTY).

    Telemetry never changes results: a run with any combination of
    these enabled produces a ``RunResult`` equal to the same run with
    telemetry off (the bit-parity grid in ``tests/test_obs.py``).
    """

    metrics: bool = False
    trace: str | None = None
    profile: str | None = None
    profile_out: str = "repro-profile.pstats"
    progress: bool = False

    def __post_init__(self) -> None:
        if self.profile is not None and self.profile not in _PROFILERS:
            raise ValueError(
                f"profile={self.profile!r}: expected one of "
                f"{_PROFILERS} (or None)")

    @property
    def enabled(self) -> bool:
        """True if any telemetry facility is on (otherwise the façade
        installs nothing at all)."""
        return bool(self.metrics or self.trace or self.profile
                    or self.progress)


# ----------------------------------------------------------------------
# process-default config (the CLI path), mirroring
# repro.resilience.checkpoint.set_default_policy
# ----------------------------------------------------------------------
_default_config: TelemetryConfig | None = None
_default_takes = 0


def set_default_telemetry(config: TelemetryConfig | None) -> None:
    """Stage ``config`` as the process-default telemetry for
    simulations built without an explicit ``telemetry=``.  Pass
    ``None`` to clear.  Spawn workers import fresh interpreters and
    never inherit the default (same caveat as checkpoint policies)."""
    global _default_config, _default_takes
    _default_config = config
    _default_takes = 0


def _uniquify(path: str, n: int) -> str:
    """``run.trace.json`` -> ``run-2.trace.json`` for the n-th taker."""
    if n <= 1:
        return path
    p = Path(path)
    suffixes = "".join(p.suffixes)
    stem = p.name[:len(p.name) - len(suffixes)] if suffixes else p.name
    return str(p.with_name(f"{stem}-{n}{suffixes}"))


def take_default_telemetry() -> TelemetryConfig | None:
    """Claim the staged default (or ``None``).  Unlike checkpoint
    policies the default stays staged — every simulation in the
    command observes — but file outputs (trace, pstats) are uniquified
    per taker so runs don't overwrite each other."""
    global _default_takes
    cfg = _default_config
    if cfg is None:
        return None
    _default_takes += 1
    n = _default_takes
    if n > 1 and (cfg.trace or cfg.profile):
        cfg = replace(
            cfg,
            trace=_uniquify(cfg.trace, n) if cfg.trace else None,
            profile_out=(_uniquify(cfg.profile_out, n)
                         if cfg.profile else cfg.profile_out))
    return cfg
