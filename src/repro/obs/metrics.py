"""Deterministic metrics: recorder + frozen result (DESIGN.md §17).

:class:`MetricsRecorder` is a plain-dict registry — counters, gauges
and histogram samples, no third-party deps, ``__slots__`` so a hot
path that *does* hold one pays for nothing it doesn't use.  Engines
are never instrumented inline: the telemetry runtime *pulls* each
engine's existing cumulative counters once per hour boundary
(``engine.telemetry_sample()``), so the metrics-off path has literally
zero instructions added and the metrics-on path costs one dict per
hour.

All values are either simulated-state counters (deterministic: equal
for equal runs) or wall-clock measurements whose keys end in
``_wall_s`` — wall time may appear *in* telemetry but never flows back
into simulated state, which is what keeps obs-on runs bit-identical
to obs-off runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class MetricsRecorder:
    """Counters / gauges / histograms plus an hour-indexed series log.

    ``sample_hour(t, sample)`` appends one row of named values for
    hour ``t``; keys joining mid-run are backfilled with zeros so
    every series has one value per sampled hour.
    """

    __slots__ = ("counters", "gauges", "histograms", "hours", "series")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, list] = {}
        self.hours: list[int] = []
        self.series: dict[str, list] = {}

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Append one sample to histogram ``name``."""
        self.histograms.setdefault(name, []).append(value)

    def sample_hour(self, t: int, sample: dict) -> None:
        """Record one hour-boundary row of named values."""
        n_prior = len(self.hours)
        self.hours.append(t)
        for name, value in sample.items():
            col = self.series.get(name)
            if col is None:
                col = self.series[name] = [0] * n_prior
            col.append(value)
        for name, col in self.series.items():
            if len(col) <= n_prior:  # key absent this hour
                col.append(col[-1] if col else 0)


@dataclass(frozen=True)
class Telemetry:
    """Frozen metrics summary attached to ``RunResult.telemetry``.

    ``series`` maps metric name -> one value per entry of ``hours``
    (cumulative engine counters sampled at each hour boundary);
    ``totals`` are end-of-run values (final samples, checkpoint and
    exchange totals, histogram summaries).  The field is excluded from
    ``RunResult`` equality, so telemetry-on results still compare
    equal to telemetry-off ones.
    """

    backend: str
    hours: tuple[int, ...]
    series: dict[str, tuple]
    totals: dict[str, object]
    histograms: dict[str, tuple] = field(default_factory=dict)
    trace_path: str | None = None
    profile_path: str | None = None
    spans: int = 0

    def render(self) -> str:
        """One aligned ``name  value`` line per run total."""
        lines = [f"telemetry ({self.backend}, {len(self.hours)} hours"
                 f"{', ' + str(self.spans) + ' spans' if self.spans else ''})"]
        width = max((len(k) for k in self.totals), default=0)
        for name in sorted(self.totals):
            value = self.totals[name]
            shown = f"{value:.4f}" if isinstance(value, float) else value
            lines.append(f"  {name:<{width}}  {shown}")
        return "\n".join(lines)
