"""The telemetry runtime: one observer that owns metrics + tracing.

Wiring (DESIGN.md §17): ``Simulation(..., telemetry=TelemetryConfig(...))``
appends a :class:`TelemetryRuntime` to the observers (before the
checkpointer, so snapshots carry the hour's samples).  On
``on_run_start`` it installs itself as ``engine._obs`` — the *only*
coupling engines have to this package is an ``_obs`` attribute that
defaults to ``None`` and a handful of ``if obs is not None`` guards,
so the off path adds no hooks and (measurably, see
``benchmarks/test_bench_obs.py``) no cost.

* **Metrics** are pulled, never pushed: at each hour boundary the
  runtime calls ``engine.telemetry_sample()`` (a dict of the engine's
  *existing* cumulative counters) and logs it as one series row.
* **Tracing** marks hour spans at the same boundary and exposes
  ``phase_begin``/``phase_end`` for the engines' coarse phases.
* **Sharded runs** get a :class:`ShardTelemetry` per worker (flags
  travel in the shard setup dicts); its spans and final counter
  sample ride home on the existing ``("done", outcome)`` message and
  the coordinator-side runtime merges them into one timeline.

Everything here pickles (checkpoints snapshot the observers tuple):
recorders re-base their clock after restore, the profiler itself is
never stored on the runtime.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..api.observers import Observer
from .config import TelemetryConfig
from .metrics import MetricsRecorder, Telemetry
from .trace import DRIVER_PID, SpanRecorder, write_trace


class _EngineObs:
    """The span surface engines call (shared by the in-process runtime
    and the worker-side shard endpoint).  Every method is a cheap no-op
    when tracing is off — and engines only call them at hour
    granularity behind an ``_obs is not None`` guard anyway."""

    rec: SpanRecorder | None = None

    def hour_mark(self, t: int) -> None:
        if self.rec is not None:
            self.rec.hour_mark(t)

    def phase_begin(self, name: str) -> None:
        if self.rec is not None:
            self.rec.begin(name)

    def phase_end(self) -> None:
        if self.rec is not None:
            self.rec.end()

    def instant(self, name: str) -> None:
        if self.rec is not None:
            self.rec.instant(name)


class TelemetryRuntime(_EngineObs, Observer):
    """Observer driving metrics/tracing/profiling for one simulation."""

    #: Ignores ``now`` entirely — reads its own clocks, feeds nothing
    #: back into simulated state.
    wants_sim_time = True

    def __init__(self, config: TelemetryConfig) -> None:
        self.config = config
        self.metrics = MetricsRecorder() if config.metrics else None
        self.rec = (SpanRecorder(pid=DRIVER_PID, label="driver")
                    if config.trace else None)
        self._sim = None
        self.profile_path: str | None = None

    @property
    def tracing(self) -> bool:
        return self.rec is not None

    # -- observer lifecycle -------------------------------------------
    def on_run_start(self, sim, start_hour: int, n_hours: int) -> None:
        self._sim = sim
        engine = sim.engine
        if hasattr(engine, "_obs"):
            engine._obs = self
        if self.rec is not None:
            self.rec.start()

    # Hour spans are marked by the *engine* (uniform with the
    # worker-side ShardTelemetry endpoint); this hook only samples.
    def on_hour(self, t: int, now: float) -> None:
        if self.metrics is not None:
            self.metrics.sample_hour(t, self._sample())

    def on_run_end(self, result) -> None:
        result.telemetry = self._finalize(result)

    # -- sampling ------------------------------------------------------
    def _sample(self) -> dict:
        engine = self._sim.engine
        sample = (engine.telemetry_sample()
                  if hasattr(engine, "telemetry_sample") else {})
        ck = self._sim.checkpointer
        if ck is not None:
            sample["checkpoint_writes"] = ck.written
            sample["checkpoint_bytes"] = ck.bytes_written
            sample["checkpoint_wall_s"] = ck.write_wall_s
        return sample

    def _finalize(self, result) -> Telemetry:
        engine = self._sim.engine
        if self.rec is not None:
            self.rec.close()
        events = list(self.rec.events) if self.rec is not None else []
        if hasattr(engine, "collect_shard_spans"):
            events.extend(engine.collect_shard_spans())
        n_spans = sum(1 for e in events if e.get("ph") == "X")
        if self.config.trace:
            write_trace(self.config.trace, events)

        totals: dict[str, object] = {}
        histograms: dict[str, tuple] = {}
        metrics = self.metrics
        if metrics is not None:
            final = self._sample()
            if hasattr(engine, "collect_shard_telemetry"):
                for name, value in engine.collect_shard_telemetry().items():
                    final[f"shards.{name}"] = value
            totals.update(final)
            totals.update(metrics.counters)
            totals.update(metrics.gauges)
            histograms = {name: tuple(vals)
                          for name, vals in metrics.histograms.items()}
        return Telemetry(
            backend=result.backend,
            hours=tuple(metrics.hours) if metrics is not None else (),
            series=({name: tuple(col)
                     for name, col in metrics.series.items()}
                    if metrics is not None else {}),
            totals=totals,
            histograms=histograms,
            trace_path=self.config.trace,
            # The pstats dump lands when ``profiled()`` unwinds —
            # after this finalize but before run() returns.
            profile_path=(self.config.profile_out
                          if self.config.profile else None),
            spans=n_spans,
        )

    # -- profiling -----------------------------------------------------
    @contextmanager
    def profiled(self):
        """Wrap a run in cProfile when configured (else a no-op).  The
        profiler lives only on this frame — never on the runtime — so
        mid-run checkpoints still pickle the observer graph."""
        if self.config.profile != "cprofile":
            yield
            return
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
        try:
            yield
        finally:
            prof.disable()
            prof.create_stats()
            self._dump_pstats(prof)

    def _dump_pstats(self, prof) -> None:
        from ..resilience.io import atomic_target

        out = self.config.profile_out
        with atomic_target(out) as tmp:
            prof.dump_stats(tmp)
        self.profile_path = out


class ShardTelemetry(_EngineObs):
    """Worker-side telemetry endpoint for one shard.

    Built by ``run_shard`` from the ``obs_trace``/``obs_metrics`` keys
    of the shard setup and installed as the shard engine's ``_obs``.
    Pickles with the shard state blob (supervised respawns, resumes),
    re-basing its clock in the new process.
    """

    __slots__ = ("index", "rec", "metrics")

    def __init__(self, index: int, trace: bool = False,
                 metrics: bool = False) -> None:
        self.index = index
        self.rec = (SpanRecorder(pid=index + 1, tid=0,
                                 label=f"shard {index}")
                    if trace else None)
        if self.rec is not None:
            self.rec.start()
        self.metrics = metrics

    def outcome_extras(self, engine) -> dict:
        """Telemetry payload for the shard's ``("done", outcome)``."""
        extras: dict = {}
        if self.rec is not None:
            self.rec.close()
            extras["spans"] = self.rec.events
        if self.metrics and hasattr(engine, "telemetry_sample"):
            extras["telemetry"] = engine.telemetry_sample()
        return extras

    def __getstate__(self) -> dict:
        return {"index": self.index, "rec": self.rec,
                "metrics": self.metrics}

    def __setstate__(self, state: dict) -> None:
        self.index = state["index"]
        self.rec = state["rec"]
        self.metrics = state["metrics"]
