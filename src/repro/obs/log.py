"""Structured logging for the package: ``repro.*`` namespaced loggers.

Pure stdlib :mod:`logging`.  The ``repro`` root logger carries a
:class:`logging.NullHandler` so importing the package never prints —
consumers opt in:

* library/experiment code calls :func:`get_logger` and logs normally;
* the CLI's ``-v/--verbose`` and ``--quiet`` call :func:`configure`
  to attach one stderr handler whose formatter appends the active
  run/shard context (set via :func:`log_context` — e.g. shard workers
  tag every record with ``shard=K``);
* experiment ``__main__`` blocks route their rendered tables through
  :func:`console` (a bare-message stdout handler at INFO), replacing
  the bare ``print``\\ s they used to carry — same output text, but now
  filterable and redirectable like every other record.
"""

from __future__ import annotations

import contextvars
import logging
import sys
from contextlib import contextmanager

ROOT = "repro"

logging.getLogger(ROOT).addHandler(logging.NullHandler())

#: Ambient key=value pairs appended to every formatted record
#: (run/shard context; survives across threads via contextvars).
_context: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_log_context", default=())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("sim")``
    -> ``repro.sim``; already-qualified names pass through)."""
    if not name:
        return logging.getLogger(ROOT)
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def set_context(**pairs) -> None:
    """Append ``key=value`` pairs to the ambient log context (shard
    workers call this once at startup)."""
    _context.set(_context.get() + tuple(pairs.items()))


@contextmanager
def log_context(**pairs):
    """Scoped variant of :func:`set_context`."""
    token = _context.set(_context.get() + tuple(pairs.items()))
    try:
        yield
    finally:
        _context.reset(token)


class ContextFormatter(logging.Formatter):
    """Formatter exposing the ambient context as ``%(context)s``."""

    def format(self, record: logging.LogRecord) -> str:
        pairs = _context.get()
        record.context = (
            " [" + " ".join(f"{k}={v}" for k, v in pairs) + "]"
            if pairs else "")
        return super().format(record)


_CLI_FORMAT = "%(levelname)s %(name)s%(context)s: %(message)s"


def configure(verbose: int = 0, quiet: bool = False,
              stream=None) -> logging.Handler:
    """Attach (or replace) the one console handler on the ``repro``
    root: ``--quiet`` -> ERROR, default -> WARNING, ``-v`` -> INFO,
    ``-vv`` -> DEBUG."""
    level = (logging.ERROR if quiet
             else [logging.WARNING, logging.INFO,
                   logging.DEBUG][min(verbose, 2)])
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_console", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler._repro_console = True
    handler.setFormatter(ContextFormatter(_CLI_FORMAT))
    root.addHandler(handler)
    root.setLevel(level)
    return handler


_console_ready = False


def console(*lines) -> None:
    """Emit ``lines`` on stdout through the logging tree (INFO, bare
    text — byte-for-byte what ``print`` produced).  The sink for
    experiment entrypoints."""
    global _console_ready
    log = logging.getLogger(f"{ROOT}.experiments.console")
    if not _console_ready:
        handler = logging.StreamHandler(sys.stdout)
        handler.setFormatter(logging.Formatter("%(message)s"))
        log.addHandler(handler)
        log.setLevel(logging.INFO)
        log.propagate = False  # stdout only, never the CLI handler
        _console_ready = True
    for line in lines:
        log.info("%s", line)
