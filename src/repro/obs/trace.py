"""Span tracing: hour/phase spans as Chrome trace-event JSON.

:class:`SpanRecorder` collects complete (``"ph": "X"``) spans on a
process-local :func:`time.perf_counter` timebase; :func:`write_trace`
assembles recorders' events (coordinator + shipped shard spans) into
one ``{"traceEvents": [...]}`` document and writes it atomically.
Open the file at https://ui.perfetto.dev or ``chrome://tracing``.

Shard workers may be threads inside one OS process (``workers=0``), so
the ``pid`` tag is *synthetic and deterministic*: 0 is the
coordinator/driver, shard ``k`` is ``k + 1``.  Each recorder emits a
``process_name`` metadata event so the viewer labels its lane.

Wall clocks here never touch simulated state: spans measure the
*runner*, results stay bit-identical with tracing on (DESIGN.md §17).
"""

from __future__ import annotations

import json
import time

from ..resilience.io import atomic_target

#: Synthetic pid of the driving process (coordinator for sharded runs).
DRIVER_PID = 0


class SpanRecorder:
    """Per-process span collector on a lazy ``perf_counter`` timebase.

    * ``hour_mark(t)`` — call where the hour hooks fire: closes the
      open hour span, labels it ``t``, and opens the next one.  Hour
      spans therefore tile the run with no gaps or overlaps.
    * ``begin(name)`` / ``end()`` — nested phase spans inside the
      current hour (consolidation, exchange, request generation).
    * ``instant(name)`` — zero-duration marker (checkpoint writes,
      worker respawns).

    The timebase (``_t0``) is process-local and reset by pickling, so
    a recorder checkpointed mid-run resumes with timestamps restarting
    near zero — the trace stays valid, only the resumed spans re-base.
    """

    __slots__ = ("pid", "tid", "label", "events", "_t0", "_stack",
                 "_open_ts")

    def __init__(self, pid: int = DRIVER_PID, tid: int = 0,
                 label: str = "driver") -> None:
        self.pid = pid
        self.tid = tid
        self.label = label
        self.events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        }]
        self._t0: float | None = None
        self._stack: list[tuple[str, float]] = []
        self._open_ts: float | None = None

    # -- timebase ------------------------------------------------------
    def _now_us(self) -> float:
        if self._t0 is None:
            self._t0 = time.perf_counter()
        return (time.perf_counter() - self._t0) * 1e6

    def start(self) -> None:
        """Pin the timebase at run start (the first hour span then
        covers the whole first hour, not just its tail)."""
        self._now_us()
        self._open_ts = 0.0

    # -- spans ---------------------------------------------------------
    def hour_mark(self, t: int) -> None:
        """Hour ``t`` just completed: close its span, open the next."""
        now = self._now_us()
        start = self._open_ts if self._open_ts is not None else now
        self.events.append({
            "name": "hour", "cat": "hour", "ph": "X",
            "ts": start, "dur": now - start,
            "pid": self.pid, "tid": self.tid, "args": {"t": t},
        })
        self._open_ts = now

    def begin(self, name: str) -> None:
        self._stack.append((name, self._now_us()))

    def end(self) -> None:
        name, start = self._stack.pop()
        now = self._now_us()
        self.events.append({
            "name": name, "cat": "phase", "ph": "X",
            "ts": start, "dur": now - start,
            "pid": self.pid, "tid": self.tid,
        })

    def instant(self, name: str) -> None:
        self.events.append({
            "name": name, "cat": "mark", "ph": "i", "s": "t",
            "ts": self._now_us(), "pid": self.pid, "tid": self.tid,
        })

    def close(self) -> None:
        """Close any open phase/hour spans (run end / outcome ship)."""
        while self._stack:
            self.end()
        self._open_ts = None

    # -- pickling (checkpoints, shard state blobs) ---------------------
    def __getstate__(self) -> dict:
        return {"pid": self.pid, "tid": self.tid, "label": self.label,
                "events": self.events, "stack_names":
                    [name for name, _ in self._stack]}

    def __setstate__(self, state: dict) -> None:
        self.pid = state["pid"]
        self.tid = state["tid"]
        self.label = state["label"]
        self.events = state["events"]
        # perf_counter offsets don't survive a process boundary: drop
        # open spans' starts, re-base lazily at first use.
        self._t0 = None
        self._stack = [(name, 0.0) for name in state["stack_names"]]
        self._open_ts = None


def write_trace(path: str, events: list[dict]) -> None:
    """Atomically write ``events`` as a Chrome trace-event JSON file."""
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    with atomic_target(path) as tmp:
        tmp.write_text(json.dumps(doc))
