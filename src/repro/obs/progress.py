"""Live progress: one rewritten stderr line per simulated hour.

Opt-in (``TelemetryConfig(progress=True)``, ``--progress``, or passing
the observer directly) and auto-disabled when the stream is not a TTY,
so batch logs and CI output never fill with carriage returns.  The
observer only *reads*: the wall clock it shows (rate, ETA) is the
``now`` handed to ``on_hour`` at the boundary and nothing flows back
into simulated state — progress-on runs stay bit-identical.
"""

from __future__ import annotations

import sys
import time

from ..api.observers import Observer


class ProgressObserver(Observer):
    """``hour 42/168  431k ev/s  ETA 0:12`` on one stderr line."""

    def __init__(self, stream=None, min_interval_s: float = 0.1) -> None:
        self._stream = stream
        self._min_interval_s = min_interval_s
        self._enabled = False
        self._sim = None
        self._n = 0
        self._start_hour = 0
        self._t0 = 0.0
        self._last_write = 0.0
        self._width = 0

    # The default stream is looked up per call (and dropped from
    # pickles) so checkpointed runs restore cleanly in new processes.
    def _out(self):
        return self._stream if self._stream is not None else sys.stderr

    def _events_processed(self) -> int | None:
        engine = self._sim.engine if self._sim is not None else None
        return getattr(getattr(engine, "sim", None),
                       "events_processed", None)

    def on_run_start(self, sim, start_hour: int, n_hours: int) -> None:
        self._sim = sim
        self._n = n_hours
        self._start_hour = start_hour
        self._t0 = time.time()
        self._last_write = 0.0
        out = self._out()
        self._enabled = bool(getattr(out, "isatty", lambda: False)())

    def on_hour(self, t: int, now: float) -> None:
        if not self._enabled:
            return
        done = t - self._start_hour + 1
        last = done >= self._n
        if now - self._last_write < self._min_interval_s and not last:
            return
        self._last_write = now
        elapsed = max(now - self._t0, 1e-9)
        parts = [f"hour {done}/{self._n}"]
        events = self._events_processed()
        if events:
            rate = events / elapsed
            parts.append(f"{rate / 1000:.0f}k ev/s" if rate >= 1000
                         else f"{rate:.0f} ev/s")
        remaining = (self._n - done) * elapsed / done
        parts.append(f"ETA {int(remaining // 60)}:{int(remaining % 60):02d}")
        self._write("  ".join(parts))

    def on_run_end(self, result) -> None:
        if self._enabled:
            self._write("")
            out = self._out()
            out.write("\r")
            out.flush()
            self._enabled = False

    def _write(self, line: str) -> None:
        out = self._out()
        pad = max(self._width - len(line), 0)
        out.write("\r" + line + " " * pad)
        out.flush()
        self._width = len(line)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_stream"] = None  # streams don't pickle; re-resolve
        return state


def progress_line(done: int, total: int, t0: float,
                  stream=None, label: str = "cells") -> None:
    """Sweep-runner helper: rewrite one ``label done/total  ETA`` line
    (no-op when the stream is not a TTY)."""
    out = stream if stream is not None else sys.stderr
    if not getattr(out, "isatty", lambda: False)():
        return
    elapsed = max(time.time() - t0, 1e-9)
    line = f"{label} {done}/{total}"
    if done:
        remaining = (total - done) * elapsed / done
        line += f"  ETA {int(remaining // 60)}:{int(remaining % 60):02d}"
    out.write("\r" + line + " " * 12)
    if done >= total:
        out.write("\n")
    out.flush()
