"""Declarative fault plans (DESIGN.md §14).

A :class:`FaultPlan` is a pure, frozen description of the faults a chaos
run injects: host crash/recover processes, WoL packet loss and delay
distributions, suspend/resume transition faults, waking-module primary
kills and SDN<->waking-module partition windows.  Like
:class:`~repro.scenarios.spec.ScenarioSpec`, a plan carries no RNG
state and no simulator references — every random draw is derived by the
:class:`~repro.faults.injector.FaultInjector` from stable blake2b
digests of ``(seed, plan name, concern, entity name)``, so the injected
fault sequence is a pure function of ``(plan, seed)``: identical across
runs, across :class:`~repro.sim.sweep.SweepRunner` spawn workers and
across fleet iteration orders.

The zero plan is the parity oracle: a plan whose every probability and
rate is zero (``plan.is_zero``) installs **no** hooks, so its runs are
bit-identical to runs with no plan at all (asserted by
``tests/test_faults.py``).

This module is deliberately dependency-free (stdlib only): it is
imported by ``repro.scenarios.spec`` for the ``faults=`` field, which
sits below the api/compiler layers in the import graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class WolFaults:
    """Wake-on-LAN transport faults (the lossy rack network)."""

    #: Probability an emitted WoL packet is dropped on the wire.  The
    #: resilient channel (:class:`~repro.network.sdn.ReliableWolChannel`)
    #: retries dropped wakes with exponential backoff.
    loss_probability: float = 0.0
    #: Probability a (non-dropped) WoL packet is delayed in flight.
    delay_probability: float = 0.0
    #: Mean of the exponential in-flight delay for delayed packets.
    mean_delay_s: float = 0.5

    def __post_init__(self) -> None:
        _check_probability("loss_probability", self.loss_probability)
        _check_probability("delay_probability", self.delay_probability)
        if self.mean_delay_s <= 0.0:
            raise ValueError("mean_delay_s must be positive")

    @property
    def is_zero(self) -> bool:
        return self.loss_probability == 0.0 and self.delay_probability == 0.0


@dataclass(frozen=True)
class HostCrashFaults:
    """Abrupt host crashes: a per-host Poisson process over the run.

    A crashed host keeps its VMs resident (their memory is lost but the
    placement record stands — shared storage brings them back on
    recovery); requests targeting them queue on the SDN switch until the
    host recovers, when the redispatch pass drains them.
    """

    #: Poisson crash rate per host per simulated hour.
    rate_per_host_per_h: float = 0.0
    #: Seconds a crashed host stays down before it reboots into S0.
    recover_after_s: float = 1800.0
    #: Cap on crashes over one run (earliest-first), bounding chaos.
    max_crashes: int = 8

    def __post_init__(self) -> None:
        if self.rate_per_host_per_h < 0.0:
            raise ValueError("rate_per_host_per_h must be >= 0")
        if self.recover_after_s <= 0.0:
            raise ValueError("recover_after_s must be positive")
        if self.max_crashes < 0:
            raise ValueError("max_crashes must be >= 0")

    @property
    def is_zero(self) -> bool:
        return self.rate_per_host_per_h == 0.0 or self.max_crashes == 0


@dataclass(frozen=True)
class TransitionFaults:
    """Suspend/resume transition faults (the flaky ACPI firmware)."""

    #: Probability a suspend transition hangs (takes extra time).
    suspend_hang_probability: float = 0.0
    #: Extra S0->S3 latency charged to a hung suspend.
    suspend_hang_extra_s: float = 30.0
    #: Probability a resume fails outright.  The host is declared
    #: crashed and its VMs fail over to live hosts by migration (the
    #: consolidation manager's evacuation path).
    resume_failure_probability: float = 0.0
    #: Seconds a resume-failed host stays down before rebooting.
    recover_after_s: float = 900.0

    def __post_init__(self) -> None:
        _check_probability("suspend_hang_probability",
                           self.suspend_hang_probability)
        _check_probability("resume_failure_probability",
                           self.resume_failure_probability)
        if self.suspend_hang_extra_s < 0.0:
            raise ValueError("suspend_hang_extra_s must be >= 0")
        if self.recover_after_s <= 0.0:
            raise ValueError("recover_after_s must be positive")

    @property
    def is_zero(self) -> bool:
        return (self.suspend_hang_probability == 0.0
                and self.resume_failure_probability == 0.0)


@dataclass(frozen=True)
class PartitionWindow:
    """One SDN<->waking-module network partition (hours, run-relative)."""

    start_h: float
    duration_h: float

    def __post_init__(self) -> None:
        if self.start_h < 0.0 or self.duration_h <= 0.0:
            raise ValueError(
                "partition window needs start_h >= 0, duration_h > 0")


@dataclass(frozen=True)
class WakingServiceFaults:
    """Faults against the rack waking service (paper section V)."""

    #: Kill the primary waking module at this run-relative hour (the
    #: heartbeat mirror must take over); ``None`` = never.
    kill_primary_at_h: float | None = None
    #: Windows during which the SDN switch cannot reach the waking
    #: service (packet analysis unavailable; the switch-port WoL
    #: fallback still wakes hosts for queued requests).
    partitions: tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.kill_primary_at_h is not None and self.kill_primary_at_h < 0:
            raise ValueError("kill_primary_at_h must be >= 0")
        spans = sorted((w.start_h, w.start_h + w.duration_h)
                       for w in self.partitions)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            if b0 < a1:
                raise ValueError(
                    f"overlapping partition windows [{a0}, {a1}) and "
                    f"[{b0}, {b1})")

    @property
    def is_zero(self) -> bool:
        return self.kill_primary_at_h is None and not self.partitions


@dataclass(frozen=True)
class FaultSummary:
    """Degradation accounting for one chaos run (``RunResult.fault_summary``).

    Produced by :meth:`~repro.faults.injector.FaultInjector.finalize`;
    every field is zero on a run whose plan injected nothing.
    """

    plan: str = ""
    host_crashes: int = 0
    host_recoveries: int = 0
    wol_dropped: int = 0
    wol_delayed: int = 0
    wol_retries: int = 0
    wol_abandoned: int = 0
    backoff_wait_s: float = 0.0
    suspend_hangs: int = 0
    resume_failures: int = 0
    failover_migrations: int = 0
    stranded_vms: int = 0
    failovers: int = 0
    primary_kills: int = 0
    partitions: int = 0
    window_journaled_calls: int = 0
    lost_service_calls: int = 0
    stranded_requests: int = 0
    recovered_requests: int = 0
    migrations_blocked: int = 0
    unavailability_s: float = 0.0

    @property
    def faults_injected(self) -> int:
        """Total primitive faults the plan actually landed."""
        return (self.host_crashes + self.wol_dropped + self.wol_delayed
                + self.suspend_hangs + self.resume_failures
                + self.primary_kills + self.partitions)


@dataclass(frozen=True)
class FaultPlan:
    """A complete declarative chaos plan."""

    name: str = "chaos"
    wol: WolFaults = field(default_factory=WolFaults)
    crashes: HostCrashFaults = field(default_factory=HostCrashFaults)
    transitions: TransitionFaults = field(default_factory=TransitionFaults)
    waking: WakingServiceFaults = field(default_factory=WakingServiceFaults)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault plan needs a name")

    @property
    def is_zero(self) -> bool:
        """True iff the plan can inject nothing — the parity oracle.

        A zero plan installs no hooks and schedules no events, so its
        runs are bit-identical to fault-free runs (``tests/
        test_faults.py`` asserts this on both backends).
        """
        return (self.wol.is_zero and self.crashes.is_zero
                and self.transitions.is_zero and self.waking.is_zero)
