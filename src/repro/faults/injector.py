"""Seed-deterministic fault injection over the `repro.api` façade.

:class:`FaultInjector` turns a frozen :class:`~repro.faults.spec.
FaultPlan` into concrete fault events against a running simulation.  It
is an :class:`~repro.api.observers.Observer`: ``on_run_start`` installs
the hooks appropriate to the backend, ``on_hour`` applies hour-grained
faults on the hourly engine, and :meth:`finalize` (called by
``Simulation.run``) collects the :class:`~repro.faults.spec.FaultSummary`
attached to the unified result.

Determinism rules (DESIGN.md §14):

* every random draw comes from a ``Philox`` substream keyed by
  ``stable_seed(seed, "faults", plan.name, concern[, entity])`` — never
  from the engine's request RNG, so attaching a plan does not shift the
  workload's draws, and the same ``(plan, seed)`` replays the same
  fault sequence across runs, across ``SweepRunner`` spawn workers and
  across fleet iteration orders (crash processes, WoL transport draws
  and suspend-hang draws are keyed per entity — host name / MAC — so
  each host's fault sequence is independent of every other host's, and
  the sharded backend can slice a plan by host without shifting draws);
* a concern whose probability/rate is zero installs nothing and draws
  nothing, so an all-zero plan is bit-identical to running with no plan
  at all (the parity oracle, asserted on both backends).

Backend coverage: host crash/recover faults apply to both engines; the
WoL, transition, primary-kill and partition faults exercise the packet
and wake paths, which only the event backend models — on the hourly
backend those concerns are inert by construction.
"""

from __future__ import annotations

import numpy as np

from ..api.observers import Observer
from ..cluster.power import PowerState
from ..core.calendar import time_of_hour
from .spec import FaultPlan, FaultSummary


class FaultInjector(Observer):
    """Applies a :class:`FaultPlan` to one simulation run."""

    #: Class marker the façade uses to find the injector among its
    #: observers without importing this module (import-cycle firewall).
    is_fault_injector = True

    #: The hourly path schedules crash/recovery times off ``now``, so
    #: the injector needs the simulated clock (repro.api.observers).
    wants_sim_time = True

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}
        #: Injector-owned counters (the rest live on the components).
        self.suspend_hangs = 0
        self.primary_kills = 0
        self.partitions_applied = 0
        # Hourly-backend crash bookkeeping.
        self._hourly_engine = None
        self._hourly_crashes: list[tuple[float, str]] = []
        self._hourly_recoveries: list[tuple[float, object]] = []
        self._hourly_crash_count = 0
        self._hourly_recover_count = 0

    # ------------------------------------------------------------------
    # deterministic randomness
    # ------------------------------------------------------------------
    def _key(self, *parts) -> int:
        from ..scenarios.spec import stable_seed  # import-cycle firewall

        return stable_seed(self.seed, "faults", self.plan.name, *parts)

    def _stream(self, concern: str) -> np.random.Generator:
        rng = self._streams.get(concern)
        if rng is None:
            rng = np.random.Generator(np.random.Philox(key=self._key(concern)))
            self._streams[concern] = rng
        return rng

    def _crash_schedule(self, hosts, start_hour: int,
                        n_hours: int) -> list[tuple[float, str]]:
        """Per-host Poisson crash times over the run, earliest first.

        Each host draws from its own name-keyed substream, so the
        schedule is invariant under fleet iteration order; the global
        ``max_crashes`` cap keeps the earliest events.
        """
        spec = self.plan.crashes
        if spec.is_zero:
            return []
        start_s = time_of_hour(start_hour)
        horizon_s = n_hours * 3600.0
        mean_gap_s = 3600.0 / spec.rate_per_host_per_h
        events: list[tuple[float, str]] = []
        for host in hosts:
            rng = np.random.Generator(
                np.random.Philox(key=self._key("crash", host.name)))
            t = float(rng.exponential(mean_gap_s))
            while t < horizon_s:
                events.append((start_s + t, host.name))
                t += float(rng.exponential(mean_gap_s))
        events.sort()
        return events[:spec.max_crashes]

    # ------------------------------------------------------------------
    # observer lifecycle
    # ------------------------------------------------------------------
    def on_run_start(self, sim, start_hour: int, n_hours: int) -> None:
        if self.plan.is_zero:
            return  # parity oracle: install nothing, draw nothing
        if sim.backend_name == "sharded":
            # The sharded engine validates the plan, slices the crash
            # schedule by host name and installs per-shard injectors.
            sim.engine.install_fault_plan(self, start_hour, n_hours)
        elif sim.backend_name == "event":
            self._install_event(sim.engine, start_hour, n_hours)
        else:
            self._install_hourly(sim.engine, start_hour, n_hours)

    def _install_event(self, engine, start_hour: int, n_hours: int,
                       crash_schedule=None) -> None:
        plan = self.plan
        if not plan.transitions.is_zero:
            engine.faults = self
        if not plan.wol.is_zero:
            engine.wol_channel.transport = self._wol_transport
        if crash_schedule is None:
            crash_schedule = self._crash_schedule(engine.dc.hosts,
                                                  start_hour, n_hours)
        for at, name in crash_schedule:
            engine.sim.schedule_at(at, self._event_crash, engine, name)
        start_s = time_of_hour(start_hour)
        if plan.waking.kill_primary_at_h is not None:
            engine.sim.schedule_at(
                start_s + plan.waking.kill_primary_at_h * 3600.0,
                self._kill_primary, engine)
        for window in plan.waking.partitions:
            engine.sim.schedule_at(start_s + window.start_h * 3600.0,
                                   self._partition_start, engine)
            engine.sim.schedule_at(
                start_s + (window.start_h + window.duration_h) * 3600.0,
                self._partition_end, engine)

    def _install_hourly(self, engine, start_hour: int, n_hours: int,
                        crash_schedule=None) -> None:
        self._hourly_engine = engine
        self._hourly_crashes = (list(crash_schedule)
                                if crash_schedule is not None
                                else self._crash_schedule(
                                    engine.dc.hosts, start_hour, n_hours))
        self._hourly_recoveries = []

    def on_hour(self, t: int, now: float) -> None:
        engine = self._hourly_engine
        if engine is None:
            return  # event backend: faults ride the event queue
        # Recoveries due first, so a host can crash again later.
        due = [(at, h) for at, h in self._hourly_recoveries if at <= now]
        if due:
            self._hourly_recoveries = [
                e for e in self._hourly_recoveries if e[0] > now]
            for at, host in due:
                if host.state is PowerState.CRASHED:
                    # The hourly meter sync has already charged the host
                    # as crashed up to the hour start; recover there.
                    host.recover(max(at, host.meter.last_time))
                    self._hourly_recover_count += 1
        hour_end = now + 3600.0
        while self._hourly_crashes and self._hourly_crashes[0][0] < hour_end:
            at, name = self._hourly_crashes.pop(0)
            host = engine.dc._host_by_name.get(name)
            if host is None or host.state in (PowerState.CRASHED,
                                              PowerState.OFF):
                continue
            # The power step may have advanced this host's meter past the
            # hour start (transition latencies land at fractional times);
            # never let the crash rewind its clock.
            crash_t = max(at, host.meter.last_time)
            host.crash(crash_t)
            self._hourly_crash_count += 1
            self._hourly_recoveries.append(
                (crash_t + self.plan.crashes.recover_after_s, host))

    # ------------------------------------------------------------------
    # event-backend fault callbacks
    # ------------------------------------------------------------------
    def _event_crash(self, engine, host_name: str) -> None:
        host = engine.dc._host_by_name.get(host_name)
        if host is not None:
            engine.crash_host(host, self.plan.crashes.recover_after_s)

    def _kill_primary(self, engine) -> None:
        engine.waking.fail_primary()
        self.primary_kills += 1

    def _partition_start(self, engine) -> None:
        # The switch loses its waking service: packet analysis is
        # unreachable; the port-level WoL fallback keeps request wakes
        # working.  Suspending-module registrations are on a different
        # link and keep flowing.
        engine.switch.waking_service = None
        self.partitions_applied += 1

    def _partition_end(self, engine) -> None:
        engine.switch.waking_service = engine.waking

    def _wol_transport(self, packet) -> tuple[str, float]:
        spec = self.plan.wol
        # Keyed per destination MAC: each host's loss/delay sequence is
        # independent of how many other hosts' packets interleave.
        rng = self._stream(f"wol:{packet.mac_address}")
        if spec.loss_probability > 0.0 and rng.random() < spec.loss_probability:
            return ("drop", 0.0)
        if (spec.delay_probability > 0.0
                and rng.random() < spec.delay_probability):
            return ("delay", float(rng.exponential(spec.mean_delay_s)))
        return ("ok", 0.0)

    # -- transition-fault hooks (engine.faults) ------------------------
    def suspend_latency(self, base_s: float, host_name: str) -> float:
        spec = self.plan.transitions
        if spec.suspend_hang_probability <= 0.0:
            return base_s
        # Keyed per host: a host's hang sequence depends only on its own
        # suspend history, not on the fleet-wide suspend interleaving.
        if (self._stream(f"suspend-hang:{host_name}").random()
                < spec.suspend_hang_probability):
            self.suspend_hangs += 1
            return base_s + spec.suspend_hang_extra_s
        return base_s

    def resume_fails(self) -> bool:
        spec = self.plan.transitions
        if spec.resume_failure_probability <= 0.0:
            return False
        return (self._stream("resume-fail").random()
                < spec.resume_failure_probability)

    def resume_recover_after_s(self) -> float:
        return self.plan.transitions.recover_after_s

    # ------------------------------------------------------------------
    def finalize(self, sim) -> FaultSummary:
        """Collect the run's degradation accounting (``fault_summary``)."""
        engine = sim.engine
        if sim.backend_name == "sharded":
            return engine.collect_fault_summary(self)
        crashed = PowerState.CRASHED
        unavailability_s = sum(
            h.meter.state_seconds.get(crashed, 0.0) for h in sim.dc.hosts)
        if sim.backend_name != "event":
            return FaultSummary(
                plan=self.plan.name,
                host_crashes=self._hourly_crash_count,
                host_recoveries=self._hourly_recover_count,
                unavailability_s=unavailability_s)
        channel = engine.wol_channel
        waking = engine.waking
        return FaultSummary(
            plan=self.plan.name,
            host_crashes=engine.host_crashes,
            host_recoveries=engine.host_recoveries,
            wol_dropped=channel.dropped,
            wol_delayed=channel.delayed,
            wol_retries=channel.retries,
            wol_abandoned=channel.abandoned,
            backoff_wait_s=channel.backoff_wait_s,
            suspend_hangs=self.suspend_hangs,
            resume_failures=engine.resume_failures,
            failover_migrations=engine.failover_migrations,
            stranded_vms=engine.stranded_vms,
            failovers=waking.failovers,
            primary_kills=self.primary_kills,
            partitions=self.partitions_applied,
            window_journaled_calls=waking.window_journaled,
            lost_service_calls=waking.lost_calls,
            stranded_requests=engine.switch.queued_requests,
            recovered_requests=engine.recovered_requests,
            migrations_blocked=engine.migrations_blocked,
            unavailability_s=unavailability_s)
