"""Declarative, seed-deterministic fault injection (DESIGN.md §14)."""

from .injector import FaultInjector
from .spec import (
    FaultPlan,
    FaultSummary,
    HostCrashFaults,
    PartitionWindow,
    TransitionFaults,
    WakingServiceFaults,
    WolFaults,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "HostCrashFaults",
    "PartitionWindow",
    "TransitionFaults",
    "WakingServiceFaults",
    "WolFaults",
]
