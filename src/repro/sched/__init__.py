"""OpenStack-Nova-like scheduling: filters, weighers, FilterScheduler."""

from .filter_scheduler import FilterScheduler, drowsy_scheduler, vanilla_scheduler
from .filters import (
    DEFAULT_FILTERS,
    ComputeFilter,
    CoreFilter,
    DifferentHostFilter,
    HostFilter,
    MaxVMsFilter,
    RamFilter,
)
from .weighers import (
    HostWeigher,
    IdlenessWeigher,
    RamStackWeigher,
    WeightedWeigher,
)

__all__ = [
    "ComputeFilter",
    "CoreFilter",
    "DEFAULT_FILTERS",
    "DifferentHostFilter",
    "FilterScheduler",
    "HostFilter",
    "HostWeigher",
    "IdlenessWeigher",
    "MaxVMsFilter",
    "RamFilter",
    "RamStackWeigher",
    "WeightedWeigher",
    "drowsy_scheduler",
    "vanilla_scheduler",
]
