"""Nova's Filter Scheduler (paper section III-D).

Two steps: (1) discard unsuitable hosts with filters; (2) weigh and sort
the rest.  Drowsy-DC plugs in through :class:`~repro.sched.weighers.IdlenessWeigher`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.host import Host
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .filters import DEFAULT_FILTERS, HostFilter
from .weighers import IdlenessWeigher, RamStackWeigher, WeightedWeigher


@dataclass
class FilterScheduler:
    """Select a destination host for a VM."""

    filters: tuple[HostFilter, ...] = DEFAULT_FILTERS
    weighers: tuple[WeightedWeigher, ...] = ()

    def candidate_hosts(self, hosts: list[Host], vm: VM) -> list[Host]:
        """Step 1: hosts passing every filter."""
        return [h for h in hosts
                if all(f.passes(h, vm) for f in self.filters)]

    def rank(self, hosts: list[Host], vm: VM, hour_index: int) -> list[tuple[float, Host]]:
        """Step 2: (score, host) list sorted best-first, deterministically.

        Ties break on host name so runs are exactly reproducible.
        """
        scored = [(sum(w.weigh(h, vm, hour_index) for w in self.weighers), h)
                  for h in self.candidate_hosts(hosts, vm)]
        scored.sort(key=lambda sh: (-sh[0], sh[1].name))
        return scored

    def select_host(self, hosts: list[Host], vm: VM, hour_index: int) -> Host | None:
        """Best host for the VM, or None if no host passes the filters."""
        ranked = self.rank(hosts, vm, hour_index)
        return ranked[0][1] if ranked else None


def drowsy_scheduler(params: DrowsyParams = DEFAULT_PARAMS,
                     extra_filters: tuple[HostFilter, ...] = ()) -> FilterScheduler:
    """The scheduler Drowsy-DC installs: default filters + IP weigher.

    The idleness weigher dominates (the paper adds it precisely to make
    IP proximity decisive once resources allow), with RAM stacking as a
    soft tie-break.
    """
    return FilterScheduler(
        filters=DEFAULT_FILTERS + extra_filters,
        weighers=(
            WeightedWeigher(IdlenessWeigher(params), multiplier=1.0),
            WeightedWeigher(RamStackWeigher(), multiplier=1e-6),
        ))


def vanilla_scheduler(extra_filters: tuple[HostFilter, ...] = ()) -> FilterScheduler:
    """Plain consolidating Nova: stack by RAM, no idleness criterion."""
    return FilterScheduler(
        filters=DEFAULT_FILTERS + extra_filters,
        weighers=(WeightedWeigher(RamStackWeigher(), multiplier=1.0),))
