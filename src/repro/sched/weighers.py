"""Nova-style host weighers, including Drowsy-DC's idleness weigher.

After filtering, Nova weighs and sorts the remaining hosts.  Each
weigher returns a score (higher = better); the scheduler combines them
with per-weigher multipliers.  Drowsy-DC integrates by adding "our own
weigher so as to favor hosts with best-matching idleness probability"
(section III-D-a).
"""

from __future__ import annotations

from typing import Protocol

from ..cluster.host import Host
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams


class HostWeigher(Protocol):
    """Score a candidate host for a VM at a given hour."""

    def weigh(self, host: Host, vm: VM, hour_index: int) -> float: ...


class RamStackWeigher:
    """Prefer hosts with *less* free memory (stacking / consolidation).

    This is Nova's RAMWeigher with a negative multiplier folded in — the
    energy-sensible default for a consolidating cloud.
    """

    def weigh(self, host: Host, vm: VM, hour_index: int) -> float:
        free = host.capacity.memory_mb - host.used_resources.memory_mb
        return -free / max(host.capacity.memory_mb, 1)


class IdlenessWeigher:
    """Drowsy-DC's weigher: favor IP proximity, prefer raising host IP.

    The score is the negated |host IP - VM IP| distance; among hosts at
    similar distance (within the paper's tolerance) a bonus is granted
    when adding the VM would *increase* the host's IP ("while aiming to
    increase the latter", section III).  Empty hosts are neutral
    (distance from the undetermined IP 0.0).
    """

    def __init__(self, params: DrowsyParams = DEFAULT_PARAMS) -> None:
        self.params = params

    def weigh(self, host: Host, vm: VM, hour_index: int) -> float:
        vm_ip = vm.raw_ip(hour_index)
        host_ip = host.mean_raw_ip(hour_index)
        distance = abs(vm_ip - host_ip)
        raises_ip = vm_ip > host_ip
        # Tolerance-sized bonus: only discriminates between hosts whose
        # distances are within one tolerance of each other.
        bonus = 0.5 * self.params.ip_distance_tolerance if raises_ip else 0.0
        return -distance + bonus


class WeightedWeigher:
    """A weigher with its multiplier (Nova's weight_multiplier)."""

    def __init__(self, weigher: HostWeigher, multiplier: float = 1.0) -> None:
        self.weigher = weigher
        self.multiplier = multiplier

    def weigh(self, host: Host, vm: VM, hour_index: int) -> float:
        return self.multiplier * self.weigher.weigh(host, vm, hour_index)
