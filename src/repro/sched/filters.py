"""Nova-style host filters (paper section III-D).

OpenStack Nova's Filter Scheduler first discards unsuitable hosts "based
on a large panel of parameters such as available resources".  Filters
are predicates over (host, vm); the scheduler chains them.
"""

from __future__ import annotations

from typing import Protocol

from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.vm import VM


class HostFilter(Protocol):
    """Predicate deciding whether ``host`` may receive ``vm``."""

    def passes(self, host: Host, vm: VM) -> bool: ...


class RamFilter:
    """Reject hosts without enough free memory (no memory overcommit)."""

    def passes(self, host: Host, vm: VM) -> bool:
        used = host.used_resources
        return used.memory_mb + vm.resources.memory_mb <= host.capacity.memory_mb


class CoreFilter:
    """Reject hosts without enough schedulable vCPUs (with overcommit)."""

    def passes(self, host: Host, vm: VM) -> bool:
        used = host.used_resources
        return used.cpus + vm.resources.cpus <= host.capacity.schedulable_cpus


class ComputeFilter:
    """Reject hosts that cannot take workloads right now.

    Drowsy (suspended) hosts are *valid* targets — placing onto them is
    exactly what keeps matching-IP VMs together — but hosts powered off
    (S5) or mid-transition are not considered by Nova.
    """

    ACCEPTED = (PowerState.ON, PowerState.SUSPENDED)

    def passes(self, host: Host, vm: VM) -> bool:
        return host.state in self.ACCEPTED


class MaxVMsFilter:
    """Cap the number of VMs per host (testbed: max 2 VMs per machine)."""

    def __init__(self, max_vms: int) -> None:
        if max_vms <= 0:
            raise ValueError("max_vms must be positive")
        self.max_vms = max_vms

    def passes(self, host: Host, vm: VM) -> bool:
        return len(host.vms) < self.max_vms


class DifferentHostFilter:
    """Anti-affinity: reject hosts running any of the given VMs."""

    def __init__(self, avoid_vm_names: frozenset[str]) -> None:
        self.avoid_vm_names = avoid_vm_names

    def passes(self, host: Host, vm: VM) -> bool:
        return not any(v.name in self.avoid_vm_names for v in host.vms)


DEFAULT_FILTERS: tuple[HostFilter, ...] = (ComputeFilter(), RamFilter(), CoreFilter())
