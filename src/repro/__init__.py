"""Drowsy-DC: data center power management system (IPDPS 2019).

Reproduction of Bacou et al., "Drowsy-DC: Data center power management
system", IEEE IPDPS 2019.  The package implements the paper's
contribution (idleness-model-driven VM consolidation plus host suspend /
wake modules) together with every substrate the evaluation needs: a
discrete-event data-center simulator, an OpenStack-Nova-like scheduler,
an OpenStack-Neat reimplementation, an Oasis-like baseline, synthetic
workload generators and the full experiment harness.

Quickstart::

    from repro import IdlenessModel, slot_of_hour
    from repro.traces import daily_backup_trace

    trace = daily_backup_trace(days=60)
    model = IdlenessModel()
    for hour, activity in enumerate(trace.activities):
        model.observe(hour, activity)
    print(model.idleness_probability(slot_of_hour(2 * 24 + 2)))  # 2 am

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    DEFAULT_PARAMS,
    ConfusionCounts,
    DrowsyParams,
    FleetIdlenessModel,
    IdlenessModel,
    slot_of_hour,
)

__version__ = "1.0.0"

__all__ = [
    "ConfusionCounts",
    "DEFAULT_PARAMS",
    "DrowsyParams",
    "FleetIdlenessModel",
    "IdlenessModel",
    "slot_of_hour",
    "__version__",
]
