"""Drowsy-DC: data center power management system (IPDPS 2019).

Reproduction of Bacou et al., "Drowsy-DC: Data center power management
system", IEEE IPDPS 2019.  The package implements the paper's
contribution (idleness-model-driven VM consolidation plus host suspend /
wake modules) together with every substrate the evaluation needs: a
discrete-event data-center simulator, an OpenStack-Nova-like scheduler,
an OpenStack-Neat reimplementation, an Oasis-like baseline, synthetic
workload generators and the full experiment harness.

Quickstart — one façade for every simulation run (DESIGN.md §13)::

    from repro import Simulation
    from repro.experiments.common import build_fleet

    dc = build_fleet(n_hosts=16, n_vms=64, llmi_fraction=0.5, hours=72)
    result = Simulation(dc, controller="drowsy", backend="hourly").run(72)
    print(result.total_energy_kwh, result.global_suspended_fraction)

and for the model-level building blocks::

    from repro import IdlenessModel, slot_of_hour
    from repro.traces import daily_backup_trace

    trace = daily_backup_trace(days=60)
    model = IdlenessModel()
    for hour, activity in enumerate(trace.activities):
        model.observe(hour, activity)
    print(model.idleness_probability(slot_of_hour(2 * 24 + 2)))  # 2 am

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .api import Observer, RunResult, Simulation
from .core import (
    DEFAULT_PARAMS,
    ConfusionCounts,
    DrowsyParams,
    FleetIdlenessModel,
    IdlenessModel,
    slot_of_hour,
)

__version__ = "1.1.0"

__all__ = [
    "ConfusionCounts",
    "DEFAULT_PARAMS",
    "DrowsyParams",
    "FleetIdlenessModel",
    "IdlenessModel",
    "Observer",
    "RunResult",
    "Simulation",
    "slot_of_hour",
    "__version__",
]
