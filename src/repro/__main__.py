"""``python -m repro`` — experiment runner (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
