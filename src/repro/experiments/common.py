"""Shared scenario builders for the experiment drivers.

The testbed of §VI-A.2: four resource hosts (P2-P5; P1 runs the
controllers and the SDN switch, P6 the client simulators — neither is a
resource host), eight VMs (V1-V2 LLMU running Media Streaming, V3-V8
LLMI running Web Search with production traces, V3 and V4 receiving the
same workload), at most two VMs per host, S3 ~= 5 W.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.resources import TESTBED_HOST, TESTBED_VM, HostCapacity, ResourceSpec
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..traces.base import ActivityTrace
from ..traces.google import google_llmu_fleet
from ..traces.production import PRODUCTION_SPECS, production_trace, testbed_llmi_traces
from ..traces.synthetic import llmu_trace

HOST_NAMES = ("P2", "P3", "P4", "P5")
VM_NAMES = ("V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8")


@dataclass
class Testbed:
    """The wired-up §VI-A testbed."""

    dc: DataCenter
    vms: dict[str, VM]

    @property
    def hosts(self) -> list[Host]:
        return self.dc.hosts


def build_testbed(params: DrowsyParams = DEFAULT_PARAMS, days: int = 7,
                  seed: int = 42) -> Testbed:
    """Build the 4-host / 8-VM testbed with its initial placement.

    Initial placement follows §VI-A.2: the two LLMU VMs start on
    distinct machines, V2 on P2 (the paper notes P2 is where the LLMU
    pair ends up, V2 having started there).
    """
    hosts = [Host(name, TESTBED_HOST, params) for name in HOST_NAMES]
    dc = DataCenter(hosts, params)

    media = llmu_trace(hours=days * 24, seed=seed)
    v1 = VM("V1", media.with_name("V1"), TESTBED_VM, params=params)
    v2 = VM("V2", llmu_trace(hours=days * 24, seed=seed + 99).with_name("V2"),
            TESTBED_VM, params=params)
    llmi = testbed_llmi_traces(days=days, seed=seed)
    vms = {"V1": v1, "V2": v2}
    for trace in llmi:
        vms[trace.name] = VM(trace.name, trace, TESTBED_VM, params=params)

    # V2 on P2; V1 apart from V2; LLMI VMs spread over the remainder.
    dc.place(vms["V2"], dc.host("P2"))
    dc.place(vms["V5"], dc.host("P2"))
    dc.place(vms["V1"], dc.host("P3"))
    dc.place(vms["V3"], dc.host("P3"))
    dc.place(vms["V4"], dc.host("P4"))
    dc.place(vms["V6"], dc.host("P4"))
    dc.place(vms["V7"], dc.host("P5"))
    dc.place(vms["V8"], dc.host("P5"))
    dc.check_invariants()
    return Testbed(dc=dc, vms=vms)


# ----------------------------------------------------------------------
# Fleet scenario for the §VI-B style simulation sweep.
# ----------------------------------------------------------------------

#: Fleet flavors: four 8 GB VMs fill a 32 GB host — memory is the
#: limiting resource, as in real consolidation (paper section I).
FLEET_HOST = HostCapacity(cpus=16, memory_mb=32 * 1024, cpu_overcommit=1.0)
FLEET_VM = ResourceSpec(cpus=2, memory_mb=8 * 1024)


def build_fleet(n_hosts: int, n_vms: int, llmi_fraction: float, hours: int,
                params: DrowsyParams = DEFAULT_PARAMS, seed: int = 7) -> DataCenter:
    """A fleet with a given fraction of LLMI VMs (the §VI-B sweep knob).

    LLMI VMs draw production-like traces; the rest are Google-like LLMU.
    VMs are placed round-robin — deliberately idleness-oblivious, the
    state an ordinary cloud would be in before consolidation runs.
    """
    if not 0.0 <= llmi_fraction <= 1.0:
        raise ValueError("llmi_fraction must be in [0, 1]")
    hosts = [Host(f"H{i:03d}", FLEET_HOST, params) for i in range(n_hosts)]
    dc = DataCenter(hosts, params)
    n_llmi = round(n_vms * llmi_fraction)
    days = (hours + 23) // 24

    traces: list[ActivityTrace] = []
    for i in range(n_llmi):
        spec_idx = (i % len(PRODUCTION_SPECS)) + 1
        traces.append(production_trace(spec_idx, days=days, seed=seed + i)
                      .with_name(f"llmi-{i:03d}"))
    for i, tr in enumerate(google_llmu_fleet(n_vms - n_llmi, hours, seed=seed + 10_000)):
        traces.append(tr.with_name(f"llmu-{i:03d}"))

    # Shuffle before placement: an idleness-oblivious cloud does not
    # accidentally colocate matching patterns, which is precisely the
    # state Drowsy-DC improves on (and what the baselines must face).
    rng = np.random.default_rng(seed + 1)
    rng.shuffle(traces)

    for i, trace in enumerate(traces):
        vm = VM(f"vm-{i:03d}", trace, FLEET_VM, params=params)
        dc.place(vm, hosts[i % n_hosts])
    dc.check_invariants()
    return dc
