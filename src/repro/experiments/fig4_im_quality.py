"""E6 — Fig. 4 / Tables II-III: idleness-model quality over three years.

Eight trace types (Table II): (a) daily backup, (b) comic strips three
times a week except July/August, (c-g) the five production traces
extended to three years, (h) a long-lived mostly-used VM.  Metrics per
Table III; Fig. 4's qualitative claims:

* predictable traces reach F-measure > 0.97 after a few weeks;
* the comic strips need ~2 years (the yearly holiday pattern);
* the LLMU trace's specificity is ~1 almost immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.evaluation import TraceEvaluation, evaluate_traces, evaluation_table
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..traces.base import ActivityTrace
from ..traces.production import production_trace
from ..traces.synthetic import comic_strips_trace, daily_backup_trace, llmu_trace


def fig4_trace_suite(years: int = 3, seed: int = 42) -> list[ActivityTrace]:
    """The eight Table II traces (subfigure order a..h)."""
    days = years * 365
    hours = days * 24
    suite = [
        daily_backup_trace(days=days).with_name("a-daily-backup"),
        comic_strips_trace(years=years).with_name("b-comic-strips"),
    ]
    for i in range(1, 6):
        suite.append(production_trace(i, days=days, seed=seed + i)
                     .with_name(f"{'cdefg'[i - 1]}-real-trace-{i}"))
    suite.append(llmu_trace(hours=hours, seed=seed).with_name("h-llmu"))
    return suite


@dataclass
class Fig4Data:
    years: int
    evaluations: list[TraceEvaluation]

    def by_name(self, prefix: str) -> TraceEvaluation:
        for ev in self.evaluations:
            if ev.trace_name.startswith(prefix):
                return ev
        raise KeyError(prefix)

    def f_measure_at(self, prefix: str, hour: int) -> float:
        """Cumulative F-measure at (or just after) an absolute hour."""
        ev = self.by_name(prefix)
        for h, f in zip(ev.curves.hours, ev.curves.f_measure):
            if h >= hour:
                return f
        return ev.curves.f_measure[-1]

    def render(self) -> str:
        lines = [f"Fig. 4 — idleness model efficiency over {self.years} years",
                 evaluation_table(self.evaluations), ""]
        lines.append("checkpoints (cumulative F-measure):")
        for prefix in ("a", "c", "d", "e", "f", "g"):
            f4w = self.f_measure_at(prefix, 4 * 7 * 24)
            lines.append(f"  {self.by_name(prefix).trace_name:<18} after 4 weeks: {f4w:.3f}")
        b = self.by_name("b")
        lines.append(f"  {b.trace_name:<18} after 1 year : "
                     f"{self.f_measure_at('b', 365 * 24):.3f}")
        lines.append(f"  {b.trace_name:<18} final        : {b.final_f_measure:.3f}")
        h = self.by_name("h")
        lines.append(f"  {h.trace_name:<18} specificity  : {h.final_specificity:.3f}")
        return "\n".join(lines)


def run(years: int = 3, params: DrowsyParams = DEFAULT_PARAMS,
        sample_every: int = 24, seed: int = 42) -> Fig4Data:
    suite = fig4_trace_suite(years=years, seed=seed)
    evaluations = evaluate_traces(suite, params, sample_every=sample_every)
    return Fig4Data(years=years, evaluations=evaluations)


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
