"""E13 — §III-D-a: initial placement at VM creation time.

"Nova allows an easy integration of new filters and weighers.  In order
to integrate our solution, we added our own weigher so as to favor
hosts with best-matching idleness probability."

This experiment isolates the weigher's contribution: a stream of VMs
arrives over several days into a half-full data center whose resident
VMs have already-learned idleness models (sleepy LLMI hosts vs busy
LLMU hosts).  Newcomers have *undetermined* models (IP ≈ 0), so §III-D-c
wants them kept away from high-IP (sleeping) hosts until their nature is
learned.  We place each arrival with (a) Drowsy's scheduler (idleness
weigher) and (b) vanilla RAM-stacking Nova, then compare energy and how
often a sleeping host was disturbed by a newcomer.

Dynamic consolidation is disabled throughout so the difference is the
weigher's alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api import Simulation
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.resources import HostCapacity, ResourceSpec
from ..cluster.vm import VM
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sched.filter_scheduler import FilterScheduler, drowsy_scheduler, vanilla_scheduler
from ..sim.hourly import HourlyConfig
from ..traces.production import production_trace
from ..traces.synthetic import llmu_trace, slmu_trace

PLACE_HOST = HostCapacity(cpus=8, memory_mb=16 * 1024, cpu_overcommit=2.0)
PLACE_VM = ResourceSpec(cpus=2, memory_mb=4 * 1024)


@dataclass
class PlacementRunResult:
    scheduler_name: str
    energy_kwh: float
    placed: int
    rejected: int
    #: Arrivals placed onto a host that was suspended at that moment.
    sleepy_hosts_disturbed: int


@dataclass
class InitialPlacementData:
    drowsy: PlacementRunResult
    vanilla: PlacementRunResult

    @property
    def disturbance_reduction(self) -> int:
        return self.vanilla.sleepy_hosts_disturbed - self.drowsy.sleepy_hosts_disturbed

    def render(self) -> str:
        rows = []
        for r in (self.drowsy, self.vanilla):
            rows.append(f"{r.scheduler_name:<18}{r.energy_kwh:>9.2f} kWh"
                        f"{r.placed:>8} placed{r.rejected:>5} rejected"
                        f"{r.sleepy_hosts_disturbed:>6} sleepy hosts disturbed")
        return "\n".join([
            "§III-D-a — initial placement: idleness weigher vs vanilla Nova",
            *rows,
            "",
            f"the idleness weigher disturbs {self.disturbance_reduction} fewer "
            f"sleeping hosts and saves "
            f"{self.vanilla.energy_kwh - self.drowsy.energy_kwh:.2f} kWh",
        ])


def _build_resident_dc(params: DrowsyParams, days: int, train_days: int,
                       seed: int) -> DataCenter:
    """Half-full DC: sleepy LLMI hosts and busy LLMU hosts, models trained."""
    hosts = [Host(f"p{i:02d}", PLACE_HOST, params) for i in range(8)]
    dc = DataCenter(hosts, params)
    trace_days = days + train_days
    k = 0
    for i, host in enumerate(hosts[:4]):  # sleepy residents
        for j in range(2):
            trace = production_trace((k % 5) + 1, days=trace_days, seed=seed + k)
            dc.place(VM(f"llmi-{k}", trace.with_name(f"llmi-{k}"), PLACE_VM,
                        params=params), host)
            k += 1
    for i, host in enumerate(hosts[4:6]):  # busy residents
        for j in range(2):
            trace = llmu_trace(hours=trace_days * 24, seed=seed + 100 + k)
            dc.place(VM(f"llmu-{k}", trace.with_name(f"llmu-{k}"), PLACE_VM,
                        params=params), host)
            k += 1
    # hosts p06, p07 stay empty (spare capacity).
    for t in range(train_days * 24):
        for vm in dc.vms:
            vm.model.observe(t, vm.activity_at(t))
    return dc


def _arrivals(days: int, start_hour: int, seed: int,
              params: DrowsyParams) -> list[tuple[int, VM]]:
    """A mixed stream of newcomers: SLMU tasks and fresh LLMI services."""
    rng = np.random.default_rng(seed)
    out = []
    for d in range(days):
        for _ in range(2):
            hour = start_hour + d * 24 + int(rng.integers(8, 20))
            idx = len(out)
            if rng.random() < 0.5:
                lifetime = int(rng.integers(2, 8))
                trace = slmu_trace(lifetime_hours=lifetime,
                                   total_hours=days * 24 + start_hour + 48)
                vm = VM(f"new-slmu-{idx}", trace.with_name(f"new-slmu-{idx}"),
                        PLACE_VM, params=params)
                vm.terminate_after_h = lifetime
            else:
                trace = production_trace(int(rng.integers(1, 6)),
                                         days=days + 10, seed=seed + 500 + idx)
                vm = VM(f"new-llmi-{idx}", trace.with_name(f"new-llmi-{idx}"),
                        PLACE_VM, params=params)
            out.append((hour, vm))
    out.sort(key=lambda hv: hv[0])
    return out


def _run(scheduler: FilterScheduler, scheduler_name: str, days: int,
         train_days: int, params: DrowsyParams, seed: int) -> PlacementRunResult:
    dc = _build_resident_dc(params, days, train_days, seed)
    arrivals = _arrivals(days, train_days * 24, seed, params)
    pending = list(arrivals)
    terminations: list[tuple[int, VM]] = []
    stats = {"placed": 0, "rejected": 0, "disturbed": 0}

    def lifecycle_hook(hour_index: int, now: float) -> None:
        # SLMU tasks that finished leave the data center.
        for end_hour, vm in list(terminations):
            if hour_index >= end_hour:
                dc.remove(vm, now)
                terminations.remove((end_hour, vm))
        while pending and pending[0][0] <= hour_index:
            _, vm = pending.pop(0)
            host = scheduler.select_host(dc.hosts, vm, hour_index)
            if host is None:
                stats["rejected"] += 1
                continue
            if host.is_suspended:
                stats["disturbed"] += 1
            dc.place(vm, host)
            stats["placed"] += 1
            vm.current_activity = vm.activity_at(hour_index)
            lifetime = getattr(vm, "terminate_after_h", None)
            if lifetime is not None:
                terminations.append((hour_index + lifetime, vm))
        dc.check_invariants()

    # Consolidation stays off ("none", the registry's passive baseline)
    # so the difference between runs is the weigher's alone.
    sim = Simulation(
        dc, "none", params=params,
        config=HourlyConfig(power_off_empty=False, update_models=True),
        observers=(lifecycle_hook,))
    result = sim.run(days * 24, start_hour=train_days * 24)
    return PlacementRunResult(
        scheduler_name=scheduler_name,
        energy_kwh=result.total_energy_kwh,
        placed=stats["placed"],
        rejected=stats["rejected"],
        sleepy_hosts_disturbed=stats["disturbed"])


def run(days: int = 5, train_days: int = 14,
        params: DrowsyParams = DEFAULT_PARAMS, seed: int = 33) -> InitialPlacementData:
    return InitialPlacementData(
        drowsy=_run(drowsy_scheduler(params), "idleness weigher", days,
                    train_days, params, seed),
        vanilla=_run(vanilla_scheduler(), "vanilla (RAM stack)", days,
                     train_days, params, seed),
    )


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
