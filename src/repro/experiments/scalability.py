"""E9 — §VII scalability: O(n) Drowsy-DC vs O(n²) pairwise matching.

"Drowsy-DC's complexity is O(n), compared to O(n²) for the other system
[38], with n the number of VMs."  We time Drowsy's linear grouping and
the pairwise matcher over growing fleets and fit the growth exponents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cluster.host import Host
from ..cluster.vm import VM
from ..consolidation.baseline import drowsy_linear_grouping, pairwise_matching_grouping
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..traces.synthetic import weekly_pattern_trace
from .common import FLEET_HOST, FLEET_VM


def _make_population(n_vms: int, params: DrowsyParams,
                     trained_hours: int = 72, seed: int = 11):
    """VMs with lightly trained models (so IPs are non-trivial) + hosts."""
    rng = np.random.default_rng(seed)
    slots = FLEET_HOST.memory_mb // FLEET_VM.memory_mb
    hosts = [Host(f"S{i:04d}", FLEET_HOST, params)
             for i in range((n_vms + slots - 1) // slots)]
    vms = []
    for i in range(n_vms):
        start = int(rng.integers(0, 24))
        trace = weekly_pattern_trace(
            f"w{i}", {d: tuple(range(start, min(start + 3, 24)))
                      for d in range(7)}, weeks=2)
        vm = VM(f"vm{i:04d}", trace, FLEET_VM, params=params)
        for t in range(trained_hours):
            vm.model.observe(t, trace.activity(t))
        vms.append(vm)
    return vms, hosts


@dataclass
class ScalabilityData:
    sizes: tuple[int, ...]
    drowsy_s: list[float]
    pairwise_s: list[float]

    def growth_exponent(self, times: list[float]) -> float:
        """Least-squares slope of log(time) vs log(n)."""
        logs_n = np.log(np.asarray(self.sizes, dtype=float))
        logs_t = np.log(np.asarray(times))
        slope, _ = np.polyfit(logs_n, logs_t, 1)
        return float(slope)

    @property
    def drowsy_exponent(self) -> float:
        return self.growth_exponent(self.drowsy_s)

    @property
    def pairwise_exponent(self) -> float:
        return self.growth_exponent(self.pairwise_s)

    def render(self) -> str:
        header = f"{'n VMs':>7}{'Drowsy (ms)':>13}{'pairwise (ms)':>15}"
        lines = ["§VII — placement scalability", header, "-" * len(header)]
        for n, d, p in zip(self.sizes, self.drowsy_s, self.pairwise_s):
            lines.append(f"{n:>7}{1e3 * d:>13.2f}{1e3 * p:>15.2f}")
        lines += [
            "",
            f"fitted growth exponents: Drowsy ~ n^{self.drowsy_exponent:.2f}, "
            f"pairwise ~ n^{self.pairwise_exponent:.2f}",
            "(paper: O(n) vs O(n^2))",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class _SizeCell:
    """One fleet size of the timing sweep (independent population)."""

    n: int
    params: DrowsyParams
    repeats: int
    hour_index: int


def _run_size_cell(cell: _SizeCell) -> tuple[float, float]:
    """Time both groupings at one size (top-level: sweep-worker picklable)."""
    vms, hosts = _make_population(cell.n, cell.params)
    best_d = min(_time(drowsy_linear_grouping, vms, hosts, cell.hour_index)
                 for _ in range(cell.repeats))
    best_p = min(_time(pairwise_matching_grouping, vms, hosts,
                       cell.hour_index)
                 for _ in range(cell.repeats))
    return best_d, best_p


def run(sizes: tuple[int, ...] = (64, 128, 256, 512, 1024),
        params: DrowsyParams = DEFAULT_PARAMS, repeats: int = 3,
        hour_index: int = 73, workers: int = 1) -> ScalabilityData:
    """Time the groupings over growing fleets.

    ``workers > 1`` shards the per-size cells over a
    :class:`~repro.sim.sweep.SweepRunner` process pool (each size is
    measured in its own process; wall-clock timings are inherently
    machine-dependent, but the fitted exponents are stable).
    """
    from ..sim.sweep import SweepRunner

    cells = [_SizeCell(n=n, params=params, repeats=repeats,
                       hour_index=hour_index) for n in sizes]
    results = SweepRunner(workers=workers).map(_run_size_cell, cells)
    drowsy_s = [d for d, _ in results]
    pairwise_s = [p for _, p in results]
    return ScalabilityData(sizes=sizes, drowsy_s=drowsy_s, pairwise_s=pairwise_s)


def _time(fn, vms, hosts, hour_index: int) -> float:
    t0 = time.perf_counter()
    fn(vms, hosts, hour_index)
    return time.perf_counter() - t0


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
