"""E5 — §VI-A.3 SLA and wake-latency results (event-driven).

Paper: ">99 % of the web search requests were serviced within 200 ms";
requests that trigger the waking of a drowsy server took up to ~1500 ms,
brought down to ~800 ms by the quick-resume work.  We run the full
event-driven stack twice — baseline resume latency vs optimized — and
report both SLA reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.sla import SLAReport, sla_report
from ..api import Simulation
from ..core.params import (
    DEFAULT_PARAMS,
    RESUME_LATENCY_BASELINE_S,
    RESUME_LATENCY_OPTIMIZED_S,
    DrowsyParams,
)
from ..sim.event_driven import EventConfig
from .common import build_testbed


@dataclass
class SLAData:
    optimized: SLAReport
    baseline: SLAReport
    optimized_events: int

    def render(self) -> str:
        return "\n".join([
            "§VI-A.3 — request latency SLA (event-driven, Drowsy-DC)",
            "",
            "--- quick resume (optimized, ~800 ms) ---",
            self.optimized.render(),
            "",
            "--- baseline resume (~1500 ms) ---",
            self.baseline.render(),
        ])


def _run_once(days: int, params: DrowsyParams, seed: int) -> tuple[SLAReport, int]:
    bed = build_testbed(params, days=days, seed=seed)
    sim = Simulation(
        bed, "drowsy", "event", params=params,
        config=EventConfig(relocate_all_mode=True, seed=seed))
    result = sim.run(days * 24)
    # The full latency distribution lives on the engine's SDN switch;
    # the unified result only carries the digest (request_summary).
    return sla_report(sim.engine.switch.log), result.events_processed


def run(days: int = 3, params: DrowsyParams = DEFAULT_PARAMS,
        seed: int = 42) -> SLAData:
    optimized, events = _run_once(
        days, params.replace(resume_latency_s=RESUME_LATENCY_OPTIMIZED_S), seed)
    baseline, _ = _run_once(
        days, params.replace(resume_latency_s=RESUME_LATENCY_BASELINE_S), seed)
    return SLAData(optimized=optimized, baseline=baseline,
                   optimized_events=events)


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
