"""E11 — Neat substrate study: overload detectors × VM selectors.

OpenStack Neat is the baseline the paper modifies, and our
reimplementation carries its published algorithm family (Beloglazov &
Buyya): THR / MAD / IQR / LR overload detection and MMT / RS / MC VM
selection.  This study replays PlanetLab-like utilization traces over
every (detector, selector) pair and reports the metrics the Neat papers
use — energy, migration count, SLATAH and the energy-SLA-violation
product (ESV) — validating that our substrate reproduces the published
qualitative behaviour (adaptive detectors trade energy for QoS; MMT
migrates cheapest-first).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.resources import HostCapacity, ResourceSpec
from ..cluster.vm import VM
from ..consolidation.detection import (
    IqrDetector,
    LocalRegressionDetector,
    MadDetector,
    ThresholdDetector,
)
from ..consolidation.neat import NeatController
from ..consolidation.selection import (
    MaximumCorrelationSelector,
    MinimumMigrationTimeSelector,
    RandomSelector,
)
from ..api import RunResult, Simulation
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.hourly import HourlyConfig
from ..traces.planetlab import planetlab_fleet

#: Sized so that a memory-full host (8 VMs) saturates its CPUs when mean
#: utilization reaches ~25 % — the regime where overload detection and
#: selection policies actually differentiate (as in the Neat papers).
STUDY_HOST = HostCapacity(cpus=8, memory_mb=32 * 1024, cpu_overcommit=2.0)
STUDY_VM = ResourceSpec(cpus=4, memory_mb=4 * 1024)

DETECTORS = {
    "thr": lambda: ThresholdDetector(0.8),
    "mad": lambda: MadDetector(),
    "iqr": lambda: IqrDetector(),
    "lr": lambda: LocalRegressionDetector(),
}

SELECTORS = {
    "mmt": lambda: MinimumMigrationTimeSelector(),
    "rs": lambda: RandomSelector(seed=17),
    "mc": lambda: MaximumCorrelationSelector(),
}


@dataclass(frozen=True)
class StudyCell:
    detector: str
    selector: str
    energy_kwh: float
    migrations: int
    slatah: float
    esv: float


@dataclass
class DetectorStudyData:
    cells: list[StudyCell]
    n_hosts: int
    n_vms: int
    hours: int

    def cell(self, detector: str, selector: str) -> StudyCell:
        for c in self.cells:
            if c.detector == detector and c.selector == selector:
                return c
        raise KeyError((detector, selector))

    def render(self) -> str:
        header = (f"{'detector':<10}{'selector':<10}{'kWh':>8}{'migr':>7}"
                  f"{'SLATAH':>9}{'ESV':>9}")
        lines = [
            f"Neat substrate study: {self.n_vms} PlanetLab-like VMs on "
            f"{self.n_hosts} hosts, {self.hours} h",
            header, "-" * len(header)]
        for c in self.cells:
            lines.append(f"{c.detector:<10}{c.selector:<10}{c.energy_kwh:>8.2f}"
                         f"{c.migrations:>7d}{c.slatah:>9.4f}{c.esv:>9.4f}")
        return "\n".join(lines)


def _build_dc(n_hosts: int, n_vms: int, hours: int,
              params: DrowsyParams, seed: int) -> DataCenter:
    hosts = [Host(f"n{i:02d}", STUDY_HOST, params) for i in range(n_hosts)]
    dc = DataCenter(hosts, params)
    for i, trace in enumerate(planetlab_fleet(n_vms, hours, seed=seed)):
        dc.place(VM(f"pl{i:03d}", trace, STUDY_VM, params=params),
                 hosts[i % n_hosts])
    dc.check_invariants()
    return dc


def run(n_hosts: int = 8, n_vms: int = 24, days: int = 3,
        params: DrowsyParams = DEFAULT_PARAMS, seed: int = 21) -> DetectorStudyData:
    hours = days * 24
    cells = []
    for det_name, det_factory in DETECTORS.items():
        for sel_name, sel_factory in SELECTORS.items():
            dc = _build_dc(n_hosts, n_vms, hours, params, seed)
            # A parameterized controller object: the façade accepts it
            # as-is (names are for the registry's stock factories).
            controller = NeatController(
                dc, detector=det_factory(), selector=sel_factory(),
                params=params)
            sim = Simulation(
                dc, controller, params=params,
                config=HourlyConfig(suspend_enabled=True,
                                    power_off_empty=True,
                                    update_models=False))
            result: RunResult = sim.run(hours)
            cells.append(StudyCell(
                detector=det_name, selector=sel_name,
                energy_kwh=result.total_energy_kwh,
                migrations=result.migrations,
                slatah=result.slatah,
                esv=result.esv))
    return DetectorStudyData(cells=cells, n_hosts=n_hosts, n_vms=n_vms,
                             hours=hours)


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
