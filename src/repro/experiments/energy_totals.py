"""E4 — §VI-A.3 energy totals.

The paper's seven-day testbed numbers: 40 kWh with Neat and suspension
disabled (the "current real world case"), 24 kWh with Neat + S3, 18 kWh
with Drowsy-DC — i.e. ~55 % saving over no-suspension and ~27 % over
naive S3, attributable to the IP-matched colocation alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.energy import RunSummary, energy_table, improvement_pct, summarize
from ..api import Simulation
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.hourly import HourlyConfig
from .common import build_testbed


@dataclass
class EnergyData:
    neat_no_suspend: RunSummary
    neat_s3: RunSummary
    drowsy: RunSummary

    @property
    def saving_vs_no_suspend_pct(self) -> float:
        return improvement_pct(self.neat_no_suspend.energy_kwh, self.drowsy.energy_kwh)

    @property
    def saving_vs_neat_s3_pct(self) -> float:
        return improvement_pct(self.neat_s3.energy_kwh, self.drowsy.energy_kwh)

    def render(self) -> str:
        return "\n".join([
            "§VI-A.3 — total energy over 7 days (4 hosts)",
            energy_table([self.neat_no_suspend, self.neat_s3, self.drowsy]),
            "",
            f"Drowsy-DC vs Neat-no-suspend : {self.saving_vs_no_suspend_pct:.0f} % saved (paper: ~55 %)",
            f"Drowsy-DC vs Neat+S3         : {self.saving_vs_neat_s3_pct:.0f} % saved (paper: ~27 %)",
        ])


def run(days: int = 7, params: DrowsyParams = DEFAULT_PARAMS,
        seed: int = 42) -> EnergyData:
    neat_params = params.replace(use_grace=False)

    bed = build_testbed(neat_params, days=days, seed=seed)
    no_suspend = Simulation(
        bed, "neat", params=neat_params,
        config=HourlyConfig(suspend_enabled=False,
                            power_off_empty=False)).run(days * 24)

    bed2 = build_testbed(neat_params, days=days, seed=seed)
    neat_s3 = Simulation(
        bed2, "neat", params=neat_params,
        config=HourlyConfig(power_off_empty=False)).run(days * 24)

    bed3 = build_testbed(params, days=days, seed=seed)
    drowsy = Simulation(
        bed3, "drowsy", params=params,
        config=HourlyConfig(relocate_all_mode=True,
                            power_off_empty=False)).run(days * 24)

    return EnergyData(
        neat_no_suspend=summarize("Neat (no suspension)", no_suspend),
        neat_s3=summarize("Neat + S3", neat_s3),
        drowsy=summarize("Drowsy-DC", drowsy))


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
