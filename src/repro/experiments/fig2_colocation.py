"""E2 — Fig. 2: colocation percentage matrix and migration counts.

Runs the testbed for seven days under Drowsy-DC in the periodic
full-relocation evaluation mode of §VI-A.1 and reports, for every VM
pair, the percentage of time they shared a host, plus per-VM migration
counts.  The paper's headline observations:

* V1 and V2 (the LLMU pair) co-run for the large majority of the time;
* V3 and V4 (identical workloads) are colocated for a significant
  fraction after at most one migration of V4;
* migration counts stay low (placements reach a stable state).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.colocation import ColocationSummary, ColocationTracker, summarize_testbed
from ..api import RunResult, Simulation
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.hourly import HourlyConfig
from .common import VM_NAMES, build_testbed


@dataclass
class Fig2Data:
    tracker: ColocationTracker
    result: RunResult
    summary: ColocationSummary

    def render(self) -> str:
        table = self.tracker.render(list(VM_NAMES), self.result.vm_migrations)
        s = self.summary
        return "\n".join([
            "Fig. 2 — colocation percentage of each VM (Drowsy-DC, 7 days)",
            table,
            "",
            f"V1-V2 (LLMU pair) colocated      {100 * s.llmu_pair_fraction:.0f} % of the time",
            f"V3-V4 (same workload) colocated  {100 * s.same_workload_pair_fraction:.0f} % of the time",
            f"total migrations                 {s.total_migrations}",
            f"max migrations for one VM        {s.max_migrations_per_vm}",
        ])


def run(days: int = 7, params: DrowsyParams = DEFAULT_PARAMS,
        relocation_period_h: int = 1, seed: int = 42) -> Fig2Data:
    bed = build_testbed(params, days=days, seed=seed)
    tracker = ColocationTracker(bed.dc)
    sim = Simulation(
        bed, "drowsy", params=params,
        config=HourlyConfig(relocate_all_mode=True,
                            consolidation_period_h=relocation_period_h,
                            power_off_empty=False),
        observers=(tracker.hour_hook,))
    result = sim.run(days * 24)
    summary = summarize_testbed(tracker, result.vm_migrations)
    return Fig2Data(tracker=tracker, result=result, summary=summary)


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
