"""Experiment drivers — one module per paper table/figure (DESIGN.md §4).

Each module exposes ``run(...)`` returning a structured result with a
``render()`` method, and is runnable as a script::

    python -m repro.experiments.fig2_colocation

Submodules are imported lazily (import the one you need) so that
``python -m repro.experiments.<name>`` runs without double-import
warnings.
"""

__all__ = [
    "backup_anticipation",
    "common",
    "energy_totals",
    "fig1_traces",
    "fig2_colocation",
    "fig4_im_quality",
    "fleet_sweep",
    "scalability",
    "scenario_compare",
    "sla_latency",
    "suspending_eval",
    "table1_suspension",
]
