"""E7 — §VI-A.4: evaluation of the suspending module.

The source scan loses part of this section; its three announced axes
survive and are reproduced here:

1. **effectiveness** — detection of idle states (precision/recall of the
   suspend verdicts against ground-truth idleness), prevention of power-
   state oscillations (suspend/resume cycles with vs without grace on a
   flapping workload), and calculation of the next waking date (timer
   scenarios, including blacklist filtering);
2. **overhead** — wall-clock cost of one idleness evaluation and of one
   waking-date computation;
3. **scalability** — evaluation cost as the number of processes/timers
   on the host grows (the module walks the process table and the hrtimer
   tree, both linear scans over logarithmic structures).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cluster.host import Host
from ..cluster.resources import HostCapacity, ResourceSpec
from ..cluster.vm import VM, ServiceTimer
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..suspend.module import SuspendingModule
from ..suspend.timers import TimerEntry, TimerRegistry, compute_waking_date
from ..traces.base import ActivityTrace
from ..traces.synthetic import daily_backup_trace


@dataclass
class DetectionStats:
    true_suspend: int = 0
    false_suspend: int = 0
    true_awake: int = 0
    false_awake: int = 0

    @property
    def precision(self) -> float:
        d = self.true_suspend + self.false_suspend
        return self.true_suspend / d if d else float("nan")

    @property
    def recall(self) -> float:
        d = self.true_suspend + self.false_awake
        return self.true_suspend / d if d else float("nan")


@dataclass
class SuspendingEvalData:
    detection: DetectionStats
    cycles_with_grace: int
    cycles_without_grace: int
    waking_date_ok: bool
    blacklist_filtered: bool
    eval_cost_us: float
    waking_date_cost_us: dict[int, float]

    def render(self) -> str:
        lines = [
            "§VI-A.4 — suspending module evaluation",
            f"idle detection precision  {self.detection.precision:.3f}",
            f"idle detection recall     {self.detection.recall:.3f}",
            f"oscillation cycles        {self.cycles_without_grace} without grace "
            f"-> {self.cycles_with_grace} with grace",
            f"waking date correctness   {'OK' if self.waking_date_ok else 'FAILED'}",
            f"blacklist timer filtering {'OK' if self.blacklist_filtered else 'FAILED'}",
            f"one evaluation costs      {self.eval_cost_us:.1f} us",
            "waking-date cost vs #timers:",
        ]
        for n, us in sorted(self.waking_date_cost_us.items()):
            lines.append(f"  {n:>6} timers: {us:10.1f} us")
        return "\n".join(lines)


def _mini_host(params: DrowsyParams, trace: ActivityTrace) -> tuple[Host, VM]:
    host = Host("eval-host", HostCapacity(cpus=8, memory_mb=16384), params)
    vm = VM("eval-vm", trace, ResourceSpec(cpus=2, memory_mb=4096), params=params,
            timers=(ServiceTimer("backup", period_s=24 * 3600.0,
                                 first_fire_s=2 * 3600.0),))
    host.add_vm(vm)
    return host, vm


def detection_effectiveness(params: DrowsyParams = DEFAULT_PARAMS,
                            days: int = 14, seed: int = 3) -> DetectionStats:
    """Hourly suspend verdicts vs ground-truth idleness."""
    from ..traces.production import production_trace

    trace = production_trace(1, days=days, seed=seed)
    host, vm = _mini_host(params, trace)
    module = SuspendingModule(host, params)
    stats = DetectionStats()
    for t in range(days * 24):
        vm.current_activity = trace.activities[t]
        verdict = module.evaluate(now=t * 3600.0 + 10.0)
        idle = trace.activities[t] == 0.0
        if verdict.should_suspend and idle:
            stats.true_suspend += 1
        elif verdict.should_suspend and not idle:
            stats.false_suspend += 1
        elif not verdict.should_suspend and not idle:
            stats.true_awake += 1
        else:
            stats.false_awake += 1
    return stats


def oscillation_cycles(params: DrowsyParams, flap_period_s: float = 10.0,
                       duration_s: float = 1800.0) -> int:
    """Suspend/resume cycles under a flapping workload.

    The workload alternates idle/active every ``flap_period_s``; without
    grace every idle dip triggers a suspend (then an immediate resume),
    with grace the host rides the dips out.
    """
    from ..traces.synthetic import always_idle_trace

    host, vm = _mini_host(params, always_idle_trace(max(1, int(duration_s // 3600) + 1)))
    module = SuspendingModule(host, params)
    now = 0.0
    step = params.suspend_check_period_s
    while now < duration_s:
        phase = int(now // flap_period_s) % 2
        vm.current_activity = 0.0 if phase == 0 else 0.5
        if host.is_suspended:
            if vm.current_activity > 0.0:
                host.begin_resume(now)
                host.finish_resume(now + params.resume_latency_s,
                                   module.grace_for_resume(now, 0))
        else:
            verdict = module.evaluate(now)
            if verdict.should_suspend:
                host.begin_suspend(now)
                host.finish_suspend(now + params.suspend_latency_s)
        now += step
    return host.suspend_count


def waking_date_correctness(params: DrowsyParams = DEFAULT_PARAMS) -> tuple[bool, bool]:
    """The computed waking date is the earliest *valid* timer."""
    host, vm = _mini_host(params, daily_backup_trace(days=2))
    vm.current_activity = 0.0
    now = 10 * 3600.0  # 10 am, next backup tomorrow 2 am
    date = compute_waking_date(host, now)
    expected = (24 + 2) * 3600.0
    ok = date is not None and abs(date - expected) < 1e-6
    # Daemon timers (blacklisted) fire much earlier but must be ignored.
    registry_earliest = TimerRegistry()
    registry_earliest.register(TimerEntry(now + 60.0, "watchdogd", "tick"))
    registry_earliest.register(TimerEntry(now + 7200.0, "service", "real"))
    entry = registry_earliest.earliest_valid()
    filtered = entry is not None and entry.process_name == "service"
    return ok, filtered


def evaluation_overhead_us(params: DrowsyParams = DEFAULT_PARAMS,
                           iterations: int = 2000) -> float:
    host, vm = _mini_host(params, daily_backup_trace(days=1))
    module = SuspendingModule(host, params)
    t0 = time.perf_counter()
    for i in range(iterations):
        module.evaluate(float(i))
    return 1e6 * (time.perf_counter() - t0) / iterations


def waking_date_scalability(sizes: tuple[int, ...] = (100, 1000, 10000),
                            seed: int = 5) -> dict[int, float]:
    """Cost of earliest-valid-timer over growing hrtimer trees."""
    rng = np.random.default_rng(seed)
    out = {}
    for n in sizes:
        registry = TimerRegistry()
        fire = rng.uniform(0.0, 1e6, size=n)
        for i in range(n):
            registry.register(TimerEntry(float(fire[i]), f"proc-{i}", f"t{i}"))
        reps = max(2000 // max(n // 100, 1), 10)
        t0 = time.perf_counter()
        for _ in range(reps):
            registry.earliest_valid()
        out[n] = 1e6 * (time.perf_counter() - t0) / reps
    return out


def run(params: DrowsyParams = DEFAULT_PARAMS) -> SuspendingEvalData:
    detection = detection_effectiveness(params)
    with_grace = oscillation_cycles(params)
    without_grace = oscillation_cycles(params.replace(use_grace=False))
    ok, filtered = waking_date_correctness(params)
    return SuspendingEvalData(
        detection=detection,
        cycles_with_grace=with_grace,
        cycles_without_grace=without_grace,
        waking_date_ok=ok,
        blacklist_filtered=filtered,
        eval_cost_us=evaluation_overhead_us(params),
        waking_date_cost_us=waking_date_scalability(),
    )


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
