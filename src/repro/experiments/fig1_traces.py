"""E1 — Fig. 1: examples of the real workloads driving the testbed.

Regenerates the three series the paper plots (VM3/VM4 share a workload,
VM6 differs) and prints a daily activity summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.production import fig1_traces


@dataclass(frozen=True)
class Fig1Data:
    """The plotted series: per-VM hourly activity percentages."""

    days: int
    series: dict[str, np.ndarray]

    def daily_peaks(self, vm: str) -> np.ndarray:
        """Per-day maximum activity percent (the visible Fig. 1 spikes)."""
        a = self.series[vm].reshape(self.days, 24)
        return 100.0 * a.max(axis=1)

    def render(self) -> str:
        return render(self)


def run(days: int = 6, seed: int = 42) -> Fig1Data:
    traces = fig1_traces(days=days, seed=seed)
    return Fig1Data(
        days=days,
        series={name: tr.activities for name, tr in traces.items()})


def render(data: Fig1Data) -> str:
    lines = [f"Fig. 1 — example real workloads over {data.days} days",
             f"{'VM':<5}{'mean act %':>11}{'peak act %':>11}{'idle %':>8}  daily peaks (%)"]
    for name, series in data.series.items():
        idle = 100.0 * float(np.mean(series == 0.0))
        peaks = " ".join(f"{p:4.1f}" for p in data.daily_peaks(name))
        lines.append(
            f"{name:<5}{100 * series[series > 0].mean() if (series > 0).any() else 0:>11.1f}"
            f"{100 * series.max():>11.1f}{idle:>8.1f}  {peaks}")
    lines.append("note: VM3 and VM4 receive the exact same workload (paper §VI-A.2)")
    return "\n".join(lines)


if __name__ == "__main__":
    from ..obs.log import console

    console(render(run()))
