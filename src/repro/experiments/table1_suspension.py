"""E3 — Table I: fraction of time hosts spend suspended.

Drowsy-DC (full system) vs Neat with suspension enabled ("the exact
same algorithm ... the grace time excepted", §VI-A.1).  The paper's
observations this reproduces:

* the host that ends up with the two LLMU VMs never sleeps under
  Drowsy-DC (P2 in the paper's run);
* Drowsy-DC's *global* suspended fraction beats Neat's by ~35 %
  relative, because IP-matched colocation aligns the idle periods.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.energy import RunSummary, summarize, suspension_table
from ..api import Simulation
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.hourly import HourlyConfig
from .common import HOST_NAMES, build_testbed


@dataclass
class Table1Data:
    drowsy: RunSummary
    neat: RunSummary

    @property
    def relative_improvement(self) -> float:
        """Extra suspended time of Drowsy-DC vs Neat (relative)."""
        neat = self.neat.global_suspended_fraction
        if neat == 0.0:
            return float("inf")
        return (self.drowsy.global_suspended_fraction - neat) / neat

    def render(self) -> str:
        return "\n".join([
            "Table I — fraction of time (%) hosts spent suspended",
            suspension_table([self.drowsy, self.neat], list(HOST_NAMES)),
            "",
            f"Drowsy-DC suspended time exceeds Neat's by "
            f"{100 * self.relative_improvement:.0f} % (paper: 35 %)",
        ])


def run(days: int = 7, params: DrowsyParams = DEFAULT_PARAMS,
        seed: int = 42) -> Table1Data:
    # Drowsy-DC: periodic relocation mode, grace enabled.
    bed = build_testbed(params, days=days, seed=seed)
    drowsy_result = Simulation(
        bed, "drowsy", params=params,
        config=HourlyConfig(relocate_all_mode=True,
                            power_off_empty=False)).run(days * 24)

    # Neat: same suspension algorithm without grace (it needs the IM).
    neat_params = params.replace(use_grace=False)
    bed2 = build_testbed(neat_params, days=days, seed=seed)
    neat_result = Simulation(
        bed2, "neat", params=neat_params,
        config=HourlyConfig(power_off_empty=False)).run(days * 24)

    return Table1Data(
        drowsy=summarize("Drowsy-DC", drowsy_result),
        neat=summarize("Neat", neat_result))


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
