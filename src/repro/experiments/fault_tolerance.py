"""E15 — availability under injected faults (chaos plans, DESIGN.md §14).

The paper's fault-tolerance story (§V) is qualitative: WoL is fire-and-
forget UDP, so the waking path must survive lost packets, and a
defective waking module "is replaced with an identical version".  This
experiment quantifies both on the §VI-A testbed:

* a WoL **loss-rate sweep** — the same seeded run under increasing
  magic-packet loss, showing the retry/backoff channel holding request
  SLA flat and stranding nothing while retries and backoff wait grow;
* a **primary-kill drill** — the waking-module primary dies mid-run
  under a declarative fault plan (no hand-wired crash callback, unlike
  E12) and the mirror's takeover is read off ``result.fault_summary``.

Every cell is an independent ``(plan, seed)`` pair, so the sweep shards
over :class:`~repro.sim.sweep.SweepRunner` workers byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import FaultPlan, WakingServiceFaults, WolFaults
from ..sim.sweep import SweepRunner

#: §V sweep points: magic-packet loss probability per send attempt.
LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class FaultCell:
    """One loss-rate cell (top-level + frozen so spawn workers pickle it)."""

    loss_probability: float
    days: int = 2
    seed: int = 42


@dataclass(frozen=True)
class FaultRow:
    loss_probability: float
    requests: int
    sla_fraction: float
    wake_requests: int
    wol_sent: int
    wol_dropped: int
    wol_retries: int
    wol_abandoned: int
    backoff_wait_s: float
    stranded_requests: int


def _build_sim(days: int, seed: int, plan: FaultPlan | None):
    from ..api import Simulation
    from ..sim.event_driven import EventConfig
    from .common import build_testbed

    bed = build_testbed(days=days, seed=seed)
    return Simulation(bed, "drowsy", "event",
                      config=EventConfig(relocate_all_mode=True, seed=seed),
                      seed=seed, faults=plan)


def run_fault_cell(cell: FaultCell) -> FaultRow:
    """Run one loss-rate point (top-level for spawn workers)."""
    plan = FaultPlan(name="wol-loss",
                     wol=WolFaults(loss_probability=cell.loss_probability))
    sim = _build_sim(cell.days, cell.seed, plan)
    result = sim.run(cell.days * 24)
    summary = result.request_summary or {}
    faults = result.fault_summary
    return FaultRow(
        loss_probability=cell.loss_probability,
        requests=int(summary.get("requests", 0)),
        sla_fraction=float(summary.get("sla_fraction", 0.0)),
        wake_requests=int(summary.get("wake_requests", 0)),
        wol_sent=int(result.wol_sent or 0),
        wol_dropped=faults.wol_dropped if faults else 0,
        wol_retries=faults.wol_retries if faults else 0,
        wol_abandoned=faults.wol_abandoned if faults else 0,
        backoff_wait_s=faults.backoff_wait_s if faults else 0.0,
        stranded_requests=faults.stranded_requests if faults else 0,
    )


@dataclass
class FaultToleranceData:
    rows: list[FaultRow]
    kill_failovers: int
    kill_stranded: int
    kill_journaled: int
    kill_sla_fraction: float

    @property
    def all_served(self) -> bool:
        """No loss rate stranded a request (the §V resilience claim)."""
        return all(row.stranded_requests == 0 for row in self.rows)

    @property
    def failover_survived(self) -> bool:
        return self.kill_failovers >= 1 and self.kill_stranded == 0

    def render(self) -> str:
        header = (f"{'loss':>6}{'requests':>10}{'SLA %':>8}{'wakes':>7}"
                  f"{'WoL':>6}{'drop':>6}{'retry':>7}{'aband':>7}"
                  f"{'backoff s':>11}{'stranded':>10}")
        lines = ["E15 — availability vs WoL loss rate (event backend)",
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.loss_probability:>6.2f}{row.requests:>10}"
                f"{100 * row.sla_fraction:>7.2f}%{row.wake_requests:>7}"
                f"{row.wol_sent:>6}{row.wol_dropped:>6}{row.wol_retries:>7}"
                f"{row.wol_abandoned:>7}{row.backoff_wait_s:>11.1f}"
                f"{row.stranded_requests:>10}")
        lines += [
            "",
            f"all requests served at every loss rate  "
            f"{'YES' if self.all_served else 'NO'}",
            "",
            "primary-kill drill (declarative fault plan):",
            f"failovers            {self.kill_failovers}",
            f"window journal calls {self.kill_journaled}",
            f"stranded requests    {self.kill_stranded}",
            f"SLA after failover   {100 * self.kill_sla_fraction:.2f} %",
            f"service survived     "
            f"{'YES' if self.failover_survived else 'NO'}",
        ]
        return "\n".join(lines)


def run(days: int = 2, seed: int = 42,
        workers: int = 1) -> FaultToleranceData:
    cells = [FaultCell(loss, days=days, seed=seed) for loss in LOSS_RATES]
    rows = SweepRunner(workers=workers).map(run_fault_cell, cells)

    kill_plan = FaultPlan(
        name="kill-primary",
        waking=WakingServiceFaults(kill_primary_at_h=(days * 24) / 2))
    sim = _build_sim(days, seed, kill_plan)
    result = sim.run(days * 24)
    faults = result.fault_summary
    summary = result.request_summary or {}
    return FaultToleranceData(
        rows=rows,
        kill_failovers=faults.failovers if faults else 0,
        kill_stranded=faults.stranded_requests if faults else 0,
        kill_journaled=faults.window_journaled_calls if faults else 0,
        kill_sla_fraction=float(summary.get("sla_fraction", 0.0)),
    )


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
