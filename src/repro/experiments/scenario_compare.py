"""E14 — scenario gallery: controllers across the built-in scenarios.

The paper's evaluation varies workload shape the least; the scenario
engine (DESIGN.md §12) is where this reproduction grows past it.  This
experiment runs every built-in scenario under each controller on the
hourly simulator and tabulates energy, drowsy fraction and migrations —
the §VI-B comparison generalized from "one synthetic fleet" to diurnal
offices, flash crowds, heterogeneous fleets, maintenance churn and
ephemeral-VM churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scenarios import ScenarioTable, run_scenario_sweep, scenario_grid
from ..scenarios.registry import list_scenarios


@dataclass
class ScenarioCompareData:
    """Rendered view over the underlying scenario sweep table."""

    table: ScenarioTable
    controllers: tuple[str, ...]

    def render(self) -> str:
        lines = [self.table.render(), ""]
        # Per-scenario energy ranking: which controller wins where.
        by_scenario: dict[str, list] = {}
        for row in self.table.rows:
            by_scenario.setdefault(row.scenario, []).append(row)
        for scenario, rows in by_scenario.items():
            best = min(rows, key=lambda r: r.energy_kwh)
            others = ", ".join(f"{r.controller} {r.energy_kwh:.1f}"
                               for r in rows if r is not best)
            lines.append(f"{scenario:<20} best: {best.controller} "
                         f"({best.energy_kwh:.1f} kWh) vs {others}")
        return "\n".join(lines)


def run(scenarios: tuple[str, ...] | None = None,
        controllers: tuple[str, ...] = ("drowsy", "neat", "oasis"),
        seed: int = 0, scale: float = 1.0, hours: int = 0,
        workers: int = 1) -> ScenarioCompareData:
    """Run the gallery; ``workers > 1`` shards the independent
    (scenario × controller) cells over a SweepRunner process pool."""
    if scenarios is None:
        scenarios = tuple(s.name for s in list_scenarios())
    cells = scenario_grid(scenarios, controllers=controllers, seeds=(seed,),
                          simulator="hourly", scale=scale, hours=hours)
    table = run_scenario_sweep(cells, workers=workers)
    return ScenarioCompareData(table=table, controllers=tuple(controllers))


if __name__ == "__main__":
    from ..obs.log import console

    console(run(scale=0.5, hours=72).render())
