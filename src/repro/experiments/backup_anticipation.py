"""E10 — §VI-A.3: timer-driven workloads wake without penalty.

"We also experimented Drowsy-DC with applications that rely on timers
for triggering their activity (a backup service in our case). ... no
performance degradation ... because the waking module anticipates the
timer expiration date — which is provided in advance by the suspending
module, thus it wakes up the drowsy server ahead of time."

We run a backup VM (daily cron at 2 am) on the event stack and measure
the *anticipation margin*: how long before each timer expiry the host
was back in S0.  With ahead-of-time wake the margin is positive (no
degradation); with the optimization disabled the host is still resuming
when the timer fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import Simulation
from ..cluster.datacenter import DataCenter
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..cluster.resources import TESTBED_HOST, TESTBED_VM
from ..cluster.vm import VM, ServiceTimer
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.event_driven import EventConfig
from ..traces.synthetic import daily_backup_trace


@dataclass
class BackupData:
    #: host availability margin before each 2 am timer expiry (seconds);
    #: positive = host was awake when the timer fired.
    margins_s: list[float]
    suspended_fraction: float
    ahead_of_time: bool

    @property
    def all_anticipated(self) -> bool:
        return all(m >= 0.0 for m in self.margins_s)

    def render(self) -> str:
        margins = ", ".join(f"{m:+.2f}" for m in self.margins_s)
        return "\n".join([
            f"backup anticipation (ahead-of-time wake: {self.ahead_of_time})",
            f"  host suspended fraction : {100 * self.suspended_fraction:.0f} %",
            f"  wake margins at expiry  : [{margins}] s",
            f"  no performance impact   : {'YES' if self.all_anticipated else 'NO'}",
        ])


def run(days: int = 3, params: DrowsyParams = DEFAULT_PARAMS,
        backup_hour: int = 2, seed: int = 42) -> BackupData:
    host = Host("B1", TESTBED_HOST, params)
    dc = DataCenter([host], params)
    trace = daily_backup_trace(days=days, backup_hour=backup_hour)
    vm = VM("backup-vm", trace, TESTBED_VM, params=params, interactive=False,
            timers=(ServiceTimer("cron-backup", period_s=24 * 3600.0,
                                 first_fire_s=backup_hour * 3600.0),))
    dc.place(vm, host)

    margins: list[float] = []

    def watch(hour_index: int, now: float) -> None:
        # At each backup hour, how long had the host been available?
        if hour_index % 24 == backup_hour and hour_index > 0:
            if host.state is PowerState.ON:
                last_on = max((tr.time for tr in host.transitions
                               if tr.to_state is PowerState.ON), default=0.0)
                margins.append(now - last_on)
            else:
                # Still down/transitioning: negative margin (penalty).
                margins.append(-(params.resume_latency_s))

    sim = Simulation(
        dc, "neat", "event", params=params,
        config=EventConfig(seed=seed), observers=(watch,))
    result = sim.run(days * 24)
    return BackupData(
        margins_s=margins,
        suspended_fraction=result.suspended_fraction_by_host["B1"],
        ahead_of_time=params.ahead_of_time_wake)


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
    console("")
    console(run(params=DEFAULT_PARAMS.replace(ahead_of_time_wake=False)).render())
