"""E12 — §V: waking-module fault tolerance under failure injection.

"Each waking module monitors — via a heart beat mechanism — and mirrors
another one.  In this way, when a waking module is defective, it is
replaced with an identical version."

We run the event-driven testbed, crash the primary waking module partway
through, and verify that service continues: the mirror takes over within
the heartbeat window, scheduled wakes registered *before* the crash
still fire, and the request SLA is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.sla import SLAReport, sla_report
from ..api import Simulation
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.event_driven import EventConfig
from .common import build_testbed


@dataclass
class FailoverData:
    failovers: int
    detection_delay_s: float
    wol_after_crash: int
    resumes_after_crash: int
    sla: SLAReport

    @property
    def service_continued(self) -> bool:
        """Hosts kept waking after the primary died."""
        return self.failovers == 1 and self.resumes_after_crash > 0

    def render(self) -> str:
        return "\n".join([
            "§V — waking-module failure injection",
            f"failovers                 {self.failovers}",
            f"worst-case detection      {self.detection_delay_s:.1f} s",
            f"WoL sent after the crash  {self.wol_after_crash}",
            f"host resumes after crash  {self.resumes_after_crash}",
            f"SLA after failover        {100 * self.sla.sla_fraction:.2f} % "
            f"within {1000 * self.sla.sla_bound_s:.0f} ms "
            f"({'MET' if self.sla.sla_met else 'VIOLATED'})",
            f"service continued         {'YES' if self.service_continued else 'NO'}",
        ])


def run(days: int = 2, params: DrowsyParams = DEFAULT_PARAMS,
        crash_hour: int | None = None, seed: int = 42) -> FailoverData:
    bed = build_testbed(params, days=days, seed=seed)
    sim = Simulation(
        bed, "drowsy", "event", params=params,
        config=EventConfig(relocate_all_mode=True, seed=seed))
    # Fault injection drives engine internals (the waking service and
    # the event clock) directly — that is what ``engine`` is for.
    engine = sim.engine

    crash_at_h = crash_hour if crash_hour is not None else (days * 24) // 2
    resumes_at_crash = {}

    def crash() -> None:
        engine.waking.fail_primary()
        for host in bed.dc.hosts:
            resumes_at_crash[host.name] = host.resume_count

    engine.sim.schedule_at(crash_at_h * 3600.0, crash)
    sim.run(days * 24)

    resumes_after = sum(h.resume_count - resumes_at_crash.get(h.name, 0)
                        for h in bed.dc.hosts)
    return FailoverData(
        failovers=engine.waking.failovers,
        detection_delay_s=engine.waking.detection_delay_s,
        wol_after_crash=engine.waking.mirror.wol_sent,
        resumes_after_crash=resumes_after,
        sla=sla_report(engine.switch.log),
    )


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
