"""E8 — §VI-B: simulation study (CloudSim in the paper).

Sweeps the fraction of LLMI VMs in a fleet and compares the energy of
Drowsy-DC, Neat (+S3) and Oasis.  The paper's claims this reproduces:

* "Depending on the fraction of LLMI VMs in the DC, our system may
  improve up to 82 % upon vanilla OpenStack Neat";
* "our solution outperforms Oasis ... by an average of 81 %"
  (Oasis keeps consolidation servers awake and reacts instead of
  predicting, so its savings saturate early).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.energy import improvement_pct
from ..api import RunResult, Simulation
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..sim.hourly import HourlyConfig
from .common import build_fleet


@dataclass(frozen=True)
class SweepPoint:
    llmi_fraction: float
    drowsy_kwh: float
    neat_kwh: float
    neat_no_s3_kwh: float
    oasis_kwh: float

    @property
    def drowsy_vs_neat_pct(self) -> float:
        return improvement_pct(self.neat_kwh, self.drowsy_kwh)

    @property
    def drowsy_vs_neat_no_s3_pct(self) -> float:
        return improvement_pct(self.neat_no_s3_kwh, self.drowsy_kwh)

    @property
    def drowsy_vs_oasis_pct(self) -> float:
        return improvement_pct(self.oasis_kwh, self.drowsy_kwh)


@dataclass
class SweepData:
    points: list[SweepPoint]
    n_hosts: int
    n_vms: int
    hours: int

    @property
    def max_improvement_vs_neat_pct(self) -> float:
        return max(p.drowsy_vs_neat_no_s3_pct for p in self.points)

    @property
    def mean_improvement_vs_oasis_pct(self) -> float:
        vals = [p.drowsy_vs_oasis_pct for p in self.points]
        return sum(vals) / len(vals)

    def render(self) -> str:
        header = (f"{'LLMI %':>7}{'Drowsy kWh':>12}{'Neat+S3':>9}{'Neat':>8}"
                  f"{'Oasis':>8}{'vs Neat':>9}{'vs Oasis':>9}")
        lines = [
            f"§VI-B — fleet sweep: {self.n_vms} VMs on {self.n_hosts} hosts, "
            f"{self.hours} h",
            header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{100 * p.llmi_fraction:>7.0f}{p.drowsy_kwh:>12.1f}"
                f"{p.neat_kwh:>9.1f}{p.neat_no_s3_kwh:>8.1f}{p.oasis_kwh:>8.1f}"
                f"{p.drowsy_vs_neat_no_s3_pct:>8.0f}%{p.drowsy_vs_oasis_pct:>8.0f}%")
        lines += [
            "",
            f"max improvement vs vanilla Neat : {self.max_improvement_vs_neat_pct:.0f} % "
            f"(paper: up to 81-82 %)",
            f"mean improvement vs Oasis       : {self.mean_improvement_vs_oasis_pct:.0f} % "
            f"(paper: average 81 %)",
        ]
        return "\n".join(lines)


def _run(dc, controller, params: DrowsyParams, hours: int,
         suspend: bool = True,
         relocate: bool = False) -> tuple[Simulation, RunResult]:
    """One sweep-variant run; returns the simulation too, for variants
    that read controller state afterwards (Oasis transfer energy)."""
    sim = Simulation(
        dc, controller, "hourly", params=params,
        config=HourlyConfig(suspend_enabled=suspend,
                            relocate_all_mode=relocate,
                            power_off_empty=True, update_models=relocate))
    return sim, sim.run(hours)


@dataclass(frozen=True)
class _PointCell:
    """One independent (LLMI fraction × system variant) simulation."""

    frac: float
    variant: str  # drowsy | neat | neat_no_s3 | oasis
    n_hosts: int
    n_vms: int
    hours: int
    seed: int
    params: DrowsyParams


def _run_point_cell(cell: _PointCell) -> tuple[float, str, float]:
    """Run one cell (top-level so sweep workers can pickle it)."""
    params = cell.params
    if cell.variant == "drowsy":
        dc = build_fleet(cell.n_hosts, cell.n_vms, cell.frac, cell.hours,
                         params, seed=cell.seed)
        _, res = _run(dc, "drowsy", params, cell.hours, relocate=True)
        kwh = res.total_energy_kwh
    elif cell.variant in ("neat", "neat_no_s3"):
        neat_params = params.replace(use_grace=False)
        dc = build_fleet(cell.n_hosts, cell.n_vms, cell.frac, cell.hours,
                         neat_params, seed=cell.seed)
        _, res = _run(dc, "neat", neat_params,
                      cell.hours, suspend=cell.variant == "neat")
        kwh = res.total_energy_kwh
    elif cell.variant == "oasis":
        dc = build_fleet(cell.n_hosts, cell.n_vms, cell.frac, cell.hours,
                         params, seed=cell.seed)
        sim, res = _run(dc, "oasis", params, cell.hours)
        # Oasis pays for its partial-migration transfers too.
        kwh = (res.total_energy_kwh
               + sim.controller.transfer_energy_j / 3.6e6)
    else:  # pragma: no cover - guarded by the grid construction
        raise ValueError(f"unknown variant {cell.variant!r}")
    return (cell.frac, cell.variant, kwh)


_VARIANTS = ("drowsy", "neat", "neat_no_s3", "oasis")


def run(llmi_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
        n_hosts: int = 10, n_vms: int = 40, days: int = 7,
        params: DrowsyParams = DEFAULT_PARAMS, seed: int = 7,
        workers: int = 1,
        seeds: tuple[int, ...] | None = None) -> SweepData:
    """Run the §VI-B sweep; ``workers > 1`` shards the independent
    (fraction × system × seed) cells over a
    :class:`~repro.sim.sweep.SweepRunner` process pool.

    ``seeds`` (default: just ``seed``) shards the sweep at seed
    granularity: every (fraction, variant, seed) triple is its own cell
    and the per-point energies are seed means.  Drowsy's relocate-mode
    cells — whose local-search relocation dominates sweep wall-clock at
    128+ VMs — are dispatched *first* so they overlap the cheap reactive
    baselines instead of straggling at the tail; the reduction is keyed,
    not positional, so tables are byte-identical for any worker count or
    dispatch order.
    """
    from ..sim.sweep import SweepRunner

    hours = days * 24
    if seeds is None:
        seeds = (seed,)
    cells = [_PointCell(frac=frac, variant=v, n_hosts=n_hosts, n_vms=n_vms,
                        hours=hours, seed=s, params=params)
             for frac in llmi_fractions for v in _VARIANTS for s in seeds]
    # Longest-job-first dispatch (stable within each class).
    cells.sort(key=lambda c: c.variant != "drowsy")
    results = SweepRunner(workers=workers).map(_run_point_cell, cells)
    kwh_by_cell = {(cell.frac, cell.variant, cell.seed): value
                   for cell, (_, _, value) in zip(cells, results)}

    def _mean_kwh(frac: float, variant: str) -> float:
        return sum(kwh_by_cell[(frac, variant, s)]
                   for s in seeds) / len(seeds)

    points = [SweepPoint(llmi_fraction=frac,
                         drowsy_kwh=_mean_kwh(frac, "drowsy"),
                         neat_kwh=_mean_kwh(frac, "neat"),
                         neat_no_s3_kwh=_mean_kwh(frac, "neat_no_s3"),
                         oasis_kwh=_mean_kwh(frac, "oasis"))
              for frac in llmi_fractions]
    return SweepData(points=points, n_hosts=n_hosts, n_vms=n_vms, hours=hours)


if __name__ == "__main__":
    from ..obs.log import console

    console(run().render())
