"""Command-line entry point: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig2_colocation
    python -m repro run energy_totals --days 5
    python -m repro run-all --quick
    python -m repro scenario run steady --checkpoint-dir ckpts
    python -m repro list checkpoints --dir ckpts
    python -m repro resume ckpts
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from contextlib import contextmanager

#: Experiment name -> (module, kwargs accepted from the CLI).
EXPERIMENTS: dict[str, dict] = {
    "fig1_traces": {"args": {"days": int}},
    "fig2_colocation": {"args": {"days": int}},
    "table1_suspension": {"args": {"days": int}},
    "energy_totals": {"args": {"days": int}},
    "sla_latency": {"args": {"days": int}},
    "fig4_im_quality": {"args": {"years": int}},
    "suspending_eval": {"args": {}},
    "fleet_sweep": {"args": {"n_hosts": int, "n_vms": int, "days": int,
                             "workers": int, "seeds": lambda s: tuple(
                                 int(x) for x in str(s).split(","))}},
    "scalability": {"args": {"workers": int}},
    "backup_anticipation": {"args": {"days": int}},
    "detector_study": {"args": {"n_hosts": int, "n_vms": int, "days": int}},
    "waking_failover": {"args": {"days": int}},
    "fault_tolerance": {"args": {"days": int, "workers": int}},
    "initial_placement": {"args": {"days": int}},
    "scenario_compare": {"args": {"workers": int, "scale": float,
                                  "hours": int}},
}

#: Reduced-scale overrides for ``run-all --quick``.
QUICK_OVERRIDES: dict[str, dict] = {
    "fig2_colocation": {"days": 3},
    "table1_suspension": {"days": 3},
    "energy_totals": {"days": 3},
    "sla_latency": {"days": 1},
    "fig4_im_quality": {"years": 1},
    "fleet_sweep": {"n_hosts": 4, "n_vms": 16, "days": 3},
    "backup_anticipation": {"days": 2},
    "detector_study": {"n_hosts": 4, "n_vms": 12, "days": 2},
    "waking_failover": {"days": 1},
    "fault_tolerance": {"days": 1},
    "initial_placement": {"days": 2},
    "scenario_compare": {"scale": 0.25, "hours": 24},
}


def _load(name: str):
    if name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; try: python -m repro list")
    return importlib.import_module(f"repro.experiments.{name}")


def _print_experiments() -> None:
    print("available experiments (python -m repro run <name>):")
    for name in EXPERIMENTS:
        module = _load(name)
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22} {doc}")


def _print_controllers() -> None:
    from .api import controllers

    print("registered controllers (run/sweep --controller(s) <name>):")
    for name, summary in controllers.describe().items():
        print(f"  {name:<22} {summary}")


def _print_backends() -> None:
    from .api import backends

    print('registered backends (Simulation(..., backend="<name>")):')
    for name, summary in backends.describe().items():
        config = backends.get(name).config_type.__name__
        print(f"  {name:<10} [{config}] {summary}")


def _print_scenarios() -> None:
    from .scenarios import list_scenarios

    print("built-in scenarios (python -m repro scenario run <name>):")
    for spec in list_scenarios():
        churn = " [churn]" if spec.churn.enabled else ""
        faults = " [faults]" if spec.faults is not None else ""
        print(f"  {spec.name:<20} {spec.n_hosts:>3} hosts, {spec.n_vms:>3} "
              f"VMs, {spec.horizon_hours} h, arrivals={spec.arrivals.kind}"
              f"{churn}{faults}")
        print(f"  {'':<20} {spec.description}")


def _print_checkpoints(directory: str = ".") -> None:
    from .resilience import list_checkpoints

    infos = list_checkpoints(directory)
    if not infos:
        print(f"no resumable checkpoints under {directory}")
        return
    print(f"resumable checkpoints under {directory} "
          f"(python -m repro resume <path>):")
    for info in infos:
        print(f"  {info.describe()}")


#: ``python -m repro list <what>``: every listing goes through the
#: registries' ``describe()`` (or the scenario registry), replacing the
#: per-kind ad-hoc loops that used to live on separate subcommands.
_LISTINGS = {
    "experiments": _print_experiments,
    "controllers": _print_controllers,
    "backends": _print_backends,
    "scenarios": _print_scenarios,
}


def cmd_list(args) -> int:
    what = getattr(args, "what", None) or "experiments"
    if what == "checkpoints":
        _print_checkpoints(getattr(args, "dir", None) or ".")
        return 0
    _LISTINGS[what]()
    return 0


@contextmanager
def _checkpoint_default(args):
    """Wire ``--checkpoint-dir``/``--checkpoint-every`` (DESIGN.md §16):
    every simulation built inside the block snapshots itself at hour
    boundaries, resumable with ``python -m repro resume <dir>``.  The
    process default is cleared on exit so nothing leaks past the
    command (``main`` is also called in-process by tests)."""
    ckpt_dir = getattr(args, "checkpoint_dir", None)
    if not ckpt_dir:
        yield
        return
    from .resilience import CheckpointPolicy
    from .resilience.checkpoint import set_default_policy

    set_default_policy(CheckpointPolicy(
        dir=ckpt_dir, every_h=getattr(args, "checkpoint_every", None) or 1))
    try:
        yield
    finally:
        set_default_policy(None)


@contextmanager
def _telemetry_default(args):
    """Wire the observability flags (DESIGN.md §17): every simulation
    built inside the block records metrics / writes a Chrome trace /
    profiles itself, without the experiment modules knowing.  Like the
    checkpoint default, the process default is cleared on exit so
    nothing leaks past the command."""
    trace = getattr(args, "trace", None)
    profile = getattr(args, "profile", None)
    metrics = getattr(args, "metrics", False)
    progress = getattr(args, "progress", False)
    if not (trace or profile or metrics or progress):
        yield
        return
    from .obs import TelemetryConfig, set_default_telemetry

    set_default_telemetry(TelemetryConfig(
        metrics=bool(metrics), trace=trace,
        profile="cprofile" if profile else None,
        profile_out=profile or "repro-profile.pstats",
        progress=bool(progress)))
    try:
        yield
    finally:
        set_default_telemetry(None)


def _telemetry_note(args) -> None:
    """Tell the user where the artifacts landed (paths are uniquified
    per simulation, so multi-run experiments number them)."""
    if getattr(args, "trace", None):
        print(f"\n[trace in {args.trace} — open with Perfetto: "
              f"https://ui.perfetto.dev]")
    if getattr(args, "profile", None):
        print(f"[profile in {args.profile} — inspect with "
              f"python -m pstats {args.profile}]")


def cmd_run(args) -> int:
    module = _load(args.name)
    kwargs = {}
    for key, caster in EXPERIMENTS[args.name]["args"].items():
        value = getattr(args, key, None)
        if value is not None:
            kwargs[key] = caster(value)
    t0 = time.perf_counter()
    with _checkpoint_default(args), _telemetry_default(args):
        data = module.run(**kwargs)
    elapsed = time.perf_counter() - t0
    print(data.render() if hasattr(data, "render") else data)
    if getattr(args, "checkpoint_dir", None):
        print(f"\n[checkpoints in {args.checkpoint_dir}; resume an "
              f"interrupted run with: python -m repro resume "
              f"{args.checkpoint_dir}]")
    _telemetry_note(args)
    print(f"\n[{args.name} finished in {elapsed:.1f} s]")
    return 0


def cmd_resume(args) -> int:
    """Continue an interrupted checkpointed run to its horizon."""
    from .api import Simulation
    from .resilience import CheckpointError

    try:
        sim = Simulation.resume(args.path)
    except CheckpointError as exc:
        raise SystemExit(str(exc)) from None
    t0 = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - t0
    slatah = "-" if result.slatah is None else f"{result.slatah:.4f}"
    print(f"resumed {sim.backend_name} run -> "
          f"{result.total_energy_kwh:.1f} kWh, SLATAH {slatah}, "
          f"{result.migrations} migrations, "
          f"{result.total_suspend_cycles} suspends")
    for out in args.out or ():
        result.save(out)
        print(f"[result written to {out}]")
    print(f"\n[resume finished in {elapsed:.1f} s]")
    return 0


def cmd_run_all(args) -> int:
    failures = []
    for name in EXPERIMENTS:
        module = _load(name)
        kwargs = QUICK_OVERRIDES.get(name, {}) if args.quick else {}
        print(f"=== {name} {kwargs or ''} ===")
        try:
            data = module.run(**kwargs)
            print(data.render() if hasattr(data, "render") else data)
        except Exception as exc:  # pragma: no cover - surfacing only
            failures.append(name)
            print(f"FAILED: {exc!r}")
        print()
    if failures:
        print(f"failed experiments: {', '.join(failures)}")
        return 1
    return 0


def _validated_controllers(spec: str) -> tuple[str, ...]:
    """Parse a comma-separated controller list, failing fast on typos.

    Names resolve through the one registry (``repro.api.controllers``)
    every other entry point uses — anything registered there, including
    the ``"none"`` baseline, is sweepable from the CLI.
    """
    from .api import controllers as registry

    controllers = tuple(spec.split(","))
    for name in controllers:
        try:
            registry.get(name)
        except ValueError as exc:  # the registry's own fail-fast message
            raise SystemExit(str(exc)) from None
    return controllers


def _check_out_targets(table_cls, outs) -> None:
    """Fail fast on unusable --out targets (bad suffix, missing
    pyarrow, unwritable directory) *before* spending hours on cells."""
    for out in outs or ():
        try:
            table_cls.check_writable(out)
        except (ValueError, RuntimeError) as exc:
            raise SystemExit(f"--out {out}: {exc}") from None


def _sweep_journal(args):
    """``--checkpoint-dir`` on a sweep: per-cell journal + supervised
    respawn.  Completed cells persist as they land; rerunning the same
    command resumes, skipping the journaled cells (DESIGN.md §16)."""
    ckpt_dir = getattr(args, "checkpoint_dir", None)
    if not ckpt_dir:
        return None
    from pathlib import Path

    from .resilience import SweepJournal

    return SweepJournal(Path(ckpt_dir) / "sweep.journal")


def cmd_sweep(args) -> int:
    """Sharded (controller × fleet-size × seed) sweep (DESIGN.md §9)."""
    from .sim.sweep import SweepRunner, SweepTable, grid

    controllers = _validated_controllers(args.controllers)
    _check_out_targets(SweepTable, args.out)
    cells = grid(controllers=controllers,
                 sizes=tuple(int(s) for s in args.sizes.split(",")),
                 seeds=tuple(int(s) for s in args.seeds.split(",")),
                 hours=args.hours, llmi_fraction=args.llmi)
    journal = _sweep_journal(args)
    t0 = time.perf_counter()
    table = SweepRunner(workers=args.workers, journal=journal,
                        progress=getattr(args, "progress", False)).run(cells)
    elapsed = time.perf_counter() - t0
    if journal is not None:
        journal.clear()  # the sweep completed; next invocation is fresh
    print(table.render())
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(table.to_csv())
        print(f"\n[csv written to {args.csv}]")
    for out in args.out or ():
        table.save(out)
        print(f"\n[table written to {out}]")
    print(f"\n[{len(cells)} cells on {args.workers} worker(s) "
          f"in {elapsed:.1f} s]")
    return 0


def cmd_scenario_list(_args) -> int:
    _print_scenarios()
    return 0


def cmd_scenario_run(args) -> int:
    """Run one scenario under one controller on one (or both) simulators."""
    from .scenarios import ScenarioCell, get_scenario, run_scenario_cell

    # Fail fast with clean messages, like `scenario sweep` does.  This
    # flag names ONE controller — no comma-splitting, or "a,b" would
    # pass validation and blow up in the cell runner.
    try:
        get_scenario(args.name)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    from .api import controllers as registry

    try:
        registry.get(args.controller)
    except ValueError as exc:  # the registry's own fail-fast message
        raise SystemExit(str(exc)) from None
    simulators = (("hourly", "event") if args.simulator == "both"
                  else (args.simulator,))
    t0 = time.perf_counter()
    with _checkpoint_default(args), _telemetry_default(args):
        for simulator in simulators:
            row = run_scenario_cell(ScenarioCell(
                scenario=args.name, controller=args.controller,
                seed=args.seed, simulator=simulator, scale=args.scale,
                hours=args.hours or 0,
                shards=args.shards, workers=args.shard_workers))
            print(f"[{simulator}] {row.scenario}: {row.n_vms} VMs on "
                  f"{row.n_hosts} hosts x {row.hours} h under "
                  f"{row.controller} -> {row.energy_kwh:.1f} kWh, "
                  f"{100 * row.suspended_fraction:.1f} % drowsy, "
                  f"{row.migrations} migrations, "
                  f"{row.suspend_cycles} suspends, "
                  f"churn +{row.vms_added}/-{row.vms_removed}")
    if getattr(args, "checkpoint_dir", None):
        print(f"\n[checkpoints in {args.checkpoint_dir}; resume an "
              f"interrupted run with: python -m repro resume "
              f"{args.checkpoint_dir}]")
    _telemetry_note(args)
    print(f"\n[scenario {args.name} finished in "
          f"{time.perf_counter() - t0:.1f} s]")
    return 0


def cmd_scenario_sweep(args) -> int:
    """Sharded scenario × controller × seed sweep (DESIGN.md §12)."""
    from .scenarios import (
        ScenarioTable,
        list_scenarios,
        run_scenario_sweep,
        scenario_grid,
    )

    scenarios = (tuple(args.scenarios.split(",")) if args.scenarios
                 else tuple(s.name for s in list_scenarios()))
    controllers = _validated_controllers(args.controllers)
    _check_out_targets(ScenarioTable, args.out)
    try:
        cells = scenario_grid(
            scenarios, controllers=controllers,
            seeds=tuple(int(s) for s in args.seeds.split(",")),
            simulator=args.simulator, scale=args.scale, hours=args.hours or 0)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    journal = _sweep_journal(args)
    t0 = time.perf_counter()
    table = run_scenario_sweep(cells, workers=args.workers,
                               journal=journal,
                               progress=getattr(args, "progress", False))
    elapsed = time.perf_counter() - t0
    if journal is not None:
        journal.clear()  # the sweep completed; next invocation is fresh
    print(table.render())
    for out in args.out or ():
        table.save(out)
        print(f"\n[table written to {out}]")
    print(f"\n[{len(cells)} cells on {args.workers} worker(s) "
          f"in {elapsed:.1f} s]")
    return 0


def cmd_report(args) -> int:
    from .analysis.report import generate_report

    report = generate_report(days=args.days, years=args.years)
    print(report.render())
    return 0 if report.all_hold else 1


def _add_obs_args(parser, sweep: bool = False) -> None:
    """The observability flags (DESIGN.md §17), one spelling everywhere.

    Sweeps get only ``--progress`` (a cells-done line); single runs get
    the full set — none of them changes a single result byte.
    """
    parser.add_argument(
        "--progress", action="store_true",
        help="live progress on stderr (TTY only; results unchanged)")
    if sweep:
        return
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome trace-event JSON of the run (open with "
             "https://ui.perfetto.dev; results unchanged)")
    parser.add_argument(
        "--profile", metavar="PATH",
        help="cProfile the run and dump pstats to PATH "
             "(inspect with python -m pstats PATH)")
    parser.add_argument(
        "--metrics", action="store_true",
        help="record per-hour metrics on every simulation "
             "(surfaced as RunResult.telemetry; results unchanged)")


def _add_checkpoint_args(parser, sweep: bool = False) -> None:
    """The crash-safety flags (DESIGN.md §16), one spelling everywhere."""
    if sweep:
        parser.add_argument(
            "--checkpoint-dir", dest="checkpoint_dir",
            help="journal finished cells under this directory and "
                 "supervise the workers; rerunning the identical sweep "
                 "command resumes, recomputing only the missing cells")
        return
    parser.add_argument(
        "--checkpoint-dir", dest="checkpoint_dir",
        help="snapshot every simulation at hour boundaries into this "
             "directory (resume with: python -m repro resume <dir>)")
    parser.add_argument(
        "--checkpoint-every", dest="checkpoint_every", type=int,
        help="simulated hours between snapshots (default 1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Drowsy-DC reproduction experiment runner")
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="repro.* logging on stderr (-v INFO, -vv DEBUG)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="only errors on stderr (overrides -v)")
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser(
        "list",
        help="list experiments, controllers, backends, scenarios or "
             "resumable checkpoints")
    lister.add_argument("what", nargs="?", default="experiments",
                        choices=tuple(_LISTINGS) + ("checkpoints",))
    lister.add_argument("--dir", default=".",
                        help="directory to scan (list checkpoints)")
    lister.set_defaults(fn=cmd_list)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("name")
    run.add_argument("--days", type=int)
    run.add_argument("--years", type=int)
    run.add_argument("--hours", type=int,
                     help="horizon override (scenario_compare)")
    run.add_argument("--scale", type=float,
                     help="fleet scale multiplier (scenario_compare)")
    run.add_argument("--n-hosts", dest="n_hosts", type=int)
    run.add_argument("--n-vms", dest="n_vms", type=int)
    run.add_argument("--workers", type=int,
                     help="worker processes for shardable experiments")
    run.add_argument("--seeds",
                     help="comma-separated fleet seeds (fleet_sweep: one "
                          "cell per seed, results averaged)")
    _add_checkpoint_args(run)
    _add_obs_args(run)
    run.set_defaults(fn=cmd_run)

    resume = sub.add_parser(
        "resume",
        help="continue an interrupted checkpointed run to its horizon")
    resume.add_argument("path",
                        help="a .ckpt file, or a directory (the most "
                             "advanced checkpoint in it is used)")
    resume.add_argument("--out", action="append",
                        help="persist the result; format from the suffix: "
                             ".csv, .sqlite (append) or .parquet "
                             "(repeatable)")
    resume.set_defaults(fn=cmd_resume)

    sweep = sub.add_parser(
        "sweep",
        help="sharded controller x fleet-size x seed sweep (multi-core)")
    sweep.add_argument("--controllers", default="drowsy,neat,oasis",
                       help="comma-separated controller names")
    sweep.add_argument("--sizes", default="32,64",
                       help="comma-separated fleet sizes (VM counts)")
    sweep.add_argument("--seeds", default="7",
                       help="comma-separated fleet seeds")
    sweep.add_argument("--hours", type=int, default=72)
    sweep.add_argument("--llmi", type=float, default=0.5,
                       help="LLMI fraction of each fleet")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (spawn), 1 = serial")
    sweep.add_argument("--csv", help="also write the tidy table as CSV")
    sweep.add_argument("--out", action="append",
                       help="persist the tidy table; format from the "
                            "suffix: .csv, .sqlite (append) or .parquet "
                            "(repeatable)")
    _add_checkpoint_args(sweep, sweep=True)
    _add_obs_args(sweep, sweep=True)
    sweep.set_defaults(fn=cmd_sweep)

    scenario = sub.add_parser(
        "scenario",
        help="declarative workload scenarios (list | run | sweep)")
    ssub = scenario.add_subparsers(dest="scenario_command", required=True)
    ssub.add_parser("list", help="list built-in scenarios").set_defaults(
        fn=cmd_scenario_list)

    srun = ssub.add_parser("run", help="run one scenario")
    srun.add_argument("name")
    srun.add_argument("--controller", default="drowsy",
                      help="consolidation controller (default drowsy)")
    srun.add_argument("--simulator", default="hourly",
                      choices=("hourly", "event", "sharded", "both"))
    srun.add_argument("--seed", type=int, default=0)
    srun.add_argument("--scale", type=float, default=1.0,
                      help="class-count multiplier (0.25 = quarter fleet)")
    srun.add_argument("--hours", type=int,
                      help="override the scenario horizon")
    srun.add_argument("--shards", type=int, default=4,
                      help="shard count for --simulator sharded")
    srun.add_argument("--shard-workers", dest="shard_workers", type=int,
                      default=0,
                      help="worker processes for --simulator sharded "
                           "(0 = in-process threads)")
    _add_checkpoint_args(srun)
    _add_obs_args(srun)
    srun.set_defaults(fn=cmd_scenario_run)

    ssweep = ssub.add_parser(
        "sweep", help="sharded scenario x controller x seed sweep")
    ssweep.add_argument("--scenarios",
                        help="comma-separated names (default: all built-ins)")
    ssweep.add_argument("--controllers", default="drowsy,neat",
                        help="comma-separated controller names")
    ssweep.add_argument("--seeds", default="0",
                        help="comma-separated scenario seeds")
    ssweep.add_argument("--simulator", default="hourly",
                        choices=("hourly", "event"))
    ssweep.add_argument("--scale", type=float, default=1.0)
    ssweep.add_argument("--hours", type=int,
                        help="override every scenario's horizon")
    ssweep.add_argument("--workers", type=int, default=1,
                        help="worker processes (spawn), 1 = serial")
    ssweep.add_argument("--out", action="append",
                        help="persist the tidy table; format from the "
                             "suffix: .csv, .sqlite (append) or .parquet "
                             "(repeatable)")
    _add_checkpoint_args(ssweep, sweep=True)
    _add_obs_args(ssweep, sweep=True)
    ssweep.set_defaults(fn=cmd_scenario_sweep)

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--quick", action="store_true",
                         help="reduced scales (a few minutes total)")
    run_all.set_defaults(fn=cmd_run_all)

    report = sub.add_parser(
        "report", help="regenerate the paper-vs-measured claim report")
    report.add_argument("--days", type=int, default=4)
    report.add_argument("--years", type=int, default=1)
    report.set_defaults(fn=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose or args.quiet:
        from .obs.log import configure

        configure(verbose=args.verbose, quiet=args.quiet)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
