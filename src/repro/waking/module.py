"""The waking module (paper section V).

Runs on the never-sleeping SDN switch (one per rack).  Holds two
hashmaps:

* VM IP address -> MAC address of the drowsy server hosting it, consulted
  by the packet analyzer for every inbound request (section V-A);
* waking date -> MAC address, fed by the suspending modules, used to send
  Wake-on-LAN *ahead of time* so the host is up when the timer fires
  (section V-B).

Per the paper's footnote 4, the VM->host mappings are only refreshed
when a host suspends.

The module is deliberately free of host-object manipulation: it emits
WoL packets through a callback supplied by the simulation driver, which
owns the host power-state machine.  This keeps it mirrorable — its whole
state is the two maps — which the fault-tolerance layer exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cluster.events import Event, EventSimulator
from ..cluster.host import Host
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .packets import Packet, PacketKind, WoLPacket

WolSender = Callable[[WoLPacket, float], None]


@dataclass
class WakingModuleState:
    """The replicable state of a waking module (mirrored on each update)."""

    #: VM IP -> MAC of the suspended host running it.
    vm_to_mac: dict[str, str] = field(default_factory=dict)
    #: MAC -> registered waking date (absolute seconds), None = none.
    waking_dates: dict[str, float | None] = field(default_factory=dict)
    #: Reverse index of ``vm_to_mac`` (MAC -> its registered VM IPs, an
    #: ordered set as dict keys), kept in sync by every map update so a
    #: resume drops the host's stale entries in O(its VMs) instead of
    #: scanning the whole map.  Derived state: rebuilt from ``vm_to_mac``
    #: whenever a state arrives without it (hand-built fixtures).
    ips_of_mac: dict[str, dict[str, None]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.vm_to_mac and not self.ips_of_mac:
            self.rebuild_index()

    def rebuild_index(self) -> None:
        """Recompute the reverse index from the authoritative map."""
        index: dict[str, dict[str, None]] = {}
        for ip, mac in self.vm_to_mac.items():
            index.setdefault(mac, {})[ip] = None
        self.ips_of_mac = index

    def map_vm(self, ip: str, mac: str) -> None:
        """Point ``ip`` at ``mac``, unhooking any previous mapping."""
        old = self.vm_to_mac.get(ip)
        if old == mac:
            return
        if old is not None:
            self._drop_reverse(old, ip)
        self.vm_to_mac[ip] = mac
        self.ips_of_mac.setdefault(mac, {})[ip] = None

    def drop_mac(self, mac: str) -> None:
        """Remove every mapping onto ``mac`` (the host resumed)."""
        for ip in self.ips_of_mac.pop(mac, ()):
            self.vm_to_mac.pop(ip, None)

    def drop_vm(self, ip: str) -> None:
        """Remove one VM's mapping (it left its drowsy host)."""
        mac = self.vm_to_mac.pop(ip, None)
        if mac is not None:
            self._drop_reverse(mac, ip)

    def _drop_reverse(self, mac: str, ip: str) -> None:
        ips = self.ips_of_mac.get(mac)
        if ips is not None:
            ips.pop(ip, None)
            if not ips:
                # Never retain empty entries: the reverse index stays a
                # pure function of ``vm_to_mac`` (state equality holds
                # across different update histories).
                del self.ips_of_mac[mac]

    def copy(self) -> "WakingModuleState":
        return WakingModuleState(
            dict(self.vm_to_mac), dict(self.waking_dates),
            {mac: dict(ips) for mac, ips in self.ips_of_mac.items()})


class WakingModule:
    """Rack-level wake coordinator."""

    def __init__(self, name: str, sim: EventSimulator, wol_sender: WolSender,
                 params: DrowsyParams = DEFAULT_PARAMS) -> None:
        self.name = name
        self.sim = sim
        self.params = params
        self._wol_sender = wol_sender
        self.state = WakingModuleState()
        self._scheduled: dict[str, Event] = {}
        self.alive = True
        #: Statistics for the evaluation.
        self.wol_sent = 0
        self.packets_analyzed = 0

    # ------------------------------------------------------------------
    # registration (from suspending modules)
    # ------------------------------------------------------------------
    def register_suspension(self, host: Host, waking_date_s: float | None) -> None:
        """A host is going drowsy: refresh maps, arm the scheduled wake."""
        if not self.alive:
            raise RuntimeError(f"waking module {self.name} is down")
        mac = host.mac_address
        for vm in host.vms:
            self.state.map_vm(vm.ip_address, mac)
        self.state.waking_dates[mac] = waking_date_s
        self._cancel_scheduled(mac)
        if waking_date_s is not None:
            # Send the WoL ahead of time by the resume latency (plus a
            # small margin) so the host is up when the timer fires.
            lead = 0.0
            if self.params.ahead_of_time_wake:
                lead = self.params.resume_latency_s + self.params.wake_ahead_margin_s
            at = max(waking_date_s - lead, self.sim.now)
            self._scheduled[mac] = self.sim.schedule_at(
                at, self._fire_scheduled_wake, mac)

    def on_host_awake(self, host: Host) -> None:
        """A host resumed: drop its mappings and scheduled wake.

        O(VMs of the host) via the reverse index — this runs on every
        resume, where the old full-map scan was O(all drowsy VMs).
        """
        mac = host.mac_address
        self._cancel_scheduled(mac)
        self.state.waking_dates.pop(mac, None)
        self.state.drop_mac(mac)

    def _cancel_scheduled(self, mac: str) -> None:
        ev = self._scheduled.pop(mac, None)
        if ev is not None:
            ev.cancel()

    # ------------------------------------------------------------------
    # wake paths
    # ------------------------------------------------------------------
    def _fire_scheduled_wake(self, mac: str) -> None:
        if not self.alive:
            return
        self._scheduled.pop(mac, None)
        self.state.waking_dates.pop(mac, None)
        self._send_wol(mac, reason="scheduled-date")

    def analyze_packet(self, packet: Packet) -> bool:
        """Section V-A packet analysis.  Returns True if a WoL was sent."""
        if not self.alive:
            raise RuntimeError(f"waking module {self.name} is down")
        self.packets_analyzed += 1
        if packet.kind is not PacketKind.REQUEST:
            return False
        mac = self.state.vm_to_mac.get(packet.dst_ip)
        if mac is None:
            return False
        self._send_wol(mac, reason="inbound-request")
        return True

    def _send_wol(self, mac: str, reason: str) -> None:
        self.wol_sent += 1
        self._wol_sender(WoLPacket(mac_address=mac, reason=reason), self.sim.now)

    def note_vm_moved(self, ip: str, mac: str | None) -> None:
        """A VM relocated without a wake (bulk consolidation): repoint
        its mapping at the drowsy destination's ``mac``, or drop it when
        the destination is awake (``None``).  Pure map update — no
        timers, no WoL — so it doubles as its own standby journal."""
        if not self.alive:
            raise RuntimeError(f"waking module {self.name} is down")
        if mac is None:
            self.state.drop_vm(ip)
        else:
            self.state.map_vm(ip, mac)

    # ------------------------------------------------------------------
    # mirroring hooks (fault tolerance, section V)
    # ------------------------------------------------------------------
    def journal_suspension(self, host: Host, waking_date_s: float | None) -> None:
        """Standby-side state update off the replication channel.

        While the active module is dead but undetected (the heartbeat
        window), suspending-module updates still reach the standby; it
        records them *state-only* — no timers armed, no WoL emitted —
        and promotion's :meth:`restore` re-arms every journaled waking
        date.  This is what makes a wake registered inside the detection
        window survive the failover."""
        if not self.alive:
            raise RuntimeError(f"waking module {self.name} is down")
        mac = host.mac_address
        for vm in host.vms:
            self.state.map_vm(vm.ip_address, mac)
        self.state.waking_dates[mac] = waking_date_s

    def journal_awake(self, host: Host) -> None:
        """Standby-side counterpart of :meth:`on_host_awake`."""
        if not self.alive:
            raise RuntimeError(f"waking module {self.name} is down")
        mac = host.mac_address
        self.state.waking_dates.pop(mac, None)
        self.state.drop_mac(mac)

    def snapshot(self) -> WakingModuleState:
        """State to replicate to the mirror module."""
        return self.state.copy()

    def restore(self, state: WakingModuleState) -> None:
        """Adopt a mirrored state and re-arm every scheduled wake."""
        for ev in self._scheduled.values():
            ev.cancel()
        self._scheduled.clear()
        self.state = state.copy()
        lead = 0.0
        if self.params.ahead_of_time_wake:
            lead = self.params.resume_latency_s + self.params.wake_ahead_margin_s
        for mac, date in self.state.waking_dates.items():
            if date is not None:
                at = max(date - lead, self.sim.now)
                self._scheduled[mac] = self.sim.schedule_at(
                    at, self._fire_scheduled_wake, mac)

    def fail(self) -> None:
        """Kill this module (fault injection)."""
        self.alive = False
        for ev in self._scheduled.values():
            ev.cancel()
        self._scheduled.clear()
