"""Per-rack waking-module sharding (paper §V).

"For scalability purposes, one waking module can be used per rack,
instead of one component for the entire DC."

:class:`RackShardedWakingService` fronts one replicated waking-service
pair per rack and routes every call to the shard owning the host (for
registrations) or the destination VM (for packets).  The routing tables
are plain dict lookups, so the per-packet cost stays O(1) regardless of
DC size, and each shard's state stays proportional to its rack.
"""

from __future__ import annotations

from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .failover import ReplicatedWakingService
from .module import WolSender
from .packets import Packet


class RackShardedWakingService:
    """One fault-tolerant waking service per rack."""

    def __init__(self, sim: EventSimulator, wol_sender: WolSender,
                 rack_of_host: dict[str, str],
                 params: DrowsyParams = DEFAULT_PARAMS) -> None:
        if not rack_of_host:
            raise ValueError("need at least one host->rack assignment")
        self.rack_of_host = dict(rack_of_host)
        self.shards: dict[str, ReplicatedWakingService] = {
            rack: ReplicatedWakingService(sim, wol_sender, params, name=rack)
            for rack in sorted(set(rack_of_host.values()))}
        #: VM IP -> rack, refreshed on each suspension (footnote 4's
        #: update discipline applies per shard).
        self._vm_rack: dict[str, str] = {}

    # ------------------------------------------------------------------
    def shard_for_host(self, host: Host) -> ReplicatedWakingService:
        try:
            rack = self.rack_of_host[host.name]
        except KeyError:
            raise KeyError(f"host {host.name} has no rack assignment") from None
        return self.shards[rack]

    def register_suspension(self, host: Host, waking_date_s: float | None) -> None:
        shard = self.shard_for_host(host)
        for vm in host.vms:
            self._vm_rack[vm.ip_address] = self.rack_of_host[host.name]
        shard.register_suspension(host, waking_date_s)

    def on_host_awake(self, host: Host) -> None:
        self.shard_for_host(host).on_host_awake(host)

    def analyze_packet(self, packet: Packet) -> bool:
        """Route the packet to the rack shard that owns its destination.

        Unknown destinations (VM never seen suspended) are broadcast to
        no one — exactly the single-module behaviour.
        """
        rack = self._vm_rack.get(packet.dst_ip)
        if rack is None:
            return False
        return self.shards[rack].analyze_packet(packet)

    # ------------------------------------------------------------------
    def fail_rack_primary(self, rack: str) -> None:
        """Fault injection for one rack's primary module."""
        self.shards[rack].fail_primary()

    @property
    def total_wol_sent(self) -> int:
        return sum(s.active.wol_sent for s in self.shards.values())
