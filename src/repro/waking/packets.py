"""Network packets seen by the SDN switch (paper section V-A).

The waking module includes "a lightweight packet analyzer": every
request entering the switch is checked against the map of VMs hosted on
suspended servers.  We model just enough of a packet for that analysis:
destination IP, a source tag and a payload kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PacketKind(enum.Enum):
    REQUEST = "request"       # client request to a VM service
    HEARTBEAT = "heartbeat"   # waking-module mirroring traffic
    WOL = "wake-on-lan"       # magic packet


@dataclass(frozen=True)
class Packet:
    """A unicast packet traversing the rack switch."""

    dst_ip: str
    src: str = "client"
    kind: PacketKind = PacketKind.REQUEST
    size_bytes: int = 512
    #: Opaque payload (e.g. the Request object for service packets).
    payload: object | None = None


@dataclass(frozen=True)
class WoLPacket:
    """A Wake-on-LAN magic packet addressed to a host NIC."""

    mac_address: str
    reason: str = "inbound-request"
