"""Waking subsystem: packet analysis, WoL, scheduled wakes, failover."""

from .failover import ReplicatedWakingService
from .module import WakingModule, WakingModuleState, WolSender
from .packets import Packet, PacketKind, WoLPacket
from .sharding import RackShardedWakingService

__all__ = [
    "Packet",
    "PacketKind",
    "RackShardedWakingService",
    "ReplicatedWakingService",
    "WakingModule",
    "WakingModuleState",
    "WoLPacket",
    "WolSender",
]
