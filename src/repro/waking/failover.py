"""Waking-module fault tolerance (paper section V).

"All waking modules work in a collaborated manner.  Each waking module
monitors — via a heart beat mechanism — and mirrors another one.  In
this way, when a waking module is defective, it is replaced with an
identical version."

:class:`ReplicatedWakingService` fronts a primary/mirror pair: every
state-changing call is applied to the active module and synchronously
replicated to the standby's state; a heartbeat monitor promotes the
mirror when the primary misses ``heartbeat_miss_limit`` beats.

The detection window is real.  Between the primary dying and the
heartbeat noticing (worst case :attr:`detection_delay_s`), calls against
the service behave like their distributed-system counterparts:

* state-changing calls (register/awake) time out against the dead
  active, but the same update also reaches the standby over the
  replication channel, which *journals* it — state only, no timers —
  so promotion re-arms every wake registered inside the window (the
  in-flight-wake-loss fix; regression-tested in ``tests/test_waking.py``);
* packet analysis returns "no wake" (counted in
  :attr:`unanswered_packets`); the SDN switch's port-level WoL fallback
  keeps request-triggered wakes working meanwhile;
* with *both* replicas dead the service degrades instead of raising:
  updates are dropped (counted in :attr:`lost_calls`) and analysis
  declines, leaving the switch fallback as the only wake path.
"""

from __future__ import annotations


from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .module import WakingModule, WolSender
from .packets import Packet


class _GuardedWolSender:
    """The mirror's WoL sender: silent until promotion.

    A module-level class (not a closure) so the service — part of the
    checkpointed simulation graph — pickles.
    """

    def __init__(self, service: "ReplicatedWakingService",
                 sender: WolSender) -> None:
        self._service = service
        self._sender = sender

    def __call__(self, packet, now) -> None:
        if self._service._mirror_active:
            self._sender(packet, now)


class ReplicatedWakingService:
    """Primary/mirror pair of waking modules with heartbeat failover."""

    def __init__(self, sim: EventSimulator, wol_sender: WolSender,
                 params: DrowsyParams = DEFAULT_PARAMS,
                 name: str = "rack0") -> None:
        self.sim = sim
        self.params = params
        self.primary = WakingModule(f"{name}-primary", sim, wol_sender, params)
        self.mirror = WakingModule(f"{name}-mirror", sim,
                                   _GuardedWolSender(self, wol_sender),
                                   params)
        # The mirror holds state but must not emit WoL until promoted.
        self._mirror_active = False
        self._missed_beats = 0
        self.failovers = 0
        #: Updates journaled on the standby while the active was dead
        #: (the heartbeat detection window).
        self.window_journaled = 0
        #: Packets no live module could analyze (window or total outage).
        self.unanswered_packets = 0
        #: State-changing calls dropped because both replicas were dead.
        self.lost_calls = 0
        #: Heartbeat events processed — the one engine-global recurring
        #: event; the sharded reducer subtracts duplicate chains with it.
        self.beats = 0
        self._heartbeat_event = sim.schedule_in(
            params.heartbeat_period_s, self._heartbeat)

    # ------------------------------------------------------------------
    @property
    def active(self) -> WakingModule:
        return self.mirror if self._mirror_active else self.primary

    @property
    def standby(self) -> WakingModule:
        return self.primary if self._mirror_active else self.mirror

    def register_suspension(self, host: Host, waking_date_s: float | None) -> None:
        if self.active.alive:
            self.active.register_suspension(host, waking_date_s)
            self._replicate()
        elif self.standby.alive:
            # Detection window: the RPC to the active times out, but the
            # suspending module's update also rides the replication
            # channel; the standby journals it and promotion re-arms it.
            self.standby.journal_suspension(host, waking_date_s)
            self.window_journaled += 1
        else:
            self.lost_calls += 1

    def on_host_awake(self, host: Host) -> None:
        if self.active.alive:
            self.active.on_host_awake(host)
            self._replicate()
        elif self.standby.alive:
            self.standby.journal_awake(host)
            self.window_journaled += 1
        else:
            self.lost_calls += 1

    def analyze_packet(self, packet: Packet) -> bool:
        if not self.active.alive:
            # Window or total outage: analysis is unavailable; the SDN
            # switch's port-level WoL fallback covers inbound requests.
            self.unanswered_packets += 1
            return False
        return self.active.analyze_packet(packet)

    def note_vm_moved(self, ip: str, mac: str | None) -> None:
        """Map update for a VM relocated without a wake (bulk moves)."""
        if self.active.alive:
            self.active.note_vm_moved(ip, mac)
            self._replicate()
        elif self.standby.alive:
            self.standby.note_vm_moved(ip, mac)
            self.window_journaled += 1
        else:
            self.lost_calls += 1

    def _replicate(self) -> None:
        """Synchronous state mirroring after each update."""
        standby = self.standby
        if standby.alive:
            standby.state = self.active.snapshot()

    # ------------------------------------------------------------------
    def _heartbeat(self) -> None:
        """Periodic liveness check of the primary by the mirror."""
        self.beats += 1
        if self._mirror_active:
            return  # already failed over; single module remains
        if self.primary.alive:
            self._missed_beats = 0
        else:
            self._missed_beats += 1
            if self._missed_beats >= self.params.heartbeat_miss_limit:
                if self.mirror.alive:
                    self._promote_mirror()
                # Both dead: stop monitoring, service stays degraded.
                return
        self._heartbeat_event = self.sim.schedule_in(
            self.params.heartbeat_period_s, self._heartbeat)

    def _promote_mirror(self) -> None:
        """Mirror takes over with the replicated state, re-arming wakes."""
        self._mirror_active = True
        self.failovers += 1
        self.mirror.restore(self.mirror.state)

    def fail_primary(self) -> None:
        """Fault injection: crash the primary module."""
        self.primary.fail()

    @property
    def detection_delay_s(self) -> float:
        """Worst-case failover detection latency."""
        return self.params.heartbeat_period_s * self.params.heartbeat_miss_limit
