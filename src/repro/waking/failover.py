"""Waking-module fault tolerance (paper section V).

"All waking modules work in a collaborated manner.  Each waking module
monitors — via a heart beat mechanism — and mirrors another one.  In
this way, when a waking module is defective, it is replaced with an
identical version."

:class:`ReplicatedWakingService` fronts a primary/mirror pair: every
state-changing call is applied to the primary and synchronously
replicated to the mirror's state; a heartbeat monitor promotes the
mirror when the primary misses enough beats.
"""

from __future__ import annotations


from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .module import WakingModule, WolSender
from .packets import Packet


class ReplicatedWakingService:
    """Primary/mirror pair of waking modules with heartbeat failover."""

    def __init__(self, sim: EventSimulator, wol_sender: WolSender,
                 params: DrowsyParams = DEFAULT_PARAMS,
                 name: str = "rack0") -> None:
        self.sim = sim
        self.params = params
        self.primary = WakingModule(f"{name}-primary", sim, wol_sender, params)
        self.mirror = WakingModule(f"{name}-mirror", sim, self._mirror_wol_guard(wol_sender), params)
        # The mirror holds state but must not emit WoL until promoted.
        self._mirror_active = False
        self._missed_beats = 0
        self.failovers = 0
        self._heartbeat_event = sim.schedule_in(
            params.heartbeat_period_s, self._heartbeat)

    def _mirror_wol_guard(self, sender: WolSender) -> WolSender:
        def guarded(packet, now):
            if self._mirror_active:
                sender(packet, now)
        return guarded

    # ------------------------------------------------------------------
    @property
    def active(self) -> WakingModule:
        return self.mirror if self._mirror_active else self.primary

    def _ensure_live(self) -> WakingModule:
        """Fail fast: a call hitting a dead primary (an RPC timeout in a
        real deployment) promotes the mirror immediately, without waiting
        for the heartbeat to notice."""
        if not self.active.alive and not self._mirror_active:
            self._promote_mirror()
        return self.active

    def register_suspension(self, host: Host, waking_date_s: float | None) -> None:
        self._ensure_live().register_suspension(host, waking_date_s)
        self._replicate()

    def on_host_awake(self, host: Host) -> None:
        self._ensure_live().on_host_awake(host)
        self._replicate()

    def analyze_packet(self, packet: Packet) -> bool:
        module = self._ensure_live()
        if not module.alive:  # both replicas down
            return False
        return module.analyze_packet(packet)

    def _replicate(self) -> None:
        """Synchronous state mirroring after each update."""
        standby = self.primary if self._mirror_active else self.mirror
        if standby.alive:
            standby.state = self.active.snapshot()

    # ------------------------------------------------------------------
    def _heartbeat(self) -> None:
        """Periodic liveness check of the primary by the mirror."""
        if self._mirror_active:
            return  # already failed over; single module remains
        if self.primary.alive:
            self._missed_beats = 0
        else:
            self._missed_beats += 1
            if self._missed_beats >= self.params.heartbeat_miss_limit:
                self._promote_mirror()
                return
        self._heartbeat_event = self.sim.schedule_in(
            self.params.heartbeat_period_s, self._heartbeat)

    def _promote_mirror(self) -> None:
        """Mirror takes over with the replicated state, re-arming wakes."""
        self._mirror_active = True
        self.failovers += 1
        self.mirror.restore(self.mirror.state)

    def fail_primary(self) -> None:
        """Fault injection: crash the primary module."""
        self.primary.fail()

    @property
    def detection_delay_s(self) -> float:
        """Worst-case failover detection latency."""
        return self.params.heartbeat_period_s * self.params.heartbeat_miss_limit
