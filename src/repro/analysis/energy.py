"""Energy and suspended-time reporting (paper Table I and §VI-A.3).

Renders per-host suspended-time fractions and kWh totals for a set of
runs, and computes the improvement factors the paper quotes (Drowsy vs
Neat+S3, Drowsy vs Neat-without-suspension).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSummary:
    """The numbers one simulation run contributes to the comparison."""

    label: str
    energy_kwh: float
    suspended_fraction_by_host: dict[str, float]

    @property
    def global_suspended_fraction(self) -> float:
        vals = list(self.suspended_fraction_by_host.values())
        return sum(vals) / len(vals) if vals else 0.0


def summarize(label: str, result) -> RunSummary:
    """Build a RunSummary from an HourlyResult or EventResult."""
    return RunSummary(
        label=label,
        energy_kwh=result.total_energy_kwh,
        suspended_fraction_by_host=dict(result.suspended_fraction_by_host),
    )


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative saving of ``improved`` vs ``baseline``, in percent."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


def suspension_table(runs: list[RunSummary], host_names: list[str]) -> str:
    """Table I layout: per-host suspended-time percentage + global."""
    header = f"{'Algorithm':<14}" + "".join(f"{h:>8}" for h in host_names) + f"{'Global':>8}"
    lines = [header, "-" * len(header)]
    for run in runs:
        cells = "".join(
            f"{100 * run.suspended_fraction_by_host.get(h, 0.0):>8.0f}"
            for h in host_names)
        lines.append(f"{run.label:<14}{cells}{100 * run.global_suspended_fraction:>8.0f}")
    return "\n".join(lines)


def energy_table(runs: list[RunSummary]) -> str:
    """kWh totals with savings relative to the first (baseline) run."""
    base = runs[0].energy_kwh
    header = f"{'Configuration':<26}{'kWh':>8}{'saving':>9}"
    lines = [header, "-" * len(header)]
    for run in runs:
        saving = improvement_pct(base, run.energy_kwh)
        lines.append(f"{run.label:<26}{run.energy_kwh:>8.2f}{saving:>8.1f}%")
    return "\n".join(lines)
