"""SLA analysis (paper §VI-A.3).

The CloudSuite Web Search SLA requires more than 99 % of requests within
200 ms; requests that trigger a host wake may take up to the resume
latency (~1500 ms baseline, ~800 ms with the quick-resume optimization)
but remain a minority, so the overall SLA holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import SLA_LATENCY_S
from ..network.requests import RequestLog


@dataclass(frozen=True)
class SLAReport:
    """SLA verdict over a request log."""

    total_requests: int
    sla_fraction: float
    p50_s: float
    p99_s: float
    max_s: float
    wake_requests: int
    max_wake_latency_s: float
    sla_bound_s: float = SLA_LATENCY_S

    @property
    def sla_met(self) -> bool:
        """The paper's bar: >99 % of requests within the bound."""
        return self.sla_fraction > 0.99

    @property
    def wake_fraction(self) -> float:
        return self.wake_requests / self.total_requests if self.total_requests else 0.0

    def render(self) -> str:
        return "\n".join([
            f"requests                {self.total_requests}",
            f"within {1000 * self.sla_bound_s:.0f} ms            {100 * self.sla_fraction:.2f} %",
            f"p50 / p99 / max         {1000 * self.p50_s:.0f} / {1000 * self.p99_s:.0f} / {1000 * self.max_s:.0f} ms",
            f"wake-triggered          {self.wake_requests} ({100 * self.wake_fraction:.2f} %)",
            f"max wake latency        {1000 * self.max_wake_latency_s:.0f} ms",
            f"SLA (>99% in bound)     {'MET' if self.sla_met else 'VIOLATED'}",
        ])


def sla_report(log: RequestLog, bound_s: float = SLA_LATENCY_S) -> SLAReport:
    return SLAReport(
        total_requests=len(log.requests),
        sla_fraction=log.sla_fraction(bound_s),
        p50_s=log.percentile(50),
        p99_s=log.percentile(99),
        max_s=log.percentile(100),
        wake_requests=len(log.wake_requests),
        max_wake_latency_s=log.max_wake_latency(),
        sla_bound_s=bound_s,
    )
