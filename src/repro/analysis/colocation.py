"""Colocation tracking (paper Fig. 2).

Fig. 2 reports, for every VM pair, the percentage of experiment time the
two VMs shared a host, plus the number of migrations each VM underwent.
:class:`ColocationTracker` samples the placement every hour (as an
``hour_hook`` of either simulator) and renders the same matrix.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..cluster.datacenter import DataCenter


class ColocationTracker:
    """Accumulates co-residence time between VM pairs."""

    def __init__(self, dc: DataCenter) -> None:
        self.dc = dc
        self.samples = 0
        self._pair_hours: dict[frozenset[str], int] = defaultdict(int)

    def hour_hook(self, hour_index: int, now: float) -> None:
        """Sample current placement (signature matches simulator hooks)."""
        self.sample()

    def sample(self) -> None:
        self.samples += 1
        for host in self.dc.hosts:
            names = [vm.name for vm in host.vms]
            for i in range(len(names)):
                for j in range(i + 1, len(names)):
                    self._pair_hours[frozenset((names[i], names[j]))] += 1

    # ------------------------------------------------------------------
    def pair_fraction(self, a: str, b: str) -> float:
        """Fraction of sampled time VMs ``a`` and ``b`` were colocated."""
        if a == b:
            return 1.0
        if self.samples == 0:
            return 0.0
        return self._pair_hours[frozenset((a, b))] / self.samples

    def matrix(self, vm_names: list[str]) -> np.ndarray:
        """Colocation percentage matrix in Fig. 2's layout (diag = 100)."""
        n = len(vm_names)
        m = np.zeros((n, n))
        for i, a in enumerate(vm_names):
            for j, b in enumerate(vm_names):
                m[i, j] = 100.0 * self.pair_fraction(a, b)
        return m

    def render(self, vm_names: list[str],
               migrations: dict[str, int] | None = None) -> str:
        """ASCII rendering of Fig. 2 (percentages + #mig column)."""
        m = self.matrix(vm_names)
        header = "     " + " ".join(f"{n:>4}" for n in vm_names)
        if migrations is not None:
            header += "  #mig"
        lines = [header]
        for i, a in enumerate(vm_names):
            row = f"{a:>4} " + " ".join(f"{m[i, j]:4.0f}" for j in range(len(vm_names)))
            if migrations is not None:
                row += f"  {migrations.get(a, 0):4d}"
            lines.append(row)
        return "\n".join(lines)


@dataclass(frozen=True)
class ColocationSummary:
    """Key Fig. 2 observations, extracted for assertions."""

    llmu_pair_fraction: float
    same_workload_pair_fraction: float
    total_migrations: int
    max_migrations_per_vm: int


def summarize_testbed(tracker: ColocationTracker,
                      migrations: dict[str, int],
                      llmu_pair: tuple[str, str] = ("V1", "V2"),
                      same_workload_pair: tuple[str, str] = ("V3", "V4")) -> ColocationSummary:
    """The checks the paper reads off Fig. 2: the LLMU VMs pack together,
    the same-workload LLMI VMs pack together, migrations stay low."""
    return ColocationSummary(
        llmu_pair_fraction=tracker.pair_fraction(*llmu_pair),
        same_workload_pair_fraction=tracker.pair_fraction(*same_workload_pair),
        total_migrations=sum(migrations.values()),
        max_migrations_per_vm=max(migrations.values()) if migrations else 0,
    )
