"""Terminal-friendly rendering of metric curves (no plotting deps).

Fig. 4 and the ramp-up analyses are line plots in the paper; in a
dependency-free reproduction we render them as ASCII sparklines and
multi-row charts, which is enough to eyeball the shapes the paper
describes (fast ramps, the comic-strips year-two dip, etc.).
"""

from __future__ import annotations

import math

import numpy as np

SPARK_CHARS = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    """One-line chart: each char bins the series into [0, 1] intensity."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return "(no defined values)"
    idx = np.linspace(0, arr.size - 1, min(width, arr.size)).astype(int)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[min(int(v * top), top)] if v >= 0 else "?"
                   for v in np.clip(arr[idx], 0.0, 1.0))


def ascii_chart(values, width: int = 60, height: int = 10,
                y_min: float = 0.0, y_max: float = 1.0) -> str:
    """Multi-row ASCII line chart of one series in [y_min, y_max]."""
    arr = np.asarray(list(values), dtype=float)
    ok = ~np.isnan(arr)
    if not ok.any():
        return "(no defined values)"
    idx = np.linspace(0, arr.size - 1, min(width, arr.size)).astype(int)
    sampled = arr[idx]
    rows = []
    span = max(y_max - y_min, 1e-12)
    for r in range(height, 0, -1):
        level = y_min + span * r / height
        prev_level = y_min + span * (r - 1) / height
        line = "".join(
            "*" if (not math.isnan(v) and prev_level < v <= level) else " "
            for v in sampled)
        label = f"{level:4.2f}" if r in (height, 1) else "    "
        rows.append(f"{label} |{line}")
    rows.append("     +" + "-" * len(sampled))
    return "\n".join(rows)


def compare_table(rows: dict[str, dict[str, float]],
                  columns: list[str] | None = None) -> str:
    """Aligned table from {row_label: {column: value}} mappings."""
    if not rows:
        return "(empty)"
    cols = columns or sorted({c for r in rows.values() for c in r})
    label_w = max(len(k) for k in rows) + 2
    header = " " * label_w + "".join(f"{c:>12}" for c in cols)
    lines = [header, "-" * len(header)]
    for label, cells in rows.items():
        body = "".join(
            f"{cells[c]:>12.3f}" if c in cells and not math.isnan(cells[c])
            else f"{'-':>12}" for c in cols)
        lines.append(f"{label:<{label_w}}{body}")
    return "\n".join(lines)
