"""Reproduction report generator.

Runs the experiment suite (at a configurable scale) and emits a single
markdown report of measured values next to the paper's, in the spirit
of EXPERIMENTS.md but regenerated live — useful after changing model
parameters to see which claims still hold.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field


@dataclass
class ClaimCheck:
    """One paper claim with its measured value and verdict."""

    claim: str
    paper: str
    measured: str
    holds: bool


@dataclass
class ReproductionReport:
    checks: list[ClaimCheck] = field(default_factory=list)
    elapsed_s: float = 0.0

    def add(self, claim: str, paper: str, measured: str, holds: bool) -> None:
        self.checks.append(ClaimCheck(claim, paper, measured, holds))

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        out = io.StringIO()
        out.write("# Drowsy-DC reproduction report\n\n")
        out.write("| claim | paper | measured | holds |\n")
        out.write("|---|---|---|---|\n")
        for c in self.checks:
            mark = "yes" if c.holds else "**NO**"
            out.write(f"| {c.claim} | {c.paper} | {c.measured} | {mark} |\n")
        out.write(f"\n{sum(c.holds for c in self.checks)}/{len(self.checks)} "
                  f"claims hold; generated in {self.elapsed_s:.0f} s.\n")
        return out.getvalue()


def generate_report(days: int = 4, years: int = 1) -> ReproductionReport:
    """Run the core experiments and check each headline claim.

    ``days`` scales the testbed experiments, ``years`` the Fig. 4
    evaluation; the defaults finish in about a minute.
    """
    from ..experiments import (
        backup_anticipation,
        energy_totals,
        fig2_colocation,
        fig4_im_quality,
        table1_suspension,
    )

    t0 = time.perf_counter()
    report = ReproductionReport()

    fig2 = fig2_colocation.run(days=days)
    report.add("Fig.2: LLMU pair colocated most of the time", "85 %",
               f"{100 * fig2.summary.llmu_pair_fraction:.0f} %",
               fig2.summary.llmu_pair_fraction > 0.5)
    report.add("Fig.2: same-workload pair colocated", "76 %",
               f"{100 * fig2.summary.same_workload_pair_fraction:.0f} %",
               fig2.summary.same_workload_pair_fraction > 0.5)
    report.add("Fig.2: migrations stay low (max per VM)", "3",
               str(fig2.summary.max_migrations_per_vm),
               fig2.summary.max_migrations_per_vm <= 4)

    t1 = table1_suspension.run(days=days)
    report.add("Table I: Drowsy suspends more than Neat", "66 % vs 49 %",
               f"{100 * t1.drowsy.global_suspended_fraction:.0f} % vs "
               f"{100 * t1.neat.global_suspended_fraction:.0f} %",
               t1.drowsy.global_suspended_fraction
               > t1.neat.global_suspended_fraction)

    energy = energy_totals.run(days=days)
    report.add("Energy ordering Drowsy < Neat+S3 < Neat",
               "18 < 24 < 40 kWh",
               f"{energy.drowsy.energy_kwh:.1f} < {energy.neat_s3.energy_kwh:.1f} "
               f"< {energy.neat_no_suspend.energy_kwh:.1f} kWh",
               energy.drowsy.energy_kwh < energy.neat_s3.energy_kwh
               < energy.neat_no_suspend.energy_kwh)
    report.add("Saving vs Neat+S3 (placement only)", "~27 %",
               f"{energy.saving_vs_neat_s3_pct:.0f} %",
               10 <= energy.saving_vs_neat_s3_pct <= 45)

    fig4 = fig4_im_quality.run(years=years)
    f_backup = fig4.by_name("a").final_f_measure
    report.add("Fig.4a: daily backup F-measure", "> 0.97",
               f"{f_backup:.3f}", f_backup > 0.9)
    spec_llmu = fig4.by_name("h").final_specificity
    report.add("Fig.4h: LLMU specificity", "~1",
               f"{spec_llmu:.3f}", spec_llmu > 0.99)

    backup = backup_anticipation.run(days=min(days, 3))
    report.add("Timer wakes anticipated (no penalty)", "no degradation",
               f"min margin {min(backup.margins_s):+.2f} s",
               backup.all_anticipated)

    report.elapsed_s = time.perf_counter() - t0
    return report
