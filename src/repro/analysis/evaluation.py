"""Idleness-model evaluation harness (paper Fig. 4, Tables II-III).

Feeds traces to idleness models with the online protocol (predict the
hour, then learn it) and produces cumulative metric curves.  Multiple
traces are evaluated in one vectorized pass through
:class:`~repro.core.fleet.FleetIdlenessModel`.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..core.fleet import FleetIdlenessModel
from ..core.metrics import MetricCurves, cumulative_curves
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from ..traces.base import ActivityTrace, trace_matrix


@dataclass(frozen=True)
class TraceEvaluation:
    """Evaluation artefacts for one trace."""

    trace_name: str
    curves: MetricCurves

    @property
    def final_f_measure(self) -> float:
        return self.curves.final()["f_measure"]

    @property
    def final_specificity(self) -> float:
        return self.curves.final()["specificity"]


def evaluate_traces(traces: list[ActivityTrace],
                    params: DrowsyParams = DEFAULT_PARAMS,
                    hours: int | None = None,
                    sample_every: int = 24,
                    start_hour: int = 0) -> list[TraceEvaluation]:
    """Run the Fig. 4 protocol over several traces in one fleet pass.

    ``hours`` defaults to the longest trace; shorter traces extend
    periodically (the paper extends one-week traces to three years).
    """
    if not traces:
        raise ValueError("need at least one trace")
    T = hours if hours is not None else max(t.hours for t in traces)
    activities = trace_matrix(traces, T)
    fleet = FleetIdlenessModel(len(traces), params)
    predictions, actuals = fleet.run_trace_matrix(activities, start_hour=start_hour)
    out = []
    for i, trace in enumerate(traces):
        curves = cumulative_curves(predictions[i], actuals[i], sample_every)
        out.append(TraceEvaluation(trace.name, curves))
    return out


def evaluation_table(evaluations: list[TraceEvaluation]) -> str:
    """Render final metrics as an aligned ASCII table."""
    header = f"{'trace':<22} {'recall':>7} {'precision':>9} {'f-measure':>9} {'specificity':>11}"
    lines = [header, "-" * len(header)]
    for ev in evaluations:
        f = ev.curves.final()
        lines.append(
            f"{ev.trace_name:<22} {f['recall']:>7.3f} {f['precision']:>9.3f} "
            f"{f['f_measure']:>9.3f} {f['specificity']:>11.3f}")
    return "\n".join(lines)
