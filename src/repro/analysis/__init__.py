"""Analysis: colocation matrices, energy tables, SLA, IM evaluation."""

from .colocation import ColocationSummary, ColocationTracker, summarize_testbed
from .energy import (
    RunSummary,
    energy_table,
    improvement_pct,
    summarize,
    suspension_table,
)
from .evaluation import TraceEvaluation, evaluate_traces, evaluation_table
from .plotting import ascii_chart, compare_table, sparkline
from .report import ClaimCheck, ReproductionReport, generate_report
from .sla import SLAReport, sla_report

__all__ = [
    "ClaimCheck",
    "ColocationSummary",
    "ColocationTracker",
    "ReproductionReport",
    "RunSummary",
    "SLAReport",
    "TraceEvaluation",
    "ascii_chart",
    "compare_table",
    "energy_table",
    "generate_report",
    "sparkline",
    "evaluate_traces",
    "evaluation_table",
    "improvement_pct",
    "sla_report",
    "summarize",
    "summarize_testbed",
    "suspension_table",
]
