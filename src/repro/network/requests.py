"""Client request generation and latency accounting (paper section VI-A).

The testbed drives LLMI VMs with CloudSuite Web Search clients replaying
production traces; the SLA requires >99 % of requests within 200 ms.  We
generate open-loop Poisson request arrivals whose hourly rate follows
the VM's activity trace, and account per-request latency, including the
wake penalty when a request lands on a drowsy server.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.calendar import slot_of_hour
from ..core.params import SLA_LATENCY_S


class PerVMRequestStreams:
    """Per-VM Philox request substreams (DESIGN.md §10).

    Each VM's generator is keyed by a stable digest of ``(seed, vm
    name)`` — not by spawn order — so a VM's arrival and service-time
    draws are invariant under fleet iteration order, placement changes
    and VM arrivals/departures.  The shared-stream layout (one generator
    consumed in fleet order) is seed-compatible with the original
    submit-time sampling but couples every VM's randomness to the
    iteration order; these substreams trade that compatibility for
    reordering robustness.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def for_vm(self, vm_name: str) -> np.random.Generator:
        """The VM's own counter-based generator (created lazily)."""
        rng = self._streams.get(vm_name)
        if rng is None:
            digest = hashlib.blake2b(
                f"{self.seed}:{vm_name}".encode(), digest_size=16).digest()
            rng = np.random.Generator(
                np.random.Philox(key=int.from_bytes(digest, "big")))
            self._streams[vm_name] = rng
        return rng


@dataclass
class Request:
    """One client request and its measured latency."""

    arrival_s: float
    vm_name: str
    service_time_s: float
    completion_s: float = float("nan")
    #: Did this request find the host in S3 (and trigger/await a wake)?
    woke_host: bool = False

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def completed(self) -> bool:
        return not np.isnan(self.completion_s)


def poisson_arrivals(rng: np.random.Generator, start_s: float, duration_s: float,
                     rate_per_s: float) -> np.ndarray:
    """Poisson arrival times in [start, start + duration)."""
    if rate_per_s <= 0.0:
        return np.empty(0)
    n = rng.poisson(rate_per_s * duration_s)
    return start_s + np.sort(rng.uniform(0.0, duration_s, size=n))


_SHAPE_KINDS = ("constant", "diurnal", "weekly", "flash", "replay")


@dataclass(frozen=True)
class ArrivalShape:
    """Deterministic hourly modulation of the request arrival rate.

    A scenario's *arrival pattern* (DESIGN.md §12): the effective
    per-second request rate of an hour is the profile's trace-driven
    rate times :meth:`rate_factor` of that absolute hour.  The factor is
    a pure function of the hour index (no RNG), so shaped traffic stays
    exactly as deterministic and reorder-invariant as the unshaped
    bulk-request path it modulates.

    Kinds:

    * ``constant`` — flat ``scale`` (the identity shape at 1.0);
    * ``diurnal`` — sinusoidal day cycle peaking at ``phase_h`` o'clock
      with relative ``amplitude``;
    * ``weekly`` — the diurnal cycle with weekends (Sat/Sun of the
      simulation calendar) damped to ``weekend_factor``;
    * ``flash`` — flat baseline with a flash crowd of ``burst_factor``×
      traffic for ``burst_len_h`` hours every ``burst_period_h`` hours
      (the period is deliberately co-prime with 24 by default so bursts
      precess across the day);
    * ``replay`` — cycle through an explicit ``factors`` table, e.g.
      loaded from a measured CSV via :meth:`from_csv`.
    """

    kind: str = "constant"
    scale: float = 1.0
    #: diurnal/weekly: relative swing around the mean, in [0, 1].
    amplitude: float = 0.6
    #: diurnal/weekly: hour of day the rate peaks.
    phase_h: float = 15.0
    #: weekly: multiplier applied on Saturdays/Sundays.
    weekend_factor: float = 0.35
    #: flash: hours between burst onsets / burst length / burst height.
    burst_period_h: int = 47
    burst_len_h: int = 2
    burst_factor: float = 8.0
    #: replay: explicit factor table, cycled over the horizon.
    factors: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _SHAPE_KINDS:
            raise ValueError(
                f"unknown arrival shape {self.kind!r}; "
                f"expected one of {_SHAPE_KINDS}")
        if self.scale < 0.0:
            raise ValueError("scale must be >= 0")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.kind == "flash" and (self.burst_period_h < 1
                                     or self.burst_len_h < 1):
            raise ValueError("burst period/length must be >= 1 hour")
        if self.kind == "replay":
            if not self.factors:
                raise ValueError("replay shape needs a factors table")
            if any(f < 0.0 for f in self.factors):
                raise ValueError("replay factors must be >= 0")

    @classmethod
    def from_csv(cls, source: str | Path, scale: float = 1.0) -> "ArrivalShape":
        """Replay shape from a CSV of hourly rate factors.

        Accepts a path or CSV text with one factor per row — either a
        single column or a trailing column after an hour index; a
        non-numeric header row is skipped (see
        :func:`repro.traces.replay.read_hourly_column`).
        """
        from ..traces.replay import read_hourly_column

        return cls(kind="replay", scale=scale,
                   factors=tuple(read_hourly_column(source)))

    def rate_factor(self, hour_index: int) -> float:
        """Rate multiplier for an absolute hour (periodic extension)."""
        kind = self.kind
        if kind == "constant":
            return self.scale
        if kind == "replay":
            return self.scale * self.factors[hour_index % len(self.factors)]
        if kind == "flash":
            in_burst = hour_index % self.burst_period_h < self.burst_len_h
            return self.scale * (self.burst_factor if in_burst else 1.0)
        # diurnal / weekly
        h = hour_index % 24
        factor = 1.0 + self.amplitude * np.cos(
            2.0 * np.pi * (h - self.phase_h) / 24.0)
        if kind == "weekly" and slot_of_hour(hour_index).day_of_week >= 5:
            factor *= self.weekend_factor
        return self.scale * float(factor)

    def factors_for(self, start_hour: int, n_hours: int) -> np.ndarray:
        """``(n_hours,)`` factor vector starting at ``start_hour``."""
        return np.array([self.rate_factor(start_hour + k)
                         for k in range(n_hours)])


@dataclass(frozen=True)
class RequestProfile:
    """How a VM's trace activity translates into request traffic."""

    #: Request rate (per second) when the VM is at full activity.
    peak_rate_per_s: float = 0.01
    #: Lognormal service-time distribution (median ~60 ms, CloudSuite-ish).
    service_median_s: float = 0.060
    service_sigma: float = 0.35
    #: Deterministic first request at the start of each active hour
    #: (clients notice the service; this is also what wakes a drowsy
    #: host at the start of an active period).
    leading_request: bool = True
    #: Optional arrival-pattern shaping (diurnal, flash crowds, replay).
    #: ``None`` keeps the original trace-proportional rate bit-exactly.
    shape: ArrivalShape | None = None

    def hourly_arrivals(self, rng: np.random.Generator, hour_start_s: float,
                        activity: float,
                        hour_index: int | None = None) -> np.ndarray:
        """Arrival times for one hour at the given activity level.

        ``hour_index`` (the absolute hour) keys the arrival shape; when
        absent, or with no shape configured, the rate is the unshaped
        trace-proportional one.
        """
        if activity <= 0.0:
            return np.empty(0)
        rate = self.peak_rate_per_s * activity
        if self.shape is not None and hour_index is not None:
            rate *= self.shape.rate_factor(hour_index)
            if rate <= 0.0:
                # A zeroed-out hour generates nothing, leading request
                # included: the shape silenced this VM's clients.
                return np.empty(0)
        arrivals = poisson_arrivals(rng, hour_start_s, 3600.0, rate)
        if self.leading_request:
            lead = hour_start_s + float(rng.uniform(0.0, 2.0))
            arrivals = np.sort(np.concatenate(([lead], arrivals)))
        return arrivals

    def sample_service_time(self, rng: np.random.Generator) -> float:
        return float(self.service_median_s * rng.lognormal(0.0, self.service_sigma))

    def sample_service_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` service-time draws in one vectorized pass.

        Bit-identical to ``n`` sequential :meth:`sample_service_time`
        calls on the same generator state: numpy fills the array from
        the same underlying bit stream the scalar draws consume, and the
        median scaling is the same elementwise multiply.
        """
        return self.service_median_s * rng.lognormal(
            0.0, self.service_sigma, size=n)


def summarize_latencies(latencies_s: np.ndarray,
                        wake_latencies_s: np.ndarray) -> dict[str, float]:
    """The request-latency digest over raw latency arrays.

    Canonicalizes through one ``np.sort`` so the digest is a pure
    function of the latency *multiset*: any partition of the same
    requests (e.g. the sharded backend's per-shard logs) concatenated in
    any order produces the bit-identical digest, because every float
    reduction below runs over the same sorted array.
    """
    lat = np.sort(np.asarray(latencies_s, dtype=float))
    wake = np.asarray(wake_latencies_s, dtype=float)
    if lat.size:
        p50, p99, p100 = np.percentile(lat, (50, 99, 100))
        sla = float(np.mean(lat <= SLA_LATENCY_S))
        mean = float(np.mean(lat))
    else:
        p50 = p99 = p100 = sla = mean = float("nan")
    return {
        "requests": float(lat.size),
        "sla_fraction": sla,
        "mean_s": mean,
        "p50_s": float(p50),
        "p99_s": float(p99),
        "max_s": float(p100),
        "wake_requests": float(wake.size),
        "max_wake_latency_s": float(wake.max()) if wake.size else 0.0,
    }


@dataclass
class RequestLog:
    """Completed-request archive with the paper's SLA metrics."""

    requests: list[Request] = field(default_factory=list)

    def record(self, request: Request) -> None:
        if not request.completed:
            raise ValueError("only completed requests can be recorded")
        self.requests.append(request)

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.requests])

    def sla_fraction(self, bound_s: float = SLA_LATENCY_S) -> float:
        """Fraction of requests serviced within ``bound_s``."""
        lat = self.latencies_s
        if lat.size == 0:
            return float("nan")
        return float(np.mean(lat <= bound_s))

    def percentile(self, q: float) -> float:
        lat = self.latencies_s
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def wake_requests(self) -> list[Request]:
        """Requests that hit a drowsy server (the tail of section VI-A.3)."""
        return [r for r in self.requests if r.woke_host]

    @property
    def wake_latencies_s(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.requests if r.woke_host])

    def max_wake_latency(self) -> float:
        wl = [r.latency_s for r in self.wake_requests]
        return max(wl) if wl else 0.0

    def summary(self) -> dict[str, float]:
        # One materialization of the latency array for all the digest
        # stats (a week-long fleet run logs millions of requests).
        return summarize_latencies(self.latencies_s, self.wake_latencies_s)
