"""Client request generation and latency accounting (paper section VI-A).

The testbed drives LLMI VMs with CloudSuite Web Search clients replaying
production traces; the SLA requires >99 % of requests within 200 ms.  We
generate open-loop Poisson request arrivals whose hourly rate follows
the VM's activity trace, and account per-request latency, including the
wake penalty when a request lands on a drowsy server.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.params import SLA_LATENCY_S


class PerVMRequestStreams:
    """Per-VM Philox request substreams (DESIGN.md §10).

    Each VM's generator is keyed by a stable digest of ``(seed, vm
    name)`` — not by spawn order — so a VM's arrival and service-time
    draws are invariant under fleet iteration order, placement changes
    and VM arrivals/departures.  The shared-stream layout (one generator
    consumed in fleet order) is seed-compatible with the original
    submit-time sampling but couples every VM's randomness to the
    iteration order; these substreams trade that compatibility for
    reordering robustness.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def for_vm(self, vm_name: str) -> np.random.Generator:
        """The VM's own counter-based generator (created lazily)."""
        rng = self._streams.get(vm_name)
        if rng is None:
            digest = hashlib.blake2b(
                f"{self.seed}:{vm_name}".encode(), digest_size=16).digest()
            rng = np.random.Generator(
                np.random.Philox(key=int.from_bytes(digest, "big")))
            self._streams[vm_name] = rng
        return rng


@dataclass
class Request:
    """One client request and its measured latency."""

    arrival_s: float
    vm_name: str
    service_time_s: float
    completion_s: float = float("nan")
    #: Did this request find the host in S3 (and trigger/await a wake)?
    woke_host: bool = False

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def completed(self) -> bool:
        return not np.isnan(self.completion_s)


def poisson_arrivals(rng: np.random.Generator, start_s: float, duration_s: float,
                     rate_per_s: float) -> np.ndarray:
    """Poisson arrival times in [start, start + duration)."""
    if rate_per_s <= 0.0:
        return np.empty(0)
    n = rng.poisson(rate_per_s * duration_s)
    return start_s + np.sort(rng.uniform(0.0, duration_s, size=n))


@dataclass(frozen=True)
class RequestProfile:
    """How a VM's trace activity translates into request traffic."""

    #: Request rate (per second) when the VM is at full activity.
    peak_rate_per_s: float = 0.01
    #: Lognormal service-time distribution (median ~60 ms, CloudSuite-ish).
    service_median_s: float = 0.060
    service_sigma: float = 0.35
    #: Deterministic first request at the start of each active hour
    #: (clients notice the service; this is also what wakes a drowsy
    #: host at the start of an active period).
    leading_request: bool = True

    def hourly_arrivals(self, rng: np.random.Generator, hour_start_s: float,
                        activity: float) -> np.ndarray:
        """Arrival times for one hour at the given activity level."""
        if activity <= 0.0:
            return np.empty(0)
        arrivals = poisson_arrivals(rng, hour_start_s, 3600.0,
                                    self.peak_rate_per_s * activity)
        if self.leading_request:
            lead = hour_start_s + float(rng.uniform(0.0, 2.0))
            arrivals = np.sort(np.concatenate(([lead], arrivals)))
        return arrivals

    def sample_service_time(self, rng: np.random.Generator) -> float:
        return float(self.service_median_s * rng.lognormal(0.0, self.service_sigma))

    def sample_service_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` service-time draws in one vectorized pass.

        Bit-identical to ``n`` sequential :meth:`sample_service_time`
        calls on the same generator state: numpy fills the array from
        the same underlying bit stream the scalar draws consume, and the
        median scaling is the same elementwise multiply.
        """
        return self.service_median_s * rng.lognormal(
            0.0, self.service_sigma, size=n)


@dataclass
class RequestLog:
    """Completed-request archive with the paper's SLA metrics."""

    requests: list[Request] = field(default_factory=list)

    def record(self, request: Request) -> None:
        if not request.completed:
            raise ValueError("only completed requests can be recorded")
        self.requests.append(request)

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.requests])

    def sla_fraction(self, bound_s: float = SLA_LATENCY_S) -> float:
        """Fraction of requests serviced within ``bound_s``."""
        lat = self.latencies_s
        if lat.size == 0:
            return float("nan")
        return float(np.mean(lat <= bound_s))

    def percentile(self, q: float) -> float:
        lat = self.latencies_s
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def wake_requests(self) -> list[Request]:
        """Requests that hit a drowsy server (the tail of section VI-A.3)."""
        return [r for r in self.requests if r.woke_host]

    def max_wake_latency(self) -> float:
        wl = [r.latency_s for r in self.wake_requests]
        return max(wl) if wl else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "requests": float(len(self.requests)),
            "sla_fraction": self.sla_fraction(),
            "p50_s": self.percentile(50),
            "p99_s": self.percentile(99),
            "max_s": self.percentile(100),
            "wake_requests": float(len(self.wake_requests)),
            "max_wake_latency_s": self.max_wake_latency(),
        }
