"""SDN switch: the rack's packet path (paper sections II, V).

Every client request traverses the switch, where the waking module's
packet analyzer runs first (section V-A).  Requests addressed to a VM on
an available host complete after their service time; requests hitting a
drowsy host are queued on the switch and flushed when the host is back
in S0 — their latency includes the resume.
"""

from __future__ import annotations

import math

from ..cluster.datacenter import DataCenter
from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .requests import Request, RequestLog
from ..waking.packets import Packet, PacketKind, WoLPacket


def _never_satisfied(mac: str) -> bool:
    """Default wake-satisfied predicate: always retry (picklable)."""
    return False


class ReliableWolChannel:
    """Retry-with-timeout WoL delivery (DESIGN.md §14).

    Without fault injection a WoL "send" is a synchronous function call
    and cannot be lost; with a lossy transport attached, a dropped wake
    would strand its requests forever.  The channel makes the wake path
    resilient: every send traverses the ``transport`` verdict function
    (installed by the fault injector), dropped packets are re-sent with
    exponential backoff until the destination is observed awake, and
    delayed packets land after their in-flight delay.

    Determinism and parity rules:

    * ``transport is None`` (the fault-free default) short-circuits to a
      direct synchronous call — bit-identical to the pre-channel path,
      zero events scheduled.
    * Retry and delay timers carry a per-MAC generation token
      (the ``suspend_sweep`` tombstone pattern): :meth:`settle` bumps the
      generation so stale timers become no-ops instead of firing on a
      host that already woke, crashed or left the fleet.
    """

    def __init__(self, sim: EventSimulator, deliver,
                 params: DrowsyParams = DEFAULT_PARAMS,
                 wake_satisfied=None) -> None:
        self.sim = sim
        #: Final delivery callback ``(WoLPacket, now) -> None`` — the
        #: engine's NIC-level WoL handler.
        self._deliver = deliver
        self.params = params
        #: ``(mac) -> bool``: is the wake already satisfied (host awake,
        #: resuming, or gone)?  Retries consult it before re-sending.
        #: (Module-level default, not a lambda: the channel is part of
        #: the checkpointed object graph and must pickle.)
        self._wake_satisfied = wake_satisfied or _never_satisfied
        #: Fault hook ``(WoLPacket) -> (verdict, delay_s)`` with verdict
        #: one of "ok" | "drop" | "delay".  ``None`` = perfect wire.
        self.transport = None
        #: mac -> generation of the newest *valid* timers; absent means
        #: no timer was ever armed for that MAC (fault-free fast path).
        self._generation: dict[str, int] = {}
        self.attempts = 0
        self.dropped = 0
        self.delayed = 0
        self.retries = 0
        self.abandoned = 0
        #: Individual backoff waits; :attr:`backoff_wait_s` reduces them
        #: with ``math.fsum`` (exactly rounded), so the total is a pure
        #: function of the wait *multiset* — any per-shard partition of
        #: the same retries sums to the bit-identical figure.
        self.backoff_waits: list[float] = []

    @property
    def backoff_wait_s(self) -> float:
        return math.fsum(self.backoff_waits)

    def send(self, packet: WoLPacket, now: float) -> None:
        if self.transport is None:
            self._deliver(packet, now)
            return
        self._attempt(packet, 0, self._generation.get(packet.mac_address, 0))

    def _attempt(self, packet: WoLPacket, attempt: int, gen: int) -> None:
        mac = packet.mac_address
        if self._generation.get(mac, 0) != gen:
            return  # settled since this timer was armed (tombstone)
        if attempt > 0:
            if self._wake_satisfied(mac):
                return  # another packet landed meanwhile
            self.retries += 1
        self.attempts += 1
        verdict, delay_s = self.transport(packet)
        if verdict == "drop":
            self.dropped += 1
            if attempt >= self.params.wol_retry_max:
                self.abandoned += 1  # redispatch remains the last resort
                return
            wait = (self.params.wol_retry_timeout_s
                    * self.params.wol_retry_backoff ** attempt)
            self.backoff_waits.append(wait)
            self._generation.setdefault(mac, 0)
            # Args-based scheduling (no closure): retry timers must
            # survive a checkpoint pickle of the event heap.
            self.sim.schedule_in(wait, self._attempt, packet,
                                 attempt + 1, gen)
        elif verdict == "delay":
            self.delayed += 1
            self._generation.setdefault(mac, 0)
            self.sim.schedule_in(delay_s, self._deliver_late, packet, gen)
        else:
            self._deliver(packet, self.sim.now)

    def _deliver_late(self, packet: WoLPacket, gen: int) -> None:
        if self._generation.get(packet.mac_address, 0) != gen:
            return
        self._deliver(packet, self.sim.now)

    def settle(self, mac: str) -> None:
        """The wake for ``mac`` is moot (host awake, crashed or removed):
        tombstone every in-flight retry/delay timer for it.  Idempotent —
        double-settling just bumps the generation past timers that are
        already dead.  No-op for MACs that never armed a timer, so the
        fault-free path stays allocation-free."""
        if mac in self._generation:
            self._generation[mac] += 1


class SDNSwitch:
    """Rack switch with an attached waking service.

    The switch needs a ``waking_service`` exposing ``analyze_packet``
    (either a bare :class:`~repro.waking.module.WakingModule` or the
    replicated pair) — wired by the simulation driver, which also owns
    host power transitions and calls :meth:`on_host_available` after
    each resume.
    """

    def __init__(self, sim: EventSimulator, dc: DataCenter,
                 params: DrowsyParams = DEFAULT_PARAMS) -> None:
        self.sim = sim
        self.dc = dc
        self.params = params
        self.waking_service = None  # wired by the driver
        #: Fallback WoL emitter for requests whose destination host is
        #: down but absent from the waking module's map (e.g. a VM that
        #: was migrated onto an already-drowsy host; the switch knows
        #: its ports' link state and can wake the host directly).
        self.wol_sender = None
        self.log = RequestLog()
        #: Requests waiting for their VM's host to come back up.  Kept as
        #: a flat list re-examined against *current* placement, because a
        #: consolidation round may migrate the VM while its request waits.
        self._pending: list[Request] = []
        self.packets_forwarded = 0
        #: Queued requests forgotten because their VM departed (churn);
        #: closes the request-conservation ledger under fault fuzzing.
        self.requests_dropped = 0

    # ------------------------------------------------------------------
    def _vm_host(self, vm_name: str):
        # O(1) registry lookup; this runs once per packet, where the old
        # O(hosts x vms) scan dominated the submit path (DESIGN.md §10).
        return self.dc.find_vm(vm_name)

    def submit_request(self, request: Request) -> None:
        """A request enters the rack at ``request.arrival_s`` (= sim.now)."""
        vm, host = self._vm_host(request.vm_name)
        packet = Packet(dst_ip=vm.ip_address, kind=PacketKind.REQUEST,
                        payload=request)
        woke = False
        if self.waking_service is not None:
            woke = self.waking_service.analyze_packet(packet)
        self.packets_forwarded += 1

        if host.state is PowerState.ON:
            self._complete(request, self.sim.now + request.service_time_s)
        else:
            # Host is drowsy (or transitioning): the request waits on the
            # switch until the host is available again.
            request.woke_host = True
            self._pending.append(request)
            if not woke and self.wol_sender is not None:
                self.wol_sender(WoLPacket(host.mac_address,
                                          reason="switch-port"), self.sim.now)

    def _complete(self, request: Request, at: float) -> None:
        # Args-based scheduling (no closure): a completion event can
        # straddle an hour boundary (resume-delayed requests) and must
        # survive a checkpoint pickle of the event heap.
        self.sim.schedule_at(at, self._finish, request)

    def _finish(self, request: Request) -> None:
        request.completion_s = self.sim.now
        self.log.record(request)

    # ------------------------------------------------------------------
    def on_host_available(self, host: Host) -> None:
        """A host resumed: re-dispatch every pending request."""
        self.redispatch_pending()

    def redispatch_pending(self) -> None:
        """Re-examine pending requests against current placement.

        One scheduling pass (DESIGN.md §12): requests whose VM now sits
        on an available host complete; the rest stay pending with *one*
        fresh WoL per distinct drowsy destination host — not one per
        waiting request — so no request can wait out a drowsy period
        that nothing else would end.  WoL is idempotent (the first
        packet starts the resume, later ones hit a RESUMING host), so
        deduplicating per pass only drops redundant packets; note the
        WoL callback may resume a host synchronously, in which case the
        per-request loop below already sees it ON and completes the
        rest of that host's queue in the same pass.
        """
        if not self._pending:
            return
        still_waiting: list[Request] = []
        woken: set[str] = set()
        for request in self._pending:
            _, host = self._vm_host(request.vm_name)
            if host.state is PowerState.ON:
                self._complete(request, self.sim.now + request.service_time_s)
            else:
                still_waiting.append(request)
                if (host.state is PowerState.SUSPENDED
                        and self.wol_sender is not None
                        and host.mac_address not in woken):
                    woken.add(host.mac_address)
                    self.wol_sender(WoLPacket(host.mac_address,
                                              reason="redispatch"), self.sim.now)
        self._pending = still_waiting

    def drop_vm(self, vm_name: str) -> None:
        """Forget queued requests of a departing VM (scenario churn):
        its host may never wake for them, and re-examining them would
        fault on the now-unknown VM."""
        kept = [r for r in self._pending if r.vm_name != vm_name]
        self.requests_dropped += len(self._pending) - len(kept)
        self._pending = kept

    @property
    def queued_requests(self) -> int:
        return len(self._pending)
