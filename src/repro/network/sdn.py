"""SDN switch: the rack's packet path (paper sections II, V).

Every client request traverses the switch, where the waking module's
packet analyzer runs first (section V-A).  Requests addressed to a VM on
an available host complete after their service time; requests hitting a
drowsy host are queued on the switch and flushed when the host is back
in S0 — their latency includes the resume.
"""

from __future__ import annotations

from ..cluster.datacenter import DataCenter
from ..cluster.events import EventSimulator
from ..cluster.host import Host
from ..cluster.power import PowerState
from ..core.params import DEFAULT_PARAMS, DrowsyParams
from .requests import Request, RequestLog
from ..waking.packets import Packet, PacketKind, WoLPacket


class SDNSwitch:
    """Rack switch with an attached waking service.

    The switch needs a ``waking_service`` exposing ``analyze_packet``
    (either a bare :class:`~repro.waking.module.WakingModule` or the
    replicated pair) — wired by the simulation driver, which also owns
    host power transitions and calls :meth:`on_host_available` after
    each resume.
    """

    def __init__(self, sim: EventSimulator, dc: DataCenter,
                 params: DrowsyParams = DEFAULT_PARAMS) -> None:
        self.sim = sim
        self.dc = dc
        self.params = params
        self.waking_service = None  # wired by the driver
        #: Fallback WoL emitter for requests whose destination host is
        #: down but absent from the waking module's map (e.g. a VM that
        #: was migrated onto an already-drowsy host; the switch knows
        #: its ports' link state and can wake the host directly).
        self.wol_sender = None
        self.log = RequestLog()
        #: Requests waiting for their VM's host to come back up.  Kept as
        #: a flat list re-examined against *current* placement, because a
        #: consolidation round may migrate the VM while its request waits.
        self._pending: list[Request] = []
        self.packets_forwarded = 0

    # ------------------------------------------------------------------
    def _vm_host(self, vm_name: str):
        # O(1) registry lookup; this runs once per packet, where the old
        # O(hosts x vms) scan dominated the submit path (DESIGN.md §10).
        return self.dc.find_vm(vm_name)

    def submit_request(self, request: Request) -> None:
        """A request enters the rack at ``request.arrival_s`` (= sim.now)."""
        vm, host = self._vm_host(request.vm_name)
        packet = Packet(dst_ip=vm.ip_address, kind=PacketKind.REQUEST,
                        payload=request)
        woke = False
        if self.waking_service is not None:
            woke = self.waking_service.analyze_packet(packet)
        self.packets_forwarded += 1

        if host.state is PowerState.ON:
            self._complete(request, self.sim.now + request.service_time_s)
        else:
            # Host is drowsy (or transitioning): the request waits on the
            # switch until the host is available again.
            request.woke_host = True
            self._pending.append(request)
            if not woke and self.wol_sender is not None:
                self.wol_sender(WoLPacket(host.mac_address,
                                          reason="switch-port"), self.sim.now)

    def _complete(self, request: Request, at: float) -> None:
        def finish() -> None:
            request.completion_s = self.sim.now
            self.log.record(request)

        self.sim.schedule_at(at, finish)

    # ------------------------------------------------------------------
    def on_host_available(self, host: Host) -> None:
        """A host resumed: re-dispatch every pending request."""
        self.redispatch_pending()

    def redispatch_pending(self) -> None:
        """Re-examine pending requests against current placement.

        One scheduling pass (DESIGN.md §12): requests whose VM now sits
        on an available host complete; the rest stay pending with *one*
        fresh WoL per distinct drowsy destination host — not one per
        waiting request — so no request can wait out a drowsy period
        that nothing else would end.  WoL is idempotent (the first
        packet starts the resume, later ones hit a RESUMING host), so
        deduplicating per pass only drops redundant packets; note the
        WoL callback may resume a host synchronously, in which case the
        per-request loop below already sees it ON and completes the
        rest of that host's queue in the same pass.
        """
        if not self._pending:
            return
        still_waiting: list[Request] = []
        woken: set[str] = set()
        for request in self._pending:
            _, host = self._vm_host(request.vm_name)
            if host.state is PowerState.ON:
                self._complete(request, self.sim.now + request.service_time_s)
            else:
                still_waiting.append(request)
                if (host.state is PowerState.SUSPENDED
                        and self.wol_sender is not None
                        and host.mac_address not in woken):
                    woken.add(host.mac_address)
                    self.wol_sender(WoLPacket(host.mac_address,
                                              reason="redispatch"), self.sim.now)
        self._pending = still_waiting

    def drop_vm(self, vm_name: str) -> None:
        """Forget queued requests of a departing VM (scenario churn):
        its host may never wake for them, and re-examining them would
        fault on the now-unknown VM."""
        self._pending = [r for r in self._pending if r.vm_name != vm_name]

    @property
    def queued_requests(self) -> int:
        return len(self._pending)
