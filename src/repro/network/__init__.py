"""Network substrate: requests, SLA accounting, the SDN switch."""

from .requests import Request, RequestLog, RequestProfile, poisson_arrivals
from .sdn import SDNSwitch

__all__ = [
    "Request",
    "RequestLog",
    "RequestProfile",
    "SDNSwitch",
    "poisson_arrivals",
]
