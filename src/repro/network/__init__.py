"""Network substrate: requests, SLA accounting, the SDN switch."""

from .requests import (
    ArrivalShape,
    PerVMRequestStreams,
    Request,
    RequestLog,
    RequestProfile,
    poisson_arrivals,
)
from .sdn import SDNSwitch

__all__ = [
    "ArrivalShape",
    "PerVMRequestStreams",
    "Request",
    "RequestLog",
    "RequestProfile",
    "SDNSwitch",
    "poisson_arrivals",
]
