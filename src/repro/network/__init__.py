"""Network substrate: requests, SLA accounting, the SDN switch."""

from .requests import (
    PerVMRequestStreams,
    Request,
    RequestLog,
    RequestProfile,
    poisson_arrivals,
)
from .sdn import SDNSwitch

__all__ = [
    "PerVMRequestStreams",
    "Request",
    "RequestLog",
    "RequestProfile",
    "SDNSwitch",
    "poisson_arrivals",
]
