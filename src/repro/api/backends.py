"""The backend registry: the two simulation engines behind one façade.

A backend adapter owns everything engine-specific the
:class:`~repro.api.Simulation` façade needs: the config dataclass, seed
threading, engine construction, the conversion to the unified
:class:`~repro.api.RunResult`, and the small administrative surface
scenario churn uses (force-awake, check reinstatement, departed-VM
notice).  New engines (async, distributed) plug in by registering an
adapter — no consumer changes.

Like the controller factories, the adapters import their engine module
lazily (inside ``config_type``/``build``) so ``import repro`` stays
light — the full event-driven stack (network, waking, suspend modules)
only loads when an event simulation is actually constructed.
"""

from __future__ import annotations

from dataclasses import replace

from ..cluster.power import PowerState
from ..core.params import DrowsyParams
from .registry import Registry
from .result import RunResult

#: Name -> backend adapter.
backends: Registry = Registry("backend")


class _DirectFleetAdmin:
    """Fleet administration for single-engine backends: the effects run
    straight on the engine's (only) data center."""

    def evacuate_host(self, engine, host, now: float, targets=None):
        return engine.dc.evacuate(host, now, targets)

    def place_vm(self, engine, vm, dest) -> None:
        engine.dc.place(vm, dest)

    def power_off_host(self, engine, host, now: float) -> None:
        host.power_off(now)

    def power_on_host(self, engine, host, now: float) -> None:
        host.power_on(now)


class HourlyBackend(_DirectFleetAdmin):
    """The analytic hour-resolution engine (DESIGN.md §3)."""

    name = "hourly"

    @property
    def config_type(self):
        from ..sim.hourly import HourlyConfig

        return HourlyConfig

    def prepare_config(self, config, seed: int | None):
        # The hourly engine draws no randomness at run time (fleets are
        # seeded at build time), so a seed is accepted for signature
        # uniformity and ignored.
        return config if config is not None else self.config_type()

    def build(self, dc, controller, params: DrowsyParams, config,
              hour_hooks: tuple):
        from ..sim.hourly import HourlySimulator

        return HourlySimulator(dc, controller, params, config,
                               hour_hooks=hour_hooks)

    def to_run_result(self, native) -> RunResult:
        return RunResult.from_hourly(native)

    # -- administrative surface (scenario churn) -----------------------
    def force_awake(self, engine, host, now: float) -> None:
        """Administrative wake at hour resolution: zero-latency resume,
        no grace (matches the event engine's ``_force_awake``)."""
        if host.state is PowerState.SUSPENDED:
            host.begin_resume(now)
            host.finish_resume(now, 0.0)

    def reinstate_check(self, engine, host) -> None:
        pass  # the hourly power step re-evaluates every host each hour

    def note_vm_departed(self, engine, vm_name: str) -> None:
        pass  # no scheduled per-VM events to swallow


class EventBackend(_DirectFleetAdmin):
    """The request-level event-driven engine (DESIGN.md §3, §10)."""

    name = "event"

    @property
    def config_type(self):
        from ..sim.event_driven import EventConfig

        return EventConfig

    def prepare_config(self, config, seed: int | None):
        if config is None:
            cls = self.config_type
            return cls() if seed is None else cls(seed=seed)
        if seed is not None and config.seed != seed:
            return replace(config, seed=seed)
        return config

    def build(self, dc, controller, params: DrowsyParams, config,
              hour_hooks: tuple):
        from ..sim.event_driven import EventDrivenSimulation

        return EventDrivenSimulation(dc, controller, params, config,
                                     hour_hooks=hour_hooks)

    def to_run_result(self, native) -> RunResult:
        return RunResult.from_event(native)

    # -- administrative surface (scenario churn) -----------------------
    def force_awake(self, engine, host, now: float) -> None:
        engine._force_awake(host)  # uses the event clock, not ``now``

    def reinstate_check(self, engine, host) -> None:
        engine._schedule_check(host, engine.params.suspend_check_period_s)

    def note_vm_departed(self, engine, vm_name: str) -> None:
        engine.note_vm_departed(vm_name)


class ShardedBackend:
    """One run partitioned across per-shard engines (DESIGN.md §15).

    The fleet is split by a stable hash of the host name; each shard
    runs an unmodified inner engine (``hourly`` or ``event``) over its
    sub-fleet while the coordinator drives the real controller and the
    observers against a global replica, replaying their side effects
    into the owning shards.  Results are bit-identical to the inner
    backend for every shard/worker count — asserted by the sharded
    parity suite.  The administrative surface routes through the
    coordinator's op capture: churn effects must reach both the replica
    and the shard that owns the touched host.
    """

    name = "sharded"

    @property
    def config_type(self):
        from .sharded import ShardedConfig

        return ShardedConfig

    def prepare_config(self, config, seed: int | None):
        from .sharded import ShardedConfig

        if config is None:
            config = ShardedConfig()
        inner = backends.get(config.inner)
        inner_cfg = config.inner_config
        if inner_cfg is None and config.inner == "event":
            from ..sim.event_driven import EventConfig

            # The sharded default differs from the plain event default
            # in exactly one way: per-VM request streams (a shared
            # stream's draw order cannot be partitioned).
            inner_cfg = (EventConfig(request_streams="per-vm")
                         if seed is None
                         else EventConfig(seed=seed,
                                          request_streams="per-vm"))
        inner_cfg = inner.prepare_config(inner_cfg, seed)
        if inner_cfg is not config.inner_config:
            config = replace(config, inner_config=inner_cfg)
        return config

    def build(self, dc, controller, params: DrowsyParams, config,
              hour_hooks: tuple):
        from .sharded.coordinator import ShardedCoordinator

        return ShardedCoordinator(dc, controller, params, config,
                                  hour_hooks=hour_hooks)

    def to_run_result(self, native) -> RunResult:
        return native  # the coordinator's reduction is already unified

    # -- administrative surface (scenario churn) -----------------------
    def force_awake(self, engine, host, now: float) -> None:
        engine.force_awake(host, now)

    def reinstate_check(self, engine, host) -> None:
        engine.reinstate_check(host)

    def note_vm_departed(self, engine, vm_name: str) -> None:
        engine.note_vm_departed(vm_name)

    def evacuate_host(self, engine, host, now: float, targets=None):
        return engine.evacuate_host(host, now, targets)

    def place_vm(self, engine, vm, dest) -> None:
        engine.place_vm(vm, dest)

    def power_off_host(self, engine, host, now: float) -> None:
        engine.power_off_host(host, now)

    def power_on_host(self, engine, host, now: float) -> None:
        engine.power_on_host(host, now)


backends.register("hourly", HourlyBackend())
backends.register("event", EventBackend())
backends.register("sharded", ShardedBackend())
