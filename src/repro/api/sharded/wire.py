"""Wire helpers for cross-shard traffic.

Everything that crosses a shard boundary is self-contained: a VM is
pickled with a *detached* scalar idleness model (never a columnar
fleet view, whose arrays belong to the source shard's binding), and
the op vocabulary below is plain tuples/dicts of primitives so both
the thread and the spawn transports carry identical payloads.

Op vocabulary (coordinator -> shard, applied in global call order):

=================  ====================================================
``("wake", h)``            force host ``h`` awake (consolidation wake)
``("mig", v, d)``          intra-shard migration of VM ``v`` to ``d``
``("exec-mig", v, d)``     intra-shard *engine* migration (wakes both
                           endpoints first, like the executor path)
``("insert", v, d, s, dur, wake)``
                           attach an in-flight VM arriving from shard
                           ``s``'s extraction, optionally waking ``d``
``("bulk", moves)``        relocate-all block: detach/attach ``moves``
                           (MigrationRecord field dicts) atomically
``("place", blob, d)``     churn arrival: unpickle ``blob`` onto ``d``
``("remove", v)``          churn departure of VM ``v``
``("power_off", h)`` /     maintenance power transitions
``("power_on", h)``
``("reinstate", h)``       re-arm the suspend check after maintenance
=================  ====================================================
"""

from __future__ import annotations

import pickle

import numpy as np

from ...core.model import IdlenessModel


def detached_model(model, params) -> IdlenessModel:
    """A scalar :class:`IdlenessModel` copy of ``model``.

    Works for both plain models and columnar fleet views (the
    attributes read here are the fleet view's materializing
    properties), producing a model whose arrays are owned by the copy.
    """
    m = IdlenessModel(params)
    m.sid[:] = model.sid
    m.siw[:] = model.siw
    m.sim[:] = model.sim
    m.siy[:] = model.siy
    m.weights = np.array(model.weights, dtype=float, copy=True)
    m._activity_sum = float(model._activity_sum)
    m._active_hours = int(model._active_hours)
    m.hours_observed = int(model.hours_observed)
    return m


def pickle_vm(vm) -> bytes:
    """Pickle ``vm`` with its model detached to a scalar copy.

    The VM object itself is left untouched (its model — possibly a
    fleet view into the source shard's binding — is swapped out only
    for the duration of the dump).
    """
    model = vm.model
    vm.model = detached_model(model, vm.params)
    try:
        return pickle.dumps(vm, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        vm.model = model


def unpickle_vm(blob: bytes):
    return pickle.loads(blob)


def record_as_dict(rec) -> dict:
    """A :class:`MigrationRecord` as a primitives-only dict."""
    return {"time": rec.time, "vm_name": rec.vm_name, "source": rec.source,
            "destination": rec.destination, "duration_s": rec.duration_s}
