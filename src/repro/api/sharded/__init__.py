"""Sharded distributed backend: one run, all cores.

Public surface: :class:`ShardedConfig` (the ``backend_config`` payload
for ``backend="sharded"``) and :class:`ShardedCoordinator` (the engine
object the façade drives).  The coordinator import is lazy — it pulls
in the simulation engines, which this package's config-only consumers
(spec serialization, CLI listing) must not pay for.
"""

from .config import ShardedConfig

__all__ = ["ShardedConfig", "ShardedCoordinator"]


def __getattr__(name: str):
    if name == "ShardedCoordinator":
        from .coordinator import ShardedCoordinator

        return ShardedCoordinator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
