"""Duplex transports between the coordinator and its shards.

Two interchangeable transports carry the same picklable messages:

* **threads** (``workers=0``): each shard is a daemon thread of the
  coordinator process, talking over a pair of ``queue.Queue``s.  Zero
  start-up cost and no pickling of the setup payload — the default,
  and what the parity suite exercises most.
* **processes** (``workers=N``): shards are distributed round-robin
  over ``min(N, shards)`` ``spawn`` processes (the same start method
  as :class:`~repro.sim.sweep.SweepRunner`, safe under pytest-xdist
  and macOS), each shard on its own ``multiprocessing.Pipe``.

The transport owns lifecycle only; message semantics live in
``port``/``coordinator``.
"""

from __future__ import annotations

import queue
import threading


class QueueEndpoint:
    """One side of a thread-mode duplex channel."""

    def __init__(self, inbox: queue.Queue, outbox: queue.Queue) -> None:
        self._inbox = inbox
        self._outbox = outbox

    def send(self, msg) -> None:
        self._outbox.put(msg)

    def recv(self):
        return self._inbox.get()


class PipeEndpoint:
    """One side of a process-mode duplex channel."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, msg) -> None:
        self._conn.send(msg)

    def recv(self):
        try:
            return self._conn.recv()
        except EOFError:
            # The peer died without a goodbye; surface it as a protocol
            # error message so the coordinator aborts cleanly.
            return ("error", "shard endpoint closed unexpectedly")


class ShardTransport:
    """Launches shards and hands the coordinator its endpoints."""

    def __init__(self, setups: list[dict], workers: int) -> None:
        self.endpoints: list = []
        self._threads: list[threading.Thread] = []
        self._processes: list = []
        if workers <= 0:
            self._launch_threads(setups)
        else:
            self._launch_processes(setups, workers)

    # ------------------------------------------------------------------
    def _launch_threads(self, setups: list[dict]) -> None:
        from .worker import run_shard

        for setup in setups:
            to_shard: queue.Queue = queue.Queue()
            to_coord: queue.Queue = queue.Queue()
            self.endpoints.append(QueueEndpoint(to_coord, to_shard))
            shard_end = QueueEndpoint(to_shard, to_coord)
            thread = threading.Thread(target=run_shard,
                                      args=(shard_end, setup), daemon=True)
            self._threads.append(thread)
            thread.start()

    def _launch_processes(self, setups: list[dict], workers: int) -> None:
        from ...sim.sweep import spawn_context
        from .worker import worker_main

        ctx = spawn_context()
        n_workers = min(workers, len(setups))
        per_worker: list[list] = [[] for _ in range(n_workers)]
        for index, setup in enumerate(setups):
            parent, child = ctx.Pipe()
            self.endpoints.append(PipeEndpoint(parent))
            per_worker[index % n_workers].append((setup, child))
        for assignments in per_worker:
            proc = ctx.Process(target=worker_main, args=(assignments,),
                               daemon=True)
            self._processes.append(proc)
            proc.start()
        # The parent copies of the child connection ends are not needed
        # after the fork/spawn handoff.
        for assignments in per_worker:
            for _, child in assignments:
                child.close()

    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Best-effort: tell every shard to stop waiting."""
        for endpoint in self.endpoints:
            try:
                endpoint.send(("abort",))
            except Exception:
                pass

    def shutdown(self, force: bool = False) -> None:
        if force:
            self.abort()
        for thread in self._threads:
            thread.join(timeout=5.0 if force else None)
        for proc in self._processes:
            proc.join(timeout=5.0 if force else None)
            if proc.exitcode is None:
                proc.terminate()
                proc.join(timeout=5.0)
