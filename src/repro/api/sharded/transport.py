"""Duplex transports between the coordinator and its shards.

Two interchangeable transports carry the same picklable messages:

* **threads** (``workers=0``): each shard is a daemon thread of the
  coordinator process, talking over a pair of ``queue.Queue``s.  Zero
  start-up cost and no pickling of the setup payload — the default,
  and what the parity suite exercises most.
* **processes** (``workers=N``): shards are distributed round-robin
  over ``min(N, shards)`` ``spawn`` processes (the same start method
  as :class:`~repro.sim.sweep.SweepRunner`, safe under pytest-xdist
  and macOS), each shard on its own ``multiprocessing.Pipe``.

The transport owns lifecycle only; message semantics live in
``port``/``coordinator``.

Crash safety (DESIGN.md §16): coordinator-side endpoints accept a
``timeout_s`` so a read from a hung worker raises
:class:`~repro.resilience.ShardTimeoutError` instead of blocking
forever, and a closed pipe (worker SIGKILLed, OOM-killed, crashed
hard) raises :class:`~repro.resilience.ShardCrashError`.  Both carry
the shard index and the simulated hour the protocol was at; the
coordinator's supervisor turns them into a worker-pool respawn.
"""

from __future__ import annotations

import queue
import threading
import time

from ...resilience import ShardCrashError, ShardTimeoutError


class QueueEndpoint:
    """One side of a thread-mode duplex channel."""

    def __init__(self, inbox: queue.Queue, outbox: queue.Queue,
                 shard: int | None = None, transport=None,
                 timeout_s: float | None = None) -> None:
        self._inbox = inbox
        self._outbox = outbox
        self._shard = shard
        self._transport = transport
        self._timeout_s = timeout_s

    def _hour(self):
        return None if self._transport is None else self._transport.current_hour

    def send(self, msg) -> None:
        self._outbox.put(msg)

    def recv(self):
        if self._timeout_s is None:
            return self._inbox.get()
        started = time.monotonic()
        try:
            return self._inbox.get(timeout=self._timeout_s)
        except queue.Empty:
            raise ShardTimeoutError(self._shard, self._hour(),
                                    time.monotonic() - started,
                                    self._timeout_s) from None


class PipeEndpoint:
    """One side of a process-mode duplex channel."""

    def __init__(self, conn, shard: int | None = None, transport=None,
                 timeout_s: float | None = None) -> None:
        self._conn = conn
        self._shard = shard
        self._transport = transport
        self._timeout_s = timeout_s

    def _hour(self):
        return None if self._transport is None else self._transport.current_hour

    def send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardCrashError(self._shard, self._hour(),
                                  f"pipe closed on send: {exc}") from exc

    def recv(self):
        started = time.monotonic()
        try:
            if self._timeout_s is not None and not self._conn.poll(self._timeout_s):
                raise ShardTimeoutError(self._shard, self._hour(),
                                        time.monotonic() - started,
                                        self._timeout_s)
            return self._conn.recv()
        except EOFError as exc:
            # The peer died without a goodbye (crash, SIGKILL, OOM).
            raise ShardCrashError(self._shard, self._hour(),
                                  "shard endpoint closed unexpectedly") from exc
        except OSError as exc:
            raise ShardCrashError(self._shard, self._hour(),
                                  f"pipe error: {exc}") from exc


class ShardTransport:
    """Launches shards and hands the coordinator its endpoints."""

    def __init__(self, setups: list[dict], workers: int,
                 timeout_s: float | None = None) -> None:
        self.endpoints: list = []
        #: Simulated hour the coordinator protocol is currently driving;
        #: stamped onto timeout/crash errors for actionable messages.
        self.current_hour: int | None = None
        self._timeout_s = timeout_s
        self._threads: list[threading.Thread] = []
        self._processes: list = []
        if workers <= 0:
            self._launch_threads(setups)
        else:
            self._launch_processes(setups, workers)

    # ------------------------------------------------------------------
    def _launch_threads(self, setups: list[dict]) -> None:
        from .worker import run_shard

        for index, setup in enumerate(setups):
            to_shard: queue.Queue = queue.Queue()
            to_coord: queue.Queue = queue.Queue()
            self.endpoints.append(
                QueueEndpoint(to_coord, to_shard, shard=index,
                              transport=self, timeout_s=self._timeout_s))
            shard_end = QueueEndpoint(to_shard, to_coord)
            thread = threading.Thread(target=run_shard,
                                      args=(shard_end, setup), daemon=True)
            self._threads.append(thread)
            thread.start()

    def _launch_processes(self, setups: list[dict], workers: int) -> None:
        from ...sim.sweep import spawn_context
        from .worker import worker_main

        ctx = spawn_context()
        n_workers = min(workers, len(setups))
        per_worker: list[list] = [[] for _ in range(n_workers)]
        for index, setup in enumerate(setups):
            parent, child = ctx.Pipe()
            self.endpoints.append(
                PipeEndpoint(parent, shard=index, transport=self,
                             timeout_s=self._timeout_s))
            per_worker[index % n_workers].append((setup, child))
        for assignments in per_worker:
            proc = ctx.Process(target=worker_main, args=(assignments,),
                               daemon=True)
            self._processes.append(proc)
            proc.start()
        # The parent copies of the child connection ends are not needed
        # after the fork/spawn handoff.
        for assignments in per_worker:
            for _, child in assignments:
                child.close()

    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Best-effort: tell every shard to stop waiting."""
        for endpoint in self.endpoints:
            try:
                endpoint.send(("abort",))
            except Exception:
                pass

    def kill(self) -> None:
        """Tear the pool down *now* — supervision path.

        Terminates worker processes without draining them (they may be
        hung or already dead) and escalates to SIGKILL if SIGTERM does
        not land; thread shards get an abort and a short join (threads
        cannot be killed, but thread mode is only reached by supervised
        runs after degradation, where a further failure is fatal anyway).
        """
        for proc in self._processes:
            if proc.is_alive():
                proc.terminate()
        for proc in self._processes:
            proc.join(timeout=5.0)
            if proc.exitcode is None:
                proc.kill()
                proc.join(timeout=5.0)
        if self._threads:
            self.abort()
            for thread in self._threads:
                thread.join(timeout=1.0)

    def shutdown(self, force: bool = False) -> None:
        if force:
            self.abort()
        for thread in self._threads:
            thread.join(timeout=5.0 if force else None)
        for proc in self._processes:
            proc.join(timeout=5.0 if force else None)
            if proc.exitcode is None:
                proc.terminate()
                proc.join(timeout=5.0)
