"""Configuration for the sharded distributed backend (DESIGN.md §15).

A :class:`ShardedConfig` wraps one of the two single-engine backends —
the *inner* engine — and says how many shards to partition the fleet
into and how many OS processes to spread the shards over.  It is a
frozen dataclass so a prepared config can be shipped to spawn workers
and compared for equality in tests.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardedConfig:
    """How to shard one simulation run across engines.

    ``shards`` is the number of fleet partitions (each runs a full
    inner engine over its sub-fleet); ``workers`` the number of worker
    *processes* — ``0`` runs every shard as a thread of the calling
    process (deterministic, zero spawn cost, the default for tests),
    ``N > 0`` spreads shards round-robin over ``min(N, shards)``
    spawned processes for real parallelism.  ``inner`` picks the
    per-shard engine (``"event"`` or ``"hourly"``) and
    ``inner_config`` its config; ``None`` means the inner backend's
    default, with the event engine forced onto per-VM request streams
    (shared-stream runs are not shardable, see ``coordinator``).

    Crash safety (DESIGN.md §16): ``timeout_s`` bounds every
    coordinator read from a worker — a hung or dead worker raises
    :class:`~repro.resilience.ShardTimeoutError` /
    :class:`~repro.resilience.ShardCrashError` instead of blocking
    forever.  ``supervise`` (a
    :class:`~repro.resilience.SupervisorPolicy`) turns those failures
    into recovery: the worker pool is respawned from the last
    hour-boundary shard snapshots with exponential backoff, degrading
    to in-process threads when restarts are exhausted; results stay
    byte-identical either way.  ``chaos`` (a
    :class:`~repro.resilience.ShardChaos`) injects deterministic
    worker kills/hangs for testing that very path; it needs process
    workers to kill (``workers > 0``).
    """

    shards: int = 4
    inner: str = "event"
    inner_config: object | None = None
    workers: int = 0
    supervise: object | None = None
    timeout_s: float | None = None
    chaos: object | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.inner not in ("event", "hourly"):
            raise ValueError(
                f"inner engine must be 'event' or 'hourly', got {self.inner!r}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive, got {self.timeout_s}")
        if (self.chaos is not None and not self.chaos.is_zero
                and self.workers < 1):
            raise ValueError(
                "chaos kills/hangs worker processes; it needs workers >= 1 "
                "(threads cannot be killed)")
