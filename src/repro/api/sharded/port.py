"""The shard-side half of the sharded backend: the controller port.

Each shard runs a completely *unmodified* inner engine
(:class:`~repro.sim.event_driven.EventDrivenSimulation` or
:class:`~repro.sim.hourly.HourlySimulator`) over its sub-fleet.  The
engine believes it has a consolidation controller; what it actually
has is a :class:`ShardPort` — a stand-in that makes no decisions of
its own but speaks the coordinator's lockstep protocol at the
engine's own controller touchpoints:

* ``observe_hour(t)`` ships the shard's power-state digest (the
  coordinator's replica mirrors it before running the real
  controller);
* ``step(t, now)`` runs the consolidation exchange: the coordinator
  has already run the real controller against the global replica, and
  the port extracts departing VMs, ships them, and applies the op
  list (wakes, migrations, inserts) in global call order;
* the port's hour hook (the engine's only hook) ships a second digest
  — the hourly engine changes power states *between* consolidation
  and the hook — and runs the observer exchange (scenario churn,
  maintenance) the same way.

The port deliberately defines neither ``relocate_all`` nor
``host_can_sleep``: the engines feature-test those attributes, and
their absence routes every consolidation hour through ``step`` (the
exchange) while the replica-side real controller takes the
relocate-all path when configured.  All ops within one exchange share
one timestamp, so meter intervals between them are zero-length and
the per-shard replay order (global call order filtered to the shard)
is result-identical to the global order.
"""

from __future__ import annotations

import pickle

from ...cluster.migration import MigrationRecord
from ...core.calendar import time_of_hour
from .guard import WakingProbe
from .wire import pickle_vm, unpickle_vm


class ShardAborted(RuntimeError):
    """The coordinator told this shard to stop (error on another shard)."""


class ShardPort:
    """Controller stand-in wired to one coordinator endpoint."""

    def __init__(self, endpoint, controller_name: str,
                 uses_idleness: bool, shard_index: int = 0,
                 chaos=None) -> None:
        self._ep = endpoint
        #: Mirrors the real controller so shard-native results carry
        #: the same provenance as an unsharded run.
        self.name = controller_name
        #: The engines consult this to decide whether idleness models
        #: must be updated even when ``config.update_models`` is off.
        self.uses_idleness = uses_idleness
        self.engine = None
        self._shard_index = shard_index
        #: Deterministic process-chaos harness (DESIGN.md §16): fires
        #: kill/hang at the hour barrier, a replayable protocol point.
        self._chaos = chaos
        self._event = True
        self._update_models = True
        self._injector = None
        self._bundles: dict[str, dict] = {}
        self._population_changed = False
        self._want_state = False
        self._probe: WakingProbe | None = None

    def __getstate__(self) -> dict:
        # The endpoint is a live pipe/queue — the one part of the shard
        # graph that cannot travel in a snapshot.  The respawned worker
        # re-wires a fresh endpoint before continuing.
        state = self.__dict__.copy()
        state["_ep"] = None
        return state

    def attach(self, engine, inner: str, update_models: bool,
               injector=None) -> None:
        """Wire the port to its engine after engine construction (the
        engine needs the port first — chicken and egg)."""
        self.engine = engine
        self._event = inner == "event"
        self._update_models = update_models
        self._injector = injector
        if self._event:
            # The waking-plane guard: records the shard's organic
            # waking activity for the coordinator's locality checks
            # (the hourly inner has no waking plane).
            self._probe = WakingProbe(engine)

    # ------------------------------------------------------------------
    # controller protocol (called by the inner engine)
    # ------------------------------------------------------------------
    def observe_hour(self, hour_index: int) -> None:
        if self._chaos is not None:
            # Fire *before* the hour digest leaves: the coordinator has
            # received nothing for this hour yet, so recovery replays
            # from the previous boundary and the respawned shard
            # re-sends an identical digest.
            self._chaos.fire(self._shard_index, hour_index)
        self._ep.send(("hour", hour_index, self._digest(),
                       self.drain_probe()))

    def drain_probe(self) -> dict | None:
        """The waking records accumulated since the last boundary
        (``None`` from the hourly inner, which has no probe)."""
        return self._probe.drain() if self._probe is not None else None

    def step(self, hour_index: int, now: float | None = None,
             executor=None) -> int:
        if now is None:  # pragma: no cover - engines always pass now
            now = time_of_hour(hour_index)
        self._exchange(hour_index, now, consolidation=True)
        return 0

    def hook(self, hour_index: int, now: float) -> None:
        """The engine's hour hook: digest barrier + observer exchange."""
        self._ep.send(("hook", hour_index, self._digest()))
        self._exchange(hour_index, now, consolidation=False)
        if self._injector is not None and not self._event:
            # The hourly engine has no event queue for crash timers; the
            # shard-local injector fires them at the hook, exactly where
            # the plain hourly run fires them (observer order: churn ops
            # just applied, faults next).
            self._injector.on_hour(hour_index, now)
        if self._want_state:
            # Snapshot as the *last* action of the hour: churn ops and
            # fault timers above are inside the pickled state, so the
            # blob is exactly "hour complete" — the resume point.  The
            # probe's method wrappers are closures over live objects;
            # strip them around the pickle (recorded data stays).
            self._want_state = False
            if self._probe is not None:
                self._probe.unwrap()
            blob = pickle.dumps(self, pickle.HIGHEST_PROTOCOL)
            if self._probe is not None:
                self._probe.rewrap()
            self._ep.send(("state", blob))

    def _digest(self) -> list:
        return [h.state for h in self.engine.dc.hosts]

    # ------------------------------------------------------------------
    # the three-phase exchange
    # ------------------------------------------------------------------
    def _exchange(self, hour_index: int, now: float,
                  consolidation: bool) -> None:
        # The exchange's map surgery (extract drops, sidecar installs,
        # bulk refresh, force-awake drops) is mirrored exactly by the
        # coordinator — mute the probe so only organic activity is
        # recorded.  Host transitions stay recorded throughout: the
        # verifier needs them to reconstruct power states.
        if self._probe is not None:
            self._probe.muted = True
        try:
            self._exchange_body(hour_index, now, consolidation)
        finally:
            if self._probe is not None:
                self._probe.muted = False

    def _exchange_body(self, hour_index: int, now: float,
                       consolidation: bool) -> None:
        msg = self._recv()
        directives = msg[1]  # ("extract", [(vm_name, wake), ...])
        bundles = {name: self._extract(name, wake, now)
                   for name, wake in directives}
        self._ep.send(("bundles", bundles))
        msg = self._recv()  # ("ops", [op, ...], {bundles}, want_state?)
        ops = msg[1]
        self._bundles = msg[2]
        if len(msg) > 3 and msg[3]:
            self._want_state = True
        self._population_changed = bool(directives)
        inserted: list = []
        for op in ops:
            self._apply(op, now, inserted)
        if consolidation and self._update_models:
            # Consolidation-inserted VMs miss this tick's model update on
            # both shards (extracted before the source observed, absent
            # from the destination's binding): observe them here.  Safe —
            # nothing reads models between the engines' update step and
            # the hook.  Hook-time transfers (churn) were already
            # observed on their source shard this tick.
            for vm in inserted:
                vm.model.observe(hour_index, vm.current_activity)
        if self._population_changed:
            self.engine.rebind_fleet()
        self._bundles = {}

    def _recv(self):
        msg = self._ep.recv()
        if msg[0] == "abort":
            raise ShardAborted("coordinator aborted the run")
        return msg

    # ------------------------------------------------------------------
    # extraction (phase A): detach a departing VM, pack its sidecars
    # ------------------------------------------------------------------
    def _extract(self, vm_name: str, wake: bool, now: float) -> dict:
        engine = self.engine
        dc = engine.dc
        vm, host = dc.find_vm(vm_name)
        if wake and self._event:
            # Migration-triggered extraction wakes the source first,
            # exactly like the engine's own migration executor.
            engine._force_awake(host)
        host.sync_meter(now)
        host.remove_vm(vm)
        dc._placement.pop(vm_name, None)
        dc._vm_by_name.pop(vm_name, None)
        dc._note_detach(vm, host)
        bundle: dict = {"vm": pickle_vm(vm)}
        if self._event:
            bundle["stream"] = engine._request_streams._streams.pop(
                vm_name, None)
            pending = engine.switch._pending
            bundle["pending"] = [r for r in pending if r.vm_name == vm_name]
            engine.switch._pending = [
                r for r in pending if r.vm_name != vm_name]
            # This hour's still-scheduled arrivals travel with the VM:
            # they would complete on the VM's new host in an unsharded
            # run.  Cancelled events are not counted by the kernel, so
            # events_processed is conserved across the transfer.
            arrivals = [ev for _, _, ev in engine.sim._heap
                        if not ev.cancelled
                        and ev.callback == engine._submit_generated
                        and ev.args and ev.args[0] == vm_name]
            arrivals.sort(key=lambda ev: (ev.time, ev.seq))
            bundle["arrivals"] = [(ev.time, ev.args[1]) for ev in arrivals]
            for ev in arrivals:
                ev.cancel()
            mac = engine.waking.active.state.vm_to_mac.get(vm.ip_address)
            bundle["waking_mac"] = mac
            bundle["ip"] = vm.ip_address
            kept = False
            if mac is not None:
                # Keep the entry while another local VM shares the IP —
                # plain's single global entry serves them all.  The
                # coordinator mirrors this decision from the bundle.
                kept = any(v.ip_address == vm.ip_address for v in dc.vms)
                if not kept:
                    engine.waking.note_vm_moved(vm.ip_address, None)
            bundle["kept"] = kept
            # Swallow any boundary straggler still referencing the name
            # (defensive; arrivals and pending were moved above).
            engine._departed_vms.add(vm_name)
        return bundle

    # ------------------------------------------------------------------
    # op application (phase B)
    # ------------------------------------------------------------------
    def _apply(self, op: tuple, now: float, inserted: list) -> None:
        kind = op[0]
        engine = self.engine
        dc = engine.dc
        if kind == "wake":
            self._wake(dc.host(op[1]), now)
        elif kind == "mig":
            vm, _ = dc.find_vm(op[1])
            dc.migrate(vm, dc.host(op[2]), now)
        elif kind == "exec-mig":
            vm, _ = dc.find_vm(op[1])
            engine._execute_migration(vm, dc.host(op[2]))
        elif kind == "insert":
            self._insert(op, now, inserted)
        elif kind == "bulk":
            self._apply_bulk(op[1], now, inserted)
        elif kind == "place":
            vm = unpickle_vm(op[1])
            dc.place(vm, dc.host(op[2]))
            if self._event:
                engine._departed_vms.discard(vm.name)
            self._population_changed = True
        elif kind == "remove":
            vm, _ = dc.find_vm(op[1])
            dc.remove(vm, now)
            if self._event:
                engine.note_vm_departed(op[1])
            self._population_changed = True
        elif kind == "power_off":
            dc.host(op[1]).power_off(now)
        elif kind == "power_on":
            dc.host(op[1]).power_on(now)
        elif kind == "reinstate":
            if self._event:
                engine._schedule_check(dc.host(op[1]),
                                       engine.params.suspend_check_period_s)
        else:  # pragma: no cover - protocol invariant
            raise ValueError(f"unknown shard op {kind!r}")

    def _wake(self, host, now: float) -> None:
        from ...cluster.power import PowerState

        if self._event:
            self.engine._force_awake(host)
        elif host.state is PowerState.SUSPENDED:
            # The hourly backend's force-awake: an immediate zero-grace
            # resume (matches HourlyBackend.force_awake).
            host.begin_resume(now)
            host.finish_resume(now, 0.0)

    def _insert(self, op: tuple, now: float, inserted: list) -> None:
        _, vm_name, dest_name, src_name, duration, wake = op
        engine = self.engine
        dc = engine.dc
        bundle = self._bundles.pop(vm_name)
        vm = unpickle_vm(bundle["vm"])
        dest = dc.host(dest_name)
        if wake and self._event:
            engine._force_awake(dest)
        dest.sync_meter(now)
        dc.place(vm, dest)
        vm.migrations += 1
        dc.migrations.append(MigrationRecord(
            time=now, vm_name=vm_name, source=src_name,
            destination=dest_name, duration_s=duration))
        self._install_sidecars(vm, bundle)
        inserted.append(vm)
        self._population_changed = True

    def _install_sidecars(self, vm, bundle: dict) -> None:
        if not self._event:
            return
        engine = self.engine
        if bundle.get("stream") is not None:
            engine._request_streams._streams[vm.name] = bundle["stream"]
        engine.switch._pending.extend(bundle.get("pending", ()))
        for at, service in bundle.get("arrivals", ()):
            engine.sim.schedule_at(at, engine._submit_generated,
                                   vm.name, service)
        if bundle.get("waking_mac") is not None:
            engine.waking.note_vm_moved(vm.ip_address, bundle["waking_mac"])
        engine._departed_vms.discard(vm.name)

    def _apply_bulk(self, moves: list[dict], now: float,
                    inserted: list) -> None:
        """Relocate-all block: the shard's slice of a global
        re-assignment, mirroring ``DataCenter.apply_assignment`` —
        detach every locally moving VM first (swap-safe), then attach
        in global move order."""
        engine = self.engine
        dc = engine.dc
        dc.sync_meters(now)
        local: dict[str, object] = {}
        for mv in moves:
            name = mv["vm_name"]
            if name not in self._bundles:
                vm, src = dc.find_vm(name)
                src.remove_vm(vm)
                dc._placement.pop(name, None)
                dc._note_detach(vm, src)
                local[name] = vm
        records = []
        for mv in moves:
            name = mv["vm_name"]
            dest = dc.host(mv["destination"])
            vm = local.get(name)
            bundle = None
            if vm is None:
                bundle = self._bundles.pop(name)
                vm = unpickle_vm(bundle["vm"])
            dest.add_vm(vm)
            dc._placement[name] = dest
            dc._vm_by_name[name] = vm
            dc._note_attach(vm, dest)
            vm.migrations += 1
            record = MigrationRecord(
                time=mv["time"], vm_name=name, source=mv["source"],
                destination=mv["destination"], duration_s=mv["duration_s"])
            dc.migrations.append(record)
            records.append(record)
            if bundle is not None:
                self._install_sidecars(vm, bundle)
                inserted.append(vm)
                self._population_changed = True
        dc.check_invariants()
        if self._event:
            engine._refresh_waking_after_bulk(records)
