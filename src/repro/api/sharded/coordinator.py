"""The sharded backend's coordinator: one global brain, N shard engines.

``ShardedCoordinator`` is the "engine" object the façade drives when
``backend="sharded"``.  It partitions the fleet by host name
(:mod:`.partition`), ships each partition to a shard running an
unmodified inner engine around a :class:`~.port.ShardPort`, and keeps
the *original* data center as a *replica*: a global mirror whose power
states come from shard digests and whose placement the coordinator
itself maintains.  The real consolidation controller and the real
observers (scenario churn, user hooks) run against the replica only —
their side effects are captured as ops and replayed into the owning
shards through the per-hour three-phase exchange:

1. **extract** — each shard detaches the VMs leaving it this tick and
   ships them as self-contained bundles (pickled VM + request stream +
   queued requests + scheduled arrivals + waking-map entry);
2. **bundles** — the coordinator routes each bundle to the shard that
   now owns the VM;
3. **ops** — each shard applies its op list in global call order.

Every op in one exchange shares the tick's timestamp, so meter
intervals between replayed ops are zero-length and the per-shard
filtered order is result-identical to the global order; the digests
before the controller (``hour``) and before the observers (``hook``)
keep the replica's power states exact even though the hourly engine
flips states *between* those two points.  The reduction then rebuilds
the single-engine result bit-for-bit: per-host quantities reassemble
in fleet order from their owning shard, request latencies merge as a
multiset (the digest sorts), waking heartbeats and hour ticks are
de-duplicated by count, and placement-level counts come straight from
the replica.

Not shardable (rejected with ``ValueError``): shared request streams
(one global RNG), controllers that veto sleep per-host on the hourly
inner (they read global state at power-step time), waking-service
fault plans and resume failures (both draw from streams whose order
depends on the global interleaving).
"""

from __future__ import annotations

import math
import time

import numpy as np

from ...cluster.power import PowerState
from ...core.binding import FleetBinding
from ...core.calendar import time_of_hour
from ...resilience import ShardCrashError, ShardTimeoutError
from ..result import RunResult
from .config import ShardedConfig
from .guard import WakingVerifier
from .partition import clone_shard_dc, detach_fleet_models, partition_hosts
from .transport import ShardTransport
from .wire import pickle_vm, record_as_dict


class ShardError(RuntimeError):
    """A shard died or broke protocol; the run cannot continue."""


class ShardedCoordinator:
    """Drives one sharded run; the façade's ``engine`` object."""

    def __init__(self, dc, controller, params,
                 config: ShardedConfig | None = None,
                 hour_hooks: tuple = ()) -> None:
        self.dc = dc
        self.controller = controller
        self.params = params
        self.config = config if config is not None else ShardedConfig()
        self.hour_hooks = tuple(hour_hooks)
        self._inner_config = self._resolve_inner_config()
        self._validate()
        #: Migration attempts refused because an endpoint host was
        #: crashed — counted here (the replica decides), never on shards.
        self.migrations_blocked = 0
        self._fault = None
        self._binding = None
        self._horizon: tuple[int, int] | None = None
        self._outcomes: list[dict] | None = None
        self._transport: ShardTransport | None = None
        self._shard_hosts: list[list] = []
        self._shard_of_host: dict[str, int] = {}
        self._vm_shard: dict[str, int] = {}
        self._extracts: list[list] = []
        self._ops: list[list] = []
        self._needs: list[set] = []
        self._bulk_records: list = []
        self._verifier: WakingVerifier | None = None
        self._now = 0.0
        # --- crash safety (DESIGN.md §16) -------------------------------
        #: Worker count for the *next* pool launch; drops to 0 (threads)
        #: when supervision degrades.
        self._workers_mode = self.config.workers
        self._supervise = self.config.supervise
        timeout = self.config.timeout_s
        if timeout is None and self._supervise is not None:
            timeout = self._supervise.deadline_s
        self._timeout_s = timeout
        #: Per-shard message journal since the last boundary snapshot:
        #: ``("send", msg)`` / ``("recv",)`` entries in protocol order.
        #: ``None`` when recovery is off (no supervision or no processes
        #: to lose) — nothing would ever replay it.
        self._journal: list[list] | None = None
        self._restarts = 0
        #: Last hour-boundary shard snapshots (pickled ports) and the
        #: hour they describe; what respawn and checkpoint resume from.
        self._shard_states: list | None = None
        self._state_hour: int | None = None
        self._setups: list | None = None
        self._next_hour = 0
        self._migrations_before = 0
        self._current_hour: int | None = None
        self._ckpt_request: tuple | None = None
        # --- observability (DESIGN.md §17) ------------------------------
        #: Telemetry endpoint installed by a metrics/trace-enabled run;
        #: stays ``None`` — zero hooks, zero clock reads — otherwise.
        self._obs = None
        #: Exchange-cost accumulators, populated only when the runtime
        #: asks for metrics (pickling the bundle dict a second time has
        #: a real cost — the off path never pays it).
        self._obs_bundle_bytes = 0
        self._obs_recv_wall: dict[int, float] = {}

    def __getstate__(self) -> dict:
        # A coordinator inside a checkpoint: live transport machinery
        # stays behind; the boundary snapshots in ``_shard_states`` are
        # what the resumed run relaunches from, which also makes the
        # original setup clones (only needed for a before-first-boundary
        # respawn) dead weight.
        state = self.__dict__.copy()
        state["_transport"] = None
        state["_journal"] = None
        state["_ckpt_request"] = None
        if state.get("_shard_states") is not None:
            state["_setups"] = None
        return state

    # ------------------------------------------------------------------
    def _resolve_inner_config(self):
        cfg = self.config.inner_config
        if cfg is not None:
            return cfg
        if self.config.inner == "event":
            from ...sim.event_driven import EventConfig

            return EventConfig(request_streams="per-vm")
        from ...sim.hourly import HourlyConfig

        return HourlyConfig()

    def _validate(self) -> None:
        cfg = self._inner_config
        if self.config.inner == "event":
            if getattr(cfg, "request_streams", "shared") != "per-vm":
                raise ValueError(
                    "the sharded backend needs request_streams='per-vm': "
                    "a shared request stream's draw order depends on the "
                    "global fleet interleaving and cannot be partitioned")
            if not cfg.use_bulk_requests:
                raise ValueError(
                    "the sharded backend needs use_bulk_requests=True "
                    "(the per-push path draws from one global stream)")
        elif getattr(self.controller, "host_can_sleep", None) is not None:
            raise ValueError(
                f"controller {self.controller.name!r} vetoes sleep "
                "per-host from global state; the hourly inner engine "
                "would consult it on every shard — not shardable")

    # ------------------------------------------------------------------
    # fault-plan installation (called by FaultInjector.on_run_start)
    # ------------------------------------------------------------------
    def install_fault_plan(self, injector, start_hour: int,
                           n_hours: int) -> None:
        plan = injector.plan
        if not plan.waking.is_zero:
            raise ValueError(
                "waking-service faults (kill_primary_at_h / partitions) "
                "target per-shard service replicas and are not shardable")
        if plan.transitions.resume_failure_probability > 0.0:
            raise ValueError(
                "resume failures draw from one shared stream in global "
                "resume order and are not shardable")
        # The global schedule (name-keyed per-host streams, global
        # max_crashes cap) is computed once here and sliced by owning
        # shard, so every shard sees exactly the crashes an unsharded
        # run would inject on its hosts.
        schedule = injector._crash_schedule(self.dc.hosts, start_hour,
                                            n_hours)
        self._fault = (injector, schedule)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self, n_hours: int, start_hour: int = 0) -> RunResult:
        if n_hours <= 0:
            raise ValueError("n_hours must be positive")
        detach_fleet_models(self.dc)
        shard_lists = partition_hosts(self.dc, self.config.shards)
        if not shard_lists:
            raise ValueError("cannot shard an empty fleet")
        self._shard_hosts = shard_lists
        self._shard_of_host = {h.name: k
                               for k, hosts in enumerate(shard_lists)
                               for h in hosts}
        self._vm_shard = {vm.name: self._shard_of_host[h.name]
                          for hosts in shard_lists
                          for h in hosts for vm in h.vms}
        if self.config.inner == "event":
            # The waking-plane guard (DESIGN.md §15): replays each
            # shard's recorded waking activity and refuses runs whose
            # waking interactions cross shards mid-hour.
            self._verifier = WakingVerifier(self.dc, self._shard_of_host,
                                            len(shard_lists))
        setups = self._build_setups(shard_lists, n_hours, start_hour)
        self._setups = setups
        self._horizon = (start_hour, n_hours)
        self._next_hour = start_hour
        self._bind_replica()
        self._migrations_before = len(self.dc.migrations)
        self._workers_mode = self.config.workers
        self._restarts = 0
        self._shard_states = None
        self._state_hour = None
        self._journal = (
            [[] for _ in setups]
            if self._supervise is not None and self._workers_mode > 0
            else None)
        self._transport = ShardTransport(setups, self._workers_mode,
                                         timeout_s=self._timeout_s)
        return self._drive()

    def continue_run(self) -> RunResult:
        """Resume a checkpointed run: relaunch every shard from its
        boundary snapshot and drive the remaining hours.  Called by the
        façade after :meth:`Simulation.resume` unpickles the graph."""
        if self._horizon is None or self._shard_states is None:
            raise RuntimeError("no run in progress to continue")
        self._workers_mode = self.config.workers
        self._restarts = 0
        self._journal = (
            [[] for _ in self._shard_states]
            if self._supervise is not None and self._workers_mode > 0
            else None)
        self._transport = ShardTransport(self._respawn_setups(),
                                         self._workers_mode,
                                         timeout_s=self._timeout_s)
        return self._drive()

    def _drive(self) -> RunResult:
        start_hour, n_hours = self._horizon
        try:
            for t in range(self._next_hour, start_hour + n_hours):
                self._hour(t)
            outcomes = [self._recv(k, "done")[1]
                        for k in range(len(self._shard_hosts))]
            self._verify_window([o.get("waking") for o in outcomes],
                                f"end of hour {start_hour + n_hours - 1}",
                                check_states=False)
        except BaseException:
            if self._transport is not None:
                self._transport.abort()
                self._transport.shutdown(force=True)
                self._transport = None
            raise
        self._transport.shutdown()
        self._transport = None
        self._outcomes = outcomes
        self.dc.sync_meters(time_of_hour(start_hour + n_hours))
        return self._reduce(outcomes, n_hours, self._migrations_before)

    def request_checkpoint(self, manager, t: int) -> None:
        """Deferred checkpoint (called by the manager's hour hook, which
        fires mid-exchange): the snapshot is taken at the end of
        :meth:`_hour`, once the shards have shipped their boundary
        states."""
        self._ckpt_request = (manager, t)

    def _build_setups(self, shard_lists: list[list], n_hours: int,
                      start_hour: int) -> list[dict]:
        from dataclasses import replace

        shard_cfg = self._inner_config
        if self.config.inner == "hourly":
            # The hourly engine hoists its columnar accounting view per
            # hour, *before* consolidation — a mid-tick cross-shard
            # insert would be invisible to it.  The scalar path reads
            # live state and is bit-identical (asserted by the parity
            # suite), so shards run without host accounting.
            shard_cfg = replace(shard_cfg, use_host_accounting=False)
        setups = []
        for k, hosts in enumerate(shard_lists):
            fault = None
            if self._fault is not None:
                injector, schedule = self._fault
                names = {h.name for h in hosts}
                fault = {"plan": injector.plan, "seed": injector.seed,
                         "crashes": [(at, nm) for at, nm in schedule
                                     if nm in names]}
            setups.append({
                "index": k,
                "dc": clone_shard_dc(self.dc, hosts),
                "controller_name": self.controller.name,
                "uses_idleness": getattr(self.controller, "uses_idleness",
                                         False),
                "params": self.params,
                "inner": self.config.inner,
                "config": shard_cfg,
                "n_hours": n_hours,
                "start_hour": start_hour,
                "fault": fault,
                "chaos": (self.config.chaos
                          if self.config.chaos is not None
                          and not self.config.chaos.is_zero else None),
                # Telemetry flags (DESIGN.md §17): workers build their
                # own ShardTelemetry endpoint and ship spans/counters
                # home on the ("done", outcome) message.
                "obs_trace": self._obs is not None and self._obs.tracing,
                "obs_metrics": (self._obs is not None
                                and self._obs.metrics is not None),
            })
        return setups

    def _bind_replica(self) -> None:
        if getattr(self._inner_config, "use_fleet_model", False):
            self._binding = FleetBinding.try_bind(self.dc, self.params,
                                                  accounting=False)
            if self._binding is not None and self._horizon is not None:
                self._binding.ensure_horizon(*self._horizon)
        else:
            self._binding = None

    # ------------------------------------------------------------------
    # the per-hour lockstep
    # ------------------------------------------------------------------
    def _hour(self, t: int) -> None:
        cfg = self._inner_config
        now = time_of_hour(t)
        self._now = now
        self._current_hour = t
        if self._transport is not None:
            self._transport.current_hour = t
        n_shards = len(self._shard_hosts)
        obs = self._obs
        metrics_on = obs is not None and obs.metrics is not None
        drains = []
        if obs is not None:
            obs.phase_begin("shard-digests")
        for k in range(n_shards):
            if metrics_on:
                t0 = time.perf_counter()
            msg = self._recv(k, "hour")
            if metrics_on:
                # Per-shard hour wall: how long the coordinator waited
                # on each shard's hour boundary (the straggler signal).
                self._obs_recv_wall[k] = (self._obs_recv_wall.get(k, 0.0)
                                          + time.perf_counter() - t0)
            self._apply_digest(k, msg[2])
            drains.append(msg[3])
        if obs is not None:
            obs.phase_end()
        self._verify_window(drains, f"hour {t}")
        # Replica prologue — mirror of the engines' hour prologue, so
        # the real controller reads the same activities and models an
        # unsharded run would show it.  (Replica meters are clock
        # hygiene only; no result reads them.)
        vms = self.dc.vms
        binding = self._binding
        activities = None
        if binding is not None and binding.covers(vms):
            self.dc.sync_meters(now)
            activities = binding.load_hour(t)
        else:
            self.dc.set_hour_activities(t, now)
        self.controller.observe_hour(t)
        if t % cfg.consolidation_period_h == 0:
            if obs is not None:
                obs.phase_begin("consolidate")
            self._begin_capture()
            if cfg.relocate_all_mode and hasattr(self.controller,
                                                 "relocate_all"):
                before = len(self.dc.migrations)
                self.controller.relocate_all(t, now)
                self._route_bulk(self.dc.migrations[before:])
            elif self.config.inner == "event":
                self.controller.step(t, now,
                                     executor=self._capturing_executor)
            else:
                before = len(self.dc.migrations)
                self.controller.step(t, now)
                self._route_records(self.dc.migrations[before:])
            self._flush_exchange()
            if obs is not None:
                obs.phase_end()
        if cfg.update_models or getattr(self.controller, "uses_idleness",
                                        False):
            if activities is not None:
                binding.observe(t, activities)
            else:
                for vm in vms:
                    vm.model.observe(t, vm.current_activity)
        # Hook barrier: a second digest (the hourly engine changes power
        # states between consolidation and its hooks), then the
        # observers against the replica with op capture.
        for k in range(n_shards):
            self._apply_digest(k, self._recv(k, "hook")[2])
        self._begin_capture()
        for hook in self.hour_hooks:
            hook(t, now)
        # Hour t is complete once this exchange lands: record the resume
        # point *before* any snapshot below pickles the coordinator.
        self._next_hour = t + 1
        want_state = (self._journal is not None
                      or self._ckpt_request is not None)
        if obs is not None:
            obs.phase_begin("observer-exchange")
        self._flush_exchange(want_state=want_state)
        if obs is not None:
            obs.phase_end()
            obs.hour_mark(t)
        if want_state:
            # Boundary snapshot: each shard pickles its whole graph as
            # the last action of its hook — "hour t complete" exactly.
            # From here on, recovery replays from these states, so the
            # journal of the finished hour can be dropped.
            self._shard_states = [self._recv(k, "state")[1]
                                  for k in range(n_shards)]
            self._state_hour = t
            if self._journal is not None:
                self._journal = [[] for _ in range(n_shards)]
        if self._ckpt_request is not None:
            manager, hour = self._ckpt_request
            self._ckpt_request = None
            manager.write_checkpoint(hour)

    # ------------------------------------------------------------------
    # telemetry (DESIGN.md §17)
    # ------------------------------------------------------------------
    def telemetry_sample(self) -> dict:
        """Coordinator-side counters for the telemetry runtime: worker
        respawns, exchange bundle bytes, per-shard hour wall."""
        sample = {
            "worker_restarts": self._restarts,
            "exchange_bundle_bytes": self._obs_bundle_bytes,
            "migrations": len(self.dc.migrations),
            "migrations_blocked": self.migrations_blocked,
        }
        for k, wall in sorted(self._obs_recv_wall.items()):
            sample[f"shard{k}_hour_wall_s"] = wall
        return sample

    def collect_shard_spans(self) -> list[dict]:
        """Spans shipped home by the shard workers (pid ``k + 1``),
        merged by the runtime into the coordinator's timeline."""
        events: list[dict] = []
        for outcome in self._outcomes or []:
            events.extend(outcome.get("spans") or ())
        return events

    def collect_shard_telemetry(self) -> dict:
        """Sum the shards' final counter samples (run totals only —
        per-hour shard series stay shard-side)."""
        totals: dict[str, float] = {}
        for outcome in self._outcomes or []:
            for name, value in (outcome.get("telemetry") or {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def _verify_window(self, drains: list, label: str,
                       check_states: bool = True) -> None:
        """Run the waking guard over one hour's records (event inner
        only).  ``check_states`` cross-checks the verifier's replayed
        power states against the digest just applied — a protocol
        sanity net over the probe itself."""
        verifier = self._verifier
        if verifier is None:
            return
        residency: dict[str, set[int]] = {}
        for vm in self.dc.vms:
            if vm.interactive:
                residency.setdefault(vm.ip_address, set()).add(
                    self._vm_shard[vm.name])
        verifier.verify_window(drains, residency, label)
        if check_states:
            for host in self.dc.hosts:
                if verifier.states[host.name] is not host.state:
                    raise ShardError(
                        f"waking guard desynchronized at {label}: host "
                        f"{host.name} digest says {host.state.name}, "
                        "transition replay says "
                        f"{verifier.states[host.name].name}")

    def _apply_digest(self, k: int, states: list) -> None:
        for host, state in zip(self._shard_hosts[k], states):
            host.state = state

    def _recv(self, k: int, expect: str):
        msg = self._recv_raw(k)
        if msg[0] == "error":
            raise ShardError(f"shard {k} failed:\n{msg[1]}")
        if msg[0] != expect:
            raise ShardError(f"protocol error from shard {k}: "
                             f"expected {expect!r}, got {msg[0]!r}")
        return msg

    # ------------------------------------------------------------------
    # supervised I/O: journal, recover, replay (DESIGN.md §16)
    # ------------------------------------------------------------------
    def _send(self, k: int, msg) -> None:
        # Journal *before* the physical send: if it fails mid-flight the
        # recovery replay covers this message, so the caller never
        # re-sends.
        if self._journal is not None:
            self._journal[k].append(("send", msg))
        try:
            self._transport.endpoints[k].send(msg)
        except (ShardCrashError, ShardTimeoutError) as exc:
            self._recover(exc)

    def _recv_raw(self, k: int):
        while True:
            try:
                msg = self._transport.endpoints[k].recv()
            except (ShardCrashError, ShardTimeoutError) as exc:
                self._recover(exc)
                continue
            if self._journal is not None:
                self._journal[k].append(("recv",))
            return msg

    def _recover(self, exc: BaseException) -> None:
        """A worker died or hung: respawn the pool from the last
        boundary snapshots, replay the journal, and let the caller
        retry the failed operation — or give up per policy."""
        policy = self._supervise
        if policy is None or self._journal is None:
            raise exc
        from ...obs.log import get_logger

        log = get_logger("sharded")
        while True:
            self._restarts += 1
            log.warning(
                "shard worker lost (%s); respawning pool (restart %d)",
                exc, self._restarts)
            if self._obs is not None:
                self._obs.instant("worker-respawn")
            if self._restarts > policy.max_restarts:
                if policy.degrade and self._workers_mode > 0:
                    # Last resort: bring the shards home as threads of
                    # this process.  Same snapshots, same protocol, no
                    # processes left to lose.
                    self._workers_mode = 0
                else:
                    raise ShardError(
                        f"shard workers failed beyond max_restarts="
                        f"{policy.max_restarts}; last failure: {exc}"
                    ) from exc
            else:
                time.sleep(policy.backoff_s(self._restarts))
            try:
                self._relaunch()
                return
            except (ShardCrashError, ShardTimeoutError) as next_exc:
                exc = next_exc

    def _relaunch(self) -> None:
        old = self._transport
        self._transport = None
        if old is not None:
            old.kill()
        transport = ShardTransport(self._respawn_setups(),
                                   self._workers_mode,
                                   timeout_s=self._timeout_s)
        transport.current_hour = self._current_hour
        self._transport = transport
        # Replay the coordinator's half of the protocol since the last
        # boundary: re-send every journaled send, drain every journaled
        # recv.  Per-shard order is what correctness needs (shards only
        # talk to the coordinator, never to each other), and sends are
        # buffered, so shard-by-shard replay cannot deadlock.
        for k, entries in enumerate(self._journal):
            endpoint = transport.endpoints[k]
            for entry in entries:
                if entry[0] == "send":
                    endpoint.send(entry[1])
                else:
                    msg = endpoint.recv()
                    if msg[0] == "error":
                        raise ShardError(
                            f"shard {k} failed during recovery replay:\n"
                            f"{msg[1]}")

    def _respawn_setups(self) -> list[dict]:
        """Fresh worker setups: boundary snapshots when we have them
        (every shard resumes its in-progress run), the original setup
        clones otherwise (failure before the first boundary — the
        shards start over and the journal replays hour 0's messages).
        Chaos entries at or before the current hour already fired and
        are stripped, so each kill/hang fires exactly once."""
        chaos = self.config.chaos
        if chaos is not None and self._current_hour is not None:
            chaos = chaos.surviving(self._current_hour)
        if chaos is not None and chaos.is_zero:
            chaos = None
        if self._shard_states is not None:
            return [{"index": k, "inner": self.config.inner,
                     "state": blob, "chaos": chaos}
                    for k, blob in enumerate(self._shard_states)]
        setups = []
        for setup in self._setups:
            setup = dict(setup)
            setup["chaos"] = chaos
            setups.append(setup)
        return setups

    # ------------------------------------------------------------------
    # op capture
    # ------------------------------------------------------------------
    def _begin_capture(self) -> None:
        n_shards = len(self._shard_hosts)
        self._extracts = [[] for _ in range(n_shards)]
        self._ops = [[] for _ in range(n_shards)]
        self._needs = [set() for _ in range(n_shards)]
        self._bulk_records = []

    def _flush_exchange(self, want_state: bool = False) -> None:
        n_shards = len(self._shard_hosts)
        for k in range(n_shards):
            self._send(k, ("extract", self._extracts[k]))
        bundles: dict[str, dict] = {}
        for k in range(n_shards):
            bundles.update(self._recv(k, "bundles")[1])
        if (bundles and self._obs is not None
                and self._obs.metrics is not None):
            import pickle

            self._obs_bundle_bytes += len(
                pickle.dumps(bundles, protocol=pickle.HIGHEST_PROTOCOL))
        for k in range(n_shards):
            ops = [("place", pickle_vm(op[1]), op[2]) if op[0] == "place"
                   else op for op in self._ops[k]]
            self._send(k, ("ops", ops,
                           {name: bundles[name] for name in self._needs[k]},
                           want_state))
        self._mirror_map_surgery(bundles)

    def _mirror_map_surgery(self, bundles: dict[str, dict]) -> None:
        """Replay this exchange's waking-map surgery into the guard's
        replicas: the entry travelling with each extracted VM, then the
        bulk refresh in global record order (exactly what the shards
        apply while their probes are muted)."""
        verifier = self._verifier
        if verifier is None:
            return
        for k, extracts in enumerate(self._extracts):
            for name, _wake in extracts:
                bundle = bundles[name]
                verifier.transfer(k, self._vm_shard[name],
                                  bundle.get("ip"),
                                  bundle.get("waking_mac"),
                                  bundle.get("kept", False))
        for record in self._bulk_records:
            vm, _ = self.dc.find_vm(record.vm_name)
            dest = self.dc.host(record.destination)
            drowsy = dest.state in (PowerState.SUSPENDING,
                                    PowerState.SUSPENDED)
            verifier.bulk_note(self._shard_of_host[dest.name],
                               vm.ip_address,
                               dest.mac_address if drowsy else None)
        self._bulk_records = []

    def _mirror_wake(self, host) -> None:
        # The replica half of a force-awake: state + meter only (the
        # channel/waking/switch machinery lives on the shards).  A
        # SUSPENDING host resumes shard-side when its transition
        # completes; the next digest refreshes the replica.
        if host.state is PowerState.SUSPENDED:
            host.begin_resume(self._now)
            host.finish_resume(self._now, 0.0)
            if self._verifier is not None:
                self._verifier.surgery_wake(host.mac_address, self._now)

    def _capturing_executor(self, vm, dest) -> None:
        # Mirror of EventDrivenSimulation._execute_migration over the
        # replica, emitting the shard ops that replay it.
        dc = self.dc
        src = dc.host_of(vm)
        if (src.state is PowerState.CRASHED
                or dest.state is PowerState.CRASHED):
            self.migrations_blocked += 1
            return
        self._mirror_wake(src)
        self._mirror_wake(dest)
        dc.migrate(vm, dest, self._now)
        k_src = self._shard_of_host[src.name]
        k_dst = self._shard_of_host[dest.name]
        if k_src == k_dst:
            self._ops[k_src].append(("exec-mig", vm.name, dest.name))
        else:
            self._extracts[k_src].append((vm.name, True))
            self._needs[k_dst].add(vm.name)
            record = dc.migrations[-1]
            self._ops[k_dst].append(("insert", vm.name, dest.name,
                                     src.name, record.duration_s, True))
            self._vm_shard[vm.name] = k_dst

    def _route_records(self, records) -> None:
        """Route already-applied replica migrations (hourly controller
        steps, churn evacuations) as no-wake migration ops."""
        for record in records:
            k_src = self._shard_of_host[record.source]
            k_dst = self._shard_of_host[record.destination]
            if k_src == k_dst:
                self._ops[k_src].append(("mig", record.vm_name,
                                         record.destination))
            else:
                self._extracts[k_src].append((record.vm_name, False))
                self._needs[k_dst].add(record.vm_name)
                self._ops[k_dst].append(
                    ("insert", record.vm_name, record.destination,
                     record.source, record.duration_s, False))
                self._vm_shard[record.vm_name] = k_dst

    def _route_bulk(self, records) -> None:
        moves: list[list[dict]] = [[] for _ in self._shard_hosts]
        for record in records:
            k_src = self._shard_of_host[record.source]
            k_dst = self._shard_of_host[record.destination]
            if k_src != k_dst:
                self._extracts[k_src].append((record.vm_name, False))
                self._needs[k_dst].add(record.vm_name)
                self._vm_shard[record.vm_name] = k_dst
            moves[k_dst].append(record_as_dict(record))
        for k, shard_moves in enumerate(moves):
            if shard_moves:
                self._ops[k].append(("bulk", shard_moves))
        self._bulk_records.extend(records)

    # ------------------------------------------------------------------
    # admin surface (what the façade's backend adapter delegates here;
    # scenario churn drives these during the hook barrier)
    # ------------------------------------------------------------------
    def rebind_fleet(self) -> None:
        self._bind_replica()

    def force_awake(self, host, now: float) -> None:
        self._mirror_wake(host)
        self._ops[self._shard_of_host[host.name]].append(
            ("wake", host.name))

    def reinstate_check(self, host) -> None:
        self._ops[self._shard_of_host[host.name]].append(
            ("reinstate", host.name))

    def note_vm_departed(self, vm_name: str) -> None:
        k = self._vm_shard.pop(vm_name, None)
        if k is not None:
            self._ops[k].append(("remove", vm_name))

    def evacuate_host(self, host, now: float, targets=None):
        before = len(self.dc.migrations)
        migrated, stranded = self.dc.evacuate(host, now, targets)
        self._route_records(self.dc.migrations[before:])
        return migrated, stranded

    def place_vm(self, vm, dest) -> None:
        self.dc.place(vm, dest)
        k = self._shard_of_host[dest.name]
        self._vm_shard[vm.name] = k
        # The VM object is pickled at flush time, after the tick's
        # remaining hooks finished mutating it (activity, rebinding).
        self._ops[k].append(("place", vm, dest.name))

    def power_off_host(self, host, now: float) -> None:
        host.power_off(now)
        self._ops[self._shard_of_host[host.name]].append(
            ("power_off", host.name))

    def power_on_host(self, host, now: float) -> None:
        host.power_on(now)
        self._ops[self._shard_of_host[host.name]].append(
            ("power_on", host.name))

    # ------------------------------------------------------------------
    # reduction
    # ------------------------------------------------------------------
    def _reduce(self, outcomes: list[dict], n_hours: int,
                migrations_before: int) -> RunResult:
        natives = [o["native"] for o in outcomes]
        owner = self._shard_of_host

        def per_host(field: str) -> dict:
            return {h.name: getattr(natives[owner[h.name]], field)[h.name]
                    for h in self.dc.hosts}

        base = dict(
            hours=n_hours,
            controller_name=self.controller.name,
            backend="sharded",
            energy_kwh_by_host=per_host("energy_kwh_by_host"),
            suspended_fraction_by_host=per_host(
                "suspended_fraction_by_host"),
            suspend_cycles_by_host=per_host("suspend_cycles_by_host"),
            migrations=len(self.dc.migrations) - migrations_before,
            vm_migrations={vm.name: vm.migrations for vm in self.dc.vms},
        )
        if self.config.inner == "hourly":
            return RunResult(
                overload_host_hours=sum(r.overload_host_hours
                                        for r in natives),
                active_host_hours=sum(r.active_host_hours
                                      for r in natives),
                **base)
        from ...network.requests import summarize_latencies

        latencies = np.concatenate([o["latencies"] for o in outcomes])
        wake_latencies = np.concatenate(
            [o["wake_latencies"] for o in outcomes])
        beats = outcomes[0]["beats"]
        if any(o["beats"] != beats for o in outcomes):
            raise ShardError(
                "waking heartbeat counts diverged across shards; the "
                "events_processed reduction would be wrong")
        # Each shard ran its own hour ticks and waking heartbeats; an
        # unsharded engine runs exactly one set of each.
        extra = len(outcomes) - 1
        events = (sum(r.events_processed for r in natives)
                  - extra * n_hours - extra * beats)
        return RunResult(
            resume_cycles_by_host=per_host("resume_cycles_by_host"),
            request_summary=summarize_latencies(latencies, wake_latencies),
            wol_sent=sum(o["wol_sent"] for o in outcomes),
            events_processed=events,
            **base)

    # ------------------------------------------------------------------
    def collect_fault_summary(self, injector):
        """Merge per-shard degradation accounting into one
        :class:`~repro.faults.spec.FaultSummary` (what ``finalize``
        returns on the sharded backend)."""
        from ...faults.spec import FaultSummary

        faults = [o["fault"] for o in (self._outcomes or [])]
        # Plain sum in replica fleet order — the same order (and the
        # same float rounding) the unsharded summary uses.
        unavailability_s = sum(
            faults[self._shard_of_host[h.name]]["crashed_s"][h.name]
            for h in self.dc.hosts)

        def total(key: str) -> int:
            return sum(f[key] for f in faults)

        if self.config.inner == "hourly":
            return FaultSummary(
                plan=injector.plan.name,
                host_crashes=total("host_crashes"),
                host_recoveries=total("host_recoveries"),
                unavailability_s=unavailability_s)
        backoff_waits: list[float] = []
        for f in faults:
            backoff_waits.extend(f["backoff_waits"])
        return FaultSummary(
            plan=injector.plan.name,
            host_crashes=total("host_crashes"),
            host_recoveries=total("host_recoveries"),
            wol_dropped=total("wol_dropped"),
            wol_delayed=total("wol_delayed"),
            wol_retries=total("wol_retries"),
            wol_abandoned=total("wol_abandoned"),
            # fsum is exactly rounded: the merged total is a pure
            # function of the wait multiset, not the shard partition.
            backoff_wait_s=math.fsum(backoff_waits),
            suspend_hangs=total("suspend_hangs"),
            resume_failures=total("resume_failures"),
            failover_migrations=total("failover_migrations"),
            stranded_vms=total("stranded_vms"),
            failovers=total("failovers"),
            primary_kills=injector.primary_kills,
            partitions=injector.partitions_applied,
            window_journaled_calls=total("window_journaled_calls"),
            lost_service_calls=total("lost_service_calls"),
            stranded_requests=total("stranded_requests"),
            recovered_requests=total("recovered_requests"),
            migrations_blocked=(self.migrations_blocked
                                + total("migrations_blocked")),
            unavailability_s=unavailability_s)
