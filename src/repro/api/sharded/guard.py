"""Cross-shard waking-plane guard (DESIGN.md §15).

The event engine's waking plane — the VM->MAC map consulted on every
request, the WoL packets it emits, and the host power transitions they
trigger — is *global* mutable state with sub-hour causality: a request
analyzed anywhere in the fleet can wake a host anywhere else,
immediately, and IP addresses collide across VMs by design (the map is
keyed by a 250-address space).  The sharded backend runs one waking
service per shard and exchanges state only at hour boundaries, so a
run whose waking interactions cross shards *mid-hour* cannot be
reproduced bit-for-bit by any hour-lockstep protocol.  Rather than
ever returning a silently divergent result, the backend verifies the
shard-locality of every waking interaction and raises
:class:`~.coordinator.ShardError` at the first violation.

Shard side, :class:`WakingProbe` records the organic waking-map
mutations (suspension registrations, resume drops, churn repoints),
every WoL whose target MAC lives on another shard, and every host
power transition.  The exchange's own map surgery is muted — the
coordinator mirrors it exactly from the transfer bundles.  Records
ride the hour-digest message, so they add no extra round trips.

Coordinator side, :class:`WakingVerifier` replays the records into a
global map replica plus one per-shard replica and enforces, per hour:

* **writer locality** — no IP's mapping is written by two shards in
  the same hour, and no shard writes a mapping for an IP that is also
  resident (on an interactive VM) on another shard: plain's mid-hour
  request analysis there would see the write, the shard-local waking
  module cannot;
* **remote-WoL equivalence** — a WoL to another shard's MAC is a
  local no-op; plain must agree, so the target host must be ON,
  RESUMING, CRASHED or OFF at that instant (reconstructed from the
  owner shard's transition record) and plain's map entry must still
  be alive (the owner host must not have woken earlier in the hour);
* **boundary coherence** — at every hour boundary, each shard's local
  map restricted to its resident interactive IPs must equal the
  global replica (catches stale shipped entries whose owner-side
  original was dropped remotely).

Runs that pass every check evolve their waking plane exactly as the
unsharded engine would; runs that cannot are refused loudly and
deterministically, with the offending IP/MAC and hour in the message.
"""

from __future__ import annotations

from ...cluster.power import PowerState

#: Host methods whose calls are power transitions (all take ``now``
#: as their first argument).
_TRANSITIONS = ("begin_suspend", "finish_suspend", "begin_resume",
                "finish_resume", "crash", "recover", "power_off",
                "power_on")

#: State a host is in *after* each transition call.
_AFTER = {
    "begin_suspend": PowerState.SUSPENDING,
    "finish_suspend": PowerState.SUSPENDED,
    "begin_resume": PowerState.RESUMING,
    "finish_resume": PowerState.ON,
    "crash": PowerState.CRASHED,
    "recover": PowerState.ON,
    "power_off": PowerState.OFF,
    "power_on": PowerState.ON,
}

#: States in which an unsharded engine's ``_on_wol`` is a no-op — the
#: only states in which a cross-shard WoL (a guaranteed local no-op)
#: matches plain behaviour.
_WOL_NOOP_STATES = (PowerState.ON, PowerState.RESUMING,
                    PowerState.CRASHED, PowerState.OFF)


class WakingProbe:
    """Shard-side recorder of waking-plane activity (event inner only).

    Installed by the port after engine construction (always in the
    worker, never before shipping — the wrappers close over live
    objects and must not be pickled).  Wraps the waking-service front
    and every host's transition methods with thin per-instance
    recorders; the engine's behaviour is unchanged.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        #: True while the port replays exchange surgery; surgery map
        #: updates are mirrored by the coordinator, not recorded here.
        self.muted = False
        self.ops: list[tuple] = []
        self.wols: list[tuple] = []
        self.transitions: list[tuple] = []
        self._local_macs = frozenset(engine.dc.host_by_mac)
        self._wrap_front(engine.waking)
        for host in engine.dc.hosts:
            self._wrap_host(host)

    # ------------------------------------------------------------------
    def _wrap_front(self, front) -> None:
        sim = self.engine.sim
        orig_reg = front.register_suspension
        orig_awake = front.on_host_awake
        orig_note = front.note_vm_moved
        orig_analyze = front.analyze_packet

        def register_suspension(host, waking_date_s):
            if not self.muted:
                self.ops.append(("reg", sim.now, host.mac_address,
                                 tuple(vm.ip_address for vm in host.vms)))
            orig_reg(host, waking_date_s)

        def on_host_awake(host):
            if not self.muted:
                self.ops.append(("awake", sim.now, host.mac_address))
            orig_awake(host)

        def note_vm_moved(ip, mac):
            if not self.muted:
                self.ops.append(("note", sim.now, ip, mac))
            orig_note(ip, mac)

        def analyze_packet(packet):
            woke = orig_analyze(packet)
            if woke:
                mac = front.active.state.vm_to_mac.get(packet.dst_ip)
                if mac is not None and mac not in self._local_macs:
                    self.wols.append((sim.now, packet.dst_ip, mac))
            return woke

        front.register_suspension = register_suspension
        front.on_host_awake = on_host_awake
        front.note_vm_moved = note_vm_moved
        # The switch holds the same front object, so its per-packet
        # calls route through this wrapper too.
        front.analyze_packet = analyze_packet

    def _wrap_host(self, host) -> None:
        for kind in _TRANSITIONS:
            orig = getattr(host, kind)

            def wrapped(now, *args, _orig=orig, _kind=kind,
                        _name=host.name):
                self.transitions.append((now, _name, _kind))
                return _orig(now, *args)

            setattr(host, kind, wrapped)

    # ------------------------------------------------------------------
    # checkpoint support (DESIGN.md §16)
    # ------------------------------------------------------------------
    def unwrap(self) -> None:
        """Remove every wrapper from the live graph (they are closures
        and cannot be pickled).  The wrappers are instance attributes
        shadowing class methods, so popping them restores the
        originals; recorded data stays on the probe."""
        front = self.engine.waking
        for name in ("register_suspension", "on_host_awake",
                     "note_vm_moved", "analyze_packet"):
            front.__dict__.pop(name, None)
        for host in self.engine.dc.hosts:
            for kind in _TRANSITIONS:
                host.__dict__.pop(kind, None)

    def rewrap(self) -> None:
        """Re-install the wrappers (after a snapshot pickle, or on a
        respawned worker that just unpickled the graph)."""
        self._wrap_front(self.engine.waking)
        for host in self.engine.dc.hosts:
            self._wrap_host(host)

    # ------------------------------------------------------------------
    def drain(self) -> dict | None:
        """Hand over (and clear) everything recorded since last drain."""
        if not (self.ops or self.wols or self.transitions):
            return None
        out = {"ops": self.ops, "wols": self.wols,
               "transitions": self.transitions}
        self.ops, self.wols, self.transitions = [], [], []
        return out


class WakingVerifier:
    """Coordinator-side replay and shard-locality checks."""

    def __init__(self, dc, shard_of_host: dict[str, int],
                 n_shards: int) -> None:
        self.n_shards = n_shards
        #: Plain's single global map, replayed from the shard records.
        self.global_map: dict[str, str] = {}
        #: Each shard's local map, mirrored the same way.
        self.local: list[dict[str, str]] = [{} for _ in range(n_shards)]
        self.mac_host = {h.mac_address: h.name for h in dc.hosts}
        self.mac_shard = {h.mac_address: shard_of_host[h.name]
                          for h in dc.hosts}
        #: Host power states as of the last verified boundary.
        self.states = {h.name: h.state for h in dc.hosts}
        #: MAC -> wake times that belong to the *next* window (surgery
        #: wakes happen at the boundary the window opens on).
        self._pending_wakes: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    def _fail(self, message: str):
        from .coordinator import ShardError

        raise ShardError(
            "cross-shard waking interaction — this run cannot be "
            f"sharded bit-identically: {message}  (Use fewer shards, "
            "shards=1, or the hourly inner engine.)")

    @staticmethod
    def _drop_mac(mapping: dict[str, str], mac: str) -> None:
        for ip in [ip for ip, m in mapping.items() if m == mac]:
            del mapping[ip]

    # ------------------------------------------------------------------
    # surgery mirroring (called by the coordinator while shards mute)
    # ------------------------------------------------------------------
    def surgery_wake(self, mac: str, now: float) -> None:
        """A force-awake replayed into a shard: plain drops the woken
        host's mappings; so do the global replica and the owner's."""
        self._drop_mac(self.global_map, mac)
        self._drop_mac(self.local[self.mac_shard[mac]], mac)
        self._pending_wakes.setdefault(mac, []).append(now)

    def transfer(self, k_src: int, k_dst: int, ip: str | None,
                 mac: str | None, kept: bool) -> None:
        """Mirror of the port's extract/install map surgery: the moved
        VM's entry travels with it (plain keeps the single global
        entry untouched); the source keeps its copy only while another
        local VM shares the IP."""
        if mac is None or ip is None:
            return
        if not kept:
            self.local[k_src].pop(ip, None)
        self.local[k_dst][ip] = mac

    def bulk_note(self, k_dst: int, ip: str, mac: str | None) -> None:
        """Mirror of ``_refresh_waking_after_bulk`` for one record, in
        global record order (plain applies exactly this note)."""
        if mac is None:
            self.global_map.pop(ip, None)
            self.local[k_dst].pop(ip, None)
        else:
            self.global_map[ip] = mac
            self.local[k_dst][ip] = mac

    # ------------------------------------------------------------------
    # per-window verification
    # ------------------------------------------------------------------
    def verify_window(self, drains: list[dict | None],
                      residency: dict[str, set[int]], label: str) -> None:
        """Replay one hour's records from every shard and enforce the
        three shard-locality rules.  ``residency`` maps each IP to the
        shards holding an interactive VM with that IP (constant within
        the window: transfers happen only at boundaries)."""
        mac_wakes = self._pending_wakes
        self._pending_wakes = {}
        writers: dict[str, int] = {}
        transitions: dict[str, list[tuple[float, str]]] = {}
        for k, drain in enumerate(drains):
            if not drain:
                continue
            for now, name, kind in drain["transitions"]:
                transitions.setdefault(name, []).append((now, kind))
            for op in drain["ops"]:
                if op[0] == "reg":
                    _, now, mac, ips = op
                    for ip in ips:
                        self._organic_write(k, ip, writers, residency,
                                            label)
                        self.local[k][ip] = mac
                        self.global_map[ip] = mac
                elif op[0] == "awake":
                    _, now, mac = op
                    mac_wakes.setdefault(mac, []).append(now)
                    self._drop_mac(self.local[k], mac)
                    self._drop_mac(self.global_map, mac)
                else:  # "note"
                    _, now, ip, mac = op
                    self._organic_write(k, ip, writers, residency, label)
                    if mac is None:
                        self.local[k].pop(ip, None)
                        self.global_map.pop(ip, None)
                    else:
                        self.local[k][ip] = mac
                        self.global_map[ip] = mac
        for k, drain in enumerate(drains):
            if not drain:
                continue
            for now, ip, mac in drain["wols"]:
                self._check_remote_wol(k, now, ip, mac, mac_wakes,
                                       transitions, label)
        for name, events in transitions.items():
            self.states[name] = _AFTER[events[-1][1]]
        for ip, shards in residency.items():
            want = self.global_map.get(ip)
            for k in shards:
                if self.local[k].get(ip) != want:
                    self._fail(
                        f"at {label}, shard {k}'s waking map entry for "
                        f"resident IP {ip} is {self.local[k].get(ip)!r} "
                        f"but the fleet-global map says {want!r} (a "
                        "mapping was created or dropped on another "
                        "shard).")

    def _organic_write(self, k: int, ip: str, writers: dict[str, int],
                       residency: dict[str, set[int]],
                       label: str) -> None:
        other = writers.setdefault(ip, k)
        if other != k:
            self._fail(
                f"at {label}, shards {other} and {k} both updated the "
                f"waking mapping of IP {ip} in the same hour; plain's "
                "outcome depends on their sub-hour interleaving.")
        foreign = residency.get(ip, ()) - {k} if ip in residency else ()
        if foreign:
            self._fail(
                f"at {label}, shard {k} updated the waking mapping of "
                f"IP {ip}, which is also the address of an interactive "
                f"VM on shard(s) {sorted(foreign)}; plain's request "
                "analysis there would see the update mid-hour, the "
                "shard-local waking module cannot.")

    def _check_remote_wol(self, k: int, now: float, ip: str, mac: str,
                          mac_wakes: dict[str, list[float]],
                          transitions: dict[str, list[tuple[float, str]]],
                          label: str) -> None:
        for wake_time in mac_wakes.get(mac, ()):
            if wake_time <= now:
                self._fail(
                    f"at {label}, shard {k} sent a WoL for IP {ip} to "
                    f"remote MAC {mac} at t={now:.3f}s, after the "
                    f"owner host woke at t={wake_time:.3f}s and plain "
                    "would already have dropped the mapping.")
        host = self.mac_host[mac]
        state = self.states[host]
        for event_time, kind in transitions.get(host, ()):
            if event_time == now:
                self._fail(
                    f"at {label}, a WoL from shard {k} to remote MAC "
                    f"{mac} coincides exactly with a power transition "
                    f"of its host at t={now:.3f}s; plain's ordering "
                    "is not reconstructible.")
            if event_time > now:
                break
            state = _AFTER[kind]
        if state not in _WOL_NOOP_STATES:
            self._fail(
                f"at {label}, shard {k} sent a WoL for IP {ip} to "
                f"remote MAC {mac} at t={now:.3f}s while its host "
                f"{host} was {state.name}; plain would have started a "
                "resume that the owning shard never saw.")
