"""Shard workers: build an inner engine around a port and run it.

``run_shard`` is the whole shard lifecycle — construct the engine over
the shipped sub-fleet, install the sliced fault plan, run, and send
the outcome (native result + the raw material the coordinator's
reduction needs) back over the endpoint.  It runs as a thread of the
coordinator process (``workers=0``) or inside a spawned worker process
(:func:`worker_main`, which must stay a top-level importable for the
``spawn`` start method).
"""

from __future__ import annotations

import threading
import traceback

from .port import ShardAborted, ShardPort


def run_shard(endpoint, setup: dict) -> None:
    """Run one shard to completion; never raises into the caller."""
    from ...obs.log import log_context

    # Every record this shard logs is tagged shard=K (spawned workers
    # configure their own handlers; by default the NullHandler eats it).
    with log_context(shard=setup.get("index", "?")):
        try:
            outcome = _simulate(endpoint, setup)
        except ShardAborted:
            return
        except BaseException:
            try:
                endpoint.send(("error", traceback.format_exc()))
            except Exception:
                pass
            return
        endpoint.send(("done", outcome))


def _install_obs(engine, setup: dict):
    """Build the shard's telemetry endpoint when the coordinator asked
    for tracing/metrics (DESIGN.md §17); ``None`` — zero hooks — when
    it didn't.  The endpoint pickles with the shard state blob, so
    supervised respawns and checkpoint resumes keep their telemetry."""
    if not (setup.get("obs_trace") or setup.get("obs_metrics")):
        return None
    from ...obs.runtime import ShardTelemetry

    obs = ShardTelemetry(setup["index"],
                         trace=bool(setup.get("obs_trace")),
                         metrics=bool(setup.get("obs_metrics")))
    engine._obs = obs
    return obs


def _obs_extras(engine) -> dict:
    obs = getattr(engine, "_obs", None)
    return obs.outcome_extras(engine) if obs is not None else {}


def _simulate(endpoint, setup: dict) -> dict:
    if "state" in setup:
        return _resume(endpoint, setup)
    dc = setup["dc"]
    config = setup["config"]
    inner = setup["inner"]
    port = ShardPort(endpoint, setup["controller_name"],
                     setup["uses_idleness"],
                     shard_index=setup["index"],
                     chaos=setup.get("chaos"))
    injector = None
    fault = setup["fault"]
    if fault is not None:
        from ...faults.injector import FaultInjector

        injector = FaultInjector(fault["plan"], fault["seed"])
    update_models = config.update_models or port.uses_idleness
    if inner == "event":
        from ...sim.event_driven import EventDrivenSimulation

        engine = EventDrivenSimulation(dc, port, setup["params"], config,
                                       hour_hooks=(port.hook,))
        _install_obs(engine, setup)
        port.attach(engine, "event", update_models, injector)
        if injector is not None:
            # Same install order as an unsharded run: fault events enter
            # the queue before the hour ticks, keeping sequence numbers
            # in the same relative order.
            injector._install_event(engine, setup["start_hour"],
                                    setup["n_hours"],
                                    crash_schedule=fault["crashes"])
        native = engine.run(setup["n_hours"], start_hour=setup["start_hour"])
        return _event_outcome(engine, native, injector, port)
    from ...sim.hourly import HourlySimulator

    engine = HourlySimulator(dc, port, setup["params"], config,
                             hour_hooks=(port.hook,))
    _install_obs(engine, setup)
    port.attach(engine, "hourly", update_models, injector)
    if injector is not None:
        injector._install_hourly(engine, setup["start_hour"],
                                 setup["n_hours"],
                                 crash_schedule=fault["crashes"])
    native = engine.run(setup["n_hours"], start_hour=setup["start_hour"])
    return _hourly_outcome(engine, native, injector)


def _resume(endpoint, setup: dict) -> dict:
    """Continue a shard from a boundary snapshot (supervision respawn
    or checkpoint resume): unpickle the port — the whole shard graph
    hangs off it — re-wire the fresh endpoint, and drive the engine's
    in-progress run to its horizon."""
    import pickle

    port = pickle.loads(setup["state"])
    port._ep = endpoint
    # Chaos entries at-or-before the recovery hour already fired; the
    # respawn ships a stripped spec so a kill fires exactly once.
    port._chaos = setup.get("chaos")
    if port._probe is not None:
        # The snapshot was pickled with the probe's method wrappers
        # stripped; put them back before any engine code runs.
        port._probe.rewrap()
    engine = port.engine
    native = engine.continue_run()
    if setup["inner"] == "event":
        return _event_outcome(engine, native, port._injector, port)
    return _hourly_outcome(engine, native, port._injector)


def _crashed_seconds(dc) -> dict[str, float]:
    from ...cluster.power import PowerState

    return {h.name: h.meter.state_seconds.get(PowerState.CRASHED, 0.0)
            for h in dc.hosts}


def _event_outcome(engine, native, injector, port) -> dict:
    channel = engine.wol_channel
    waking = engine.waking
    return {
        **_obs_extras(engine),
        "native": native,
        "latencies": engine.switch.log.latencies_s,
        "wake_latencies": engine.switch.log.wake_latencies_s,
        "wol_sent": waking.active.wol_sent,
        "beats": waking.beats,
        # The last hour's waking records (everything since the final
        # hour digest) for the coordinator's closing verification.
        "waking": port.drain_probe(),
        "fault": {
            "host_crashes": engine.host_crashes,
            "host_recoveries": engine.host_recoveries,
            "wol_dropped": channel.dropped,
            "wol_delayed": channel.delayed,
            "wol_retries": channel.retries,
            "wol_abandoned": channel.abandoned,
            "backoff_waits": list(channel.backoff_waits),
            "suspend_hangs": injector.suspend_hangs if injector else 0,
            "resume_failures": engine.resume_failures,
            "failover_migrations": engine.failover_migrations,
            "stranded_vms": engine.stranded_vms,
            "failovers": waking.failovers,
            "window_journaled_calls": waking.window_journaled,
            "lost_service_calls": waking.lost_calls,
            "stranded_requests": engine.switch.queued_requests,
            "recovered_requests": engine.recovered_requests,
            "migrations_blocked": engine.migrations_blocked,
            "crashed_s": _crashed_seconds(engine.dc),
        },
    }


def _hourly_outcome(engine, native, injector) -> dict:
    return {
        **_obs_extras(engine),
        "native": native,
        "fault": {
            "host_crashes": injector._hourly_crash_count if injector else 0,
            "host_recoveries": (injector._hourly_recover_count
                                if injector else 0),
            "crashed_s": _crashed_seconds(engine.dc),
        },
    }


def worker_main(assignments: list) -> None:
    """Spawned-process entry: run this worker's shards (as threads when
    it owns more than one).  ``assignments`` is a list of
    ``(setup, connection)`` pairs, pickled by the spawn machinery."""
    from .transport import PipeEndpoint

    if len(assignments) == 1:
        setup, conn = assignments[0]
        run_shard(PipeEndpoint(conn), setup)
        return
    threads = [threading.Thread(target=run_shard,
                                args=(PipeEndpoint(conn), setup),
                                daemon=True)
               for setup, conn in assignments]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
