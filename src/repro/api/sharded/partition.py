"""Fleet partitioning: which shard owns which host.

Shard assignment is a pure function of the host *name* (a blake2b
digest modulo the shard count, the same stable-hash idiom as
``scenarios.spec.stable_seed``), so it is identical across processes,
Python invocations and shard counts — never dependent on list order,
object identity or the per-process ``hash()`` salt.

``clone_shard_dc`` deep-copies a shard's hosts into a self-contained
:class:`~repro.cluster.datacenter.DataCenter`: VMs travel with their
hosts, shared ``DrowsyParams`` stay shared (identity-preserving memo),
and any columnar fleet binding must have been detached *before*
cloning (a fleet view deep-copies into a view over a copied fleet —
wrong shard, wrong rows).
"""

from __future__ import annotations

import copy
import hashlib

from ...cluster.datacenter import DataCenter
from .wire import detached_model


def shard_of_host(name: str, shards: int) -> int:
    """Stable shard index for a host name."""
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def detach_fleet_models(dc: DataCenter) -> None:
    """Replace any columnar fleet views with owned scalar models.

    Bit-preserving (the scalar and columnar model kernels are
    property-tested identical); required before deep-copying hosts out
    of a bound data center.  No-op when nothing is bound.
    """
    if getattr(dc, "_fleet_binding", None) is None:
        return
    for vm in dc.vms:
        if type(vm.model).__name__ != "IdlenessModel":
            vm.model = detached_model(vm.model, vm.params)
    dc._fleet_binding = None
    dc._accounting = None


def partition_hosts(dc: DataCenter, shards: int) -> list[list]:
    """Group ``dc.hosts`` (in fleet order) into non-empty shard lists.

    Hosts hash into ``shards`` buckets; buckets that come out empty
    (more shards than hash occupancy) are dropped, so every returned
    shard runs a real engine.  The returned order is by bucket index,
    which both the coordinator and the parity reduction treat as *the*
    shard order.
    """
    buckets: list[list] = [[] for _ in range(shards)]
    for host in dc.hosts:
        buckets[shard_of_host(host.name, shards)].append(host)
    return [b for b in buckets if b]


def clone_shard_dc(dc: DataCenter, shard_hosts: list) -> DataCenter:
    """A self-contained deep copy of ``shard_hosts`` as a DataCenter.

    The back-references every host keeps to its data center
    (``host._dc``, set by ``DataCenter.__post_init__``) would drag the
    whole fleet into the copy; they are nulled for the duration of the
    copy and restored, and the new ``DataCenter`` re-establishes them
    on the copies.
    """
    saved = [(h, h._dc) for h in dc.hosts]
    for h in dc.hosts:
        h._dc = None
    try:
        memo = {id(dc.params): dc.params}
        copied = copy.deepcopy(shard_hosts, memo)
        migration_model = copy.deepcopy(dc.migration_model)
    finally:
        for h, back in saved:
            h._dc = back
    return DataCenter(copied, dc.params, migration_model=migration_model)
