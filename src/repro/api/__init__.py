"""The public simulation API (DESIGN.md §13).

One façade — :class:`Simulation` — over the two engines, with
string-keyed extension registries and typed lifecycle observers:

* :class:`Simulation` owns construction, controller/backend resolution,
  observer wiring and the run loop; :meth:`Simulation.from_scenario`
  compiles declarative scenario specs onto either backend.
* :class:`RunResult` is the one result schema: the superset of both
  engines' native results, with backend-absent fields ``None`` and the
  derived metrics defined once.
* :data:`controllers` and :data:`backends` are the registries every
  entry point (CLI, sweeps, scenarios, experiments) resolves names
  through; register a new policy or engine once and it is reachable
  everywhere.
* :class:`Observer` / :func:`as_observer` type the hour hooks both
  engines used to take as bare callables.
"""

from ..obs import Telemetry, TelemetryConfig
from .backends import EventBackend, HourlyBackend, ShardedBackend, backends
from .controllers import SWEEP_CONTROLLERS, build_controller, controllers
from .observers import CallableObserver, Observer, as_observer
from .registry import Registry
from .result import RunResult
from .sharded import ShardedConfig
from .simulation import Simulation

__all__ = [
    "CallableObserver",
    "EventBackend",
    "HourlyBackend",
    "Observer",
    "Registry",
    "RunResult",
    "SWEEP_CONTROLLERS",
    "ShardedBackend",
    "ShardedConfig",
    "Simulation",
    "Telemetry",
    "TelemetryConfig",
    "as_observer",
    "backends",
    "build_controller",
    "controllers",
]
