"""The :class:`Simulation` façade: one entry point for every run.

Construction, binding, observer wiring and result unification for both
simulation engines (DESIGN.md §13)::

    from repro.api import Simulation
    from repro.experiments.common import build_fleet

    dc = build_fleet(n_hosts=16, n_vms=64, llmi_fraction=0.5, hours=72)
    result = Simulation(dc, controller="drowsy", backend="hourly").run(72)
    print(result.total_energy_kwh, result.slatah)

    result = Simulation(dc2, "neat", backend="event", seed=7).run(24)
    print(result.request_summary["p99_s"], result.wol_sent)

Scenario specs compile straight onto the façade::

    sim = Simulation.from_scenario("flash-crowd", seed=7, backend="event")
    row = sim.run(sim.hours)

The façade is a *thin* owner: the engines
(:class:`~repro.sim.hourly.HourlySimulator`,
:class:`~repro.sim.event_driven.EventDrivenSimulation`) stay directly
constructible and bit-identical — asserted by the golden parity suite
in ``tests/test_api.py`` — and remain reachable as :attr:`Simulation.
engine` for engine-specific probes (the SDN request log, the waking
service, the event clock).
"""

from __future__ import annotations

from ..cluster.datacenter import DataCenter
from ..core.params import DrowsyParams
from .backends import backends
from .controllers import build_controller
from .observers import Observer, as_observer, hour_hook
from .result import RunResult


class Simulation:
    """One simulation run: fleet + controller + backend + observers.

    Parameters
    ----------
    fleet_or_dc:
        A :class:`~repro.cluster.datacenter.DataCenter`, or any object
        carrying one as ``.dc`` (e.g. the testbed builder's
        ``Testbed``).
    controller:
        A name from :data:`repro.api.controllers` (``"drowsy"``,
        ``"neat"``, ``"neat-distributed"``, ``"oasis"``, ``"none"``) or
        an already-built controller object.
    backend:
        A name from :data:`repro.api.backends`: ``"hourly"`` (analytic
        hour loop) or ``"event"`` (full request-level stack).
    params:
        Drowsy parameters; defaults to the data center's own.
    seed:
        Request-traffic seed (event backend); accepted and ignored by
        the hourly backend, whose runs draw no randomness.
    config:
        Backend-native config (:class:`~repro.sim.hourly.HourlyConfig`,
        :class:`~repro.sim.event_driven.EventConfig` or
        :class:`~repro.api.sharded.ShardedConfig`); defaults to the
        backend's defaults.  ``backend_config`` is an exact alias
        (passing both raises).
    observers:
        :class:`~repro.api.Observer` instances or plain ``(t, now)``
        callables, fired in order (see ``repro.api.observers``).
    faults:
        Optional chaos wiring: a :class:`~repro.faults.FaultPlan`
        (compiled with ``seed or 0`` into a fresh injector) or an
        already-built :class:`~repro.faults.FaultInjector`.  The
        injector joins the observers and its
        :class:`~repro.faults.FaultSummary` lands on
        ``result.fault_summary``.  An all-zero plan installs nothing —
        the run is bit-identical to a fault-free one.
    telemetry:
        A :class:`~repro.obs.TelemetryConfig` enabling metrics
        sampling, span tracing, profiling and/or live progress
        (DESIGN.md §17).  Telemetry never changes results: an enabled
        run's ``RunResult`` equals the telemetry-off run's.  ``None``
        picks up a staged process default (the CLI path) or installs
        nothing at all.
    """

    def __init__(self, fleet_or_dc, controller="drowsy",
                 backend: str = "hourly", *,
                 params: DrowsyParams | None = None,
                 seed: int | None = None,
                 config=None,
                 backend_config=None,
                 observers: tuple = (),
                 faults=None,
                 checkpoint=None,
                 telemetry=None) -> None:
        if backend_config is not None:
            if config is not None:
                raise TypeError(
                    "pass config= or backend_config=, not both "
                    "(they are aliases)")
            config = backend_config
        dc = getattr(fleet_or_dc, "dc", fleet_or_dc)
        if not isinstance(dc, DataCenter):
            raise TypeError(
                f"expected a DataCenter (or an object with a .dc), "
                f"got {type(fleet_or_dc).__name__}")
        self.dc = dc
        self.params = params if params is not None else dc.params
        self.backend = backends.get(backend)
        self.backend_name = self.backend.name
        self.controller = (build_controller(controller, dc, self.params)
                           if isinstance(controller, str) else controller)
        if config is not None and not isinstance(config,
                                                 self.backend.config_type):
            raise TypeError(
                f"{self.backend_name!r} backend expects "
                f"{self.backend.config_type.__name__}, "
                f"got {type(config).__name__}")
        self.config = self.backend.prepare_config(config, seed)
        if faults is not None and not getattr(faults, "is_fault_injector",
                                              False):
            from ..faults import FaultInjector  # deferred: faults -> api

            faults = FaultInjector(faults, seed if seed is not None else 0)
        self.observers: tuple[Observer, ...] = tuple(
            as_observer(o) for o in observers)
        if faults is not None:
            self.observers += (as_observer(faults),)
        #: The fault injector riding this run, if any (the first
        #: fault-marked observer wins; detected by marker so scenario
        #: compilation can pass injectors through ``observers=``).
        self.faults = next(
            (o for o in self.observers
             if getattr(o, "is_fault_injector", False)), None)
        #: The telemetry runtime riding this run, if any (DESIGN.md
        #: §17).  Joins the observers *before* the checkpointer so
        #: snapshots carry the hour's metric samples; a disabled (or
        #: absent) config installs nothing at all.
        self.telemetry = None
        if telemetry is None:
            from ..obs import take_default_telemetry

            telemetry = take_default_telemetry()
        if telemetry is not None and telemetry.enabled:
            from ..obs import ProgressObserver, TelemetryRuntime

            self.telemetry = TelemetryRuntime(telemetry)
            self.observers += (self.telemetry,)
            if telemetry.progress:
                self.observers += (ProgressObserver(),)
        #: The checkpoint manager riding this run, if any.  Appended
        #: *last* so its hour-boundary snapshot includes every mutation
        #: the other observers (churn, faults) made that hour.
        self.checkpointer = None
        if checkpoint is None:
            from ..resilience.checkpoint import take_default_policy

            checkpoint = take_default_policy()
        if checkpoint is not None:
            from ..resilience import CheckpointManager

            manager = (checkpoint
                       if isinstance(checkpoint, CheckpointManager)
                       else CheckpointManager(checkpoint))
            self.checkpointer = manager
            self.observers += (as_observer(manager),)
        #: True only on a façade restored by :meth:`resume`; makes the
        #: next :meth:`run` continue the interrupted horizon.
        self._resuming = False
        # Engines hand their *simulated* clock to raw hour hooks;
        # hour_hook substitutes the wall clock for observers that
        # don't opt into it (see repro.api.observers).
        self.engine = self.backend.build(
            dc, self.controller, self.params, self.config,
            tuple(hour_hook(o) for o in self.observers))
        #: Horizon hint (hours) for scenario-compiled simulations; 0
        #: for directly constructed ones (pass ``n_hours`` to ``run``).
        self.hours = 0
        #: The scenario churn injector, when compiled from a spec.
        self.churn = None
        #: The unified result of the most recent :meth:`run`.
        self.last_result: RunResult | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, spec_or_name, seed: int = 0, *,
                      controller="drowsy", backend: str = "hourly",
                      hours: int | None = None, scale: float = 1.0,
                      params: DrowsyParams | None = None,
                      relocate_all: bool | None = None,
                      shards: int = 4, workers: int = 0,
                      checkpoint=None) -> "Simulation":
        """Compile a scenario spec (or built-in name) into a ready run.

        Delegates to :class:`~repro.scenarios.compiler.ScenarioCompiler`
        — fleet build, trace keying, churn wiring and per-VM request
        streams are all functions of ``(spec, seed)``.  The returned
        simulation carries the scenario horizon in :attr:`hours` and
        the churn injector (if any) in :attr:`churn`.
        """
        from ..scenarios import ScenarioCompiler, get_scenario

        spec = (get_scenario(spec_or_name)
                if isinstance(spec_or_name, str) else spec_or_name)
        if scale != 1.0:
            spec = spec.scaled(scale)
        compiler = (ScenarioCompiler(spec) if params is None
                    else ScenarioCompiler(spec, params))
        compiled = compiler.compile(
            controller=controller, simulator=backend, seed=seed,
            hours=hours, relocate_all=relocate_all,
            shards=shards, workers=workers)
        simulation = compiled.simulation
        if checkpoint is not None:
            simulation.attach_checkpointer(checkpoint)
        return simulation

    # ------------------------------------------------------------------
    def run(self, n_hours: int | None = None,
            start_hour: int = 0) -> RunResult:
        """Run the simulation and return the unified result.

        ``n_hours`` defaults to the scenario horizon for
        scenario-compiled simulations; directly constructed ones must
        pass it.  Observers see ``on_run_start`` before the first hour
        and ``on_run_end`` after the unified result is built.

        On a façade restored by :meth:`resume`, ``run()`` (no
        arguments) continues the interrupted horizon from the
        checkpointed hour boundary instead of starting over; the
        result is byte-identical to the uninterrupted run's.
        """
        if self.telemetry is not None and self.telemetry.config.profile:
            with self.telemetry.profiled():
                return self._run(n_hours, start_hour)
        return self._run(n_hours, start_hour)

    def _run(self, n_hours: int | None, start_hour: int) -> RunResult:
        if self._resuming:
            if n_hours is not None and n_hours != getattr(
                    self.engine, "_horizon", (0, n_hours))[1]:
                raise ValueError(
                    "a resumed run continues its original horizon; "
                    "call run() without n_hours")
            self._resuming = False
            return self._finish(self.engine.continue_run())
        if n_hours is None:
            n_hours = self.hours
        if not n_hours:
            raise ValueError(
                "n_hours is required (only scenario-compiled simulations "
                "carry a default horizon)")
        for obs in self.observers:
            obs.on_run_start(self, start_hour, n_hours)
        return self._finish(self.engine.run(n_hours,
                                            start_hour=start_hour))

    def _finish(self, native) -> RunResult:
        """The shared run tail: unify the native result, finalize
        faults, fire ``on_run_end``.  Pure function of engine state, so
        a resumed run's tail is identical to the uninterrupted one's."""
        result = self.backend.to_run_result(native)
        if self.faults is not None and not self.faults.plan.is_zero:
            # Zero plans leave the field None so their results compare
            # equal (==) to fault-free runs, not just field-by-field.
            result.fault_summary = self.faults.finalize(self)
        self.last_result = result
        for obs in self.observers:
            obs.on_run_end(result)
        return result

    # ------------------------------------------------------------------
    # crash-safe execution (DESIGN.md §16)
    # ------------------------------------------------------------------
    def attach_checkpointer(self, checkpoint):
        """Attach a checkpoint policy to an already-built simulation
        (the path scenario compilation and the CLI use).  The manager
        joins the observers *and* the engine's hour hooks — engines
        read ``hour_hooks`` at run time, so late attachment is safe."""
        from ..resilience import CheckpointManager

        manager = (checkpoint if isinstance(checkpoint, CheckpointManager)
                   else CheckpointManager(checkpoint))
        manager.bind(self)
        self.checkpointer = manager
        obs = as_observer(manager)
        self.observers += (obs,)
        self.engine.hour_hooks = (tuple(self.engine.hour_hooks)
                                  + (hour_hook(obs),))
        return manager

    @classmethod
    def resume(cls, path) -> "Simulation":
        """Restore a simulation from a checkpoint file (or the most
        advanced checkpoint in a directory) written by a
        ``checkpoint=``-equipped run.  Call :meth:`run` (no arguments)
        on the result to finish the interrupted horizon::

            sim = Simulation.resume("ckpts/")   # or an exact .ckpt path
            result = sim.run()                  # == the uninterrupted run
        """
        from pathlib import Path

        from ..resilience import (
            Checkpoint,
            CheckpointError,
            latest_checkpoint,
        )

        path = Path(path)
        if path.is_dir():
            path = latest_checkpoint(path)
        sim = Checkpoint.load(path).restore()
        if not isinstance(sim, cls):
            raise CheckpointError(
                f"{path} holds a {type(sim).__name__}, not a Simulation")
        return sim

    # ------------------------------------------------------------------
    # administrative surface (scenario churn, maintenance tooling)
    # ------------------------------------------------------------------
    def rebind_fleet(self) -> None:
        """Re-bind the columnar fleet model after population changes."""
        self.engine.rebind_fleet()

    def force_awake(self, host, now: float) -> None:
        """Administratively wake a drowsy host (no grace window)."""
        self.backend.force_awake(self.engine, host, now)

    def reinstate_check(self, host) -> None:
        """Restore a host's suspend checks (after maintenance)."""
        self.backend.reinstate_check(self.engine, host)

    def note_vm_departed(self, vm_name: str) -> None:
        """A VM left the fleet mid-run: drop its scheduled work."""
        self.backend.note_vm_departed(self.engine, vm_name)

    def evacuate_host(self, host, now: float, targets=None):
        """Migrate every VM off ``host`` (maintenance drain)."""
        return self.backend.evacuate_host(self.engine, host, now, targets)

    def place_vm(self, vm, dest) -> None:
        """Place a new VM on ``dest`` (churn arrival)."""
        self.backend.place_vm(self.engine, vm, dest)

    def power_off_host(self, host, now: float) -> None:
        """Power a drained host fully off (maintenance)."""
        self.backend.power_off_host(self.engine, host, now)

    def power_on_host(self, host, now: float) -> None:
        """Power a host back on (maintenance end)."""
        self.backend.power_on_host(self.engine, host, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulation({len(self.dc.hosts)} hosts, "
                f"{len(self.dc.vms)} VMs, "
                f"controller={getattr(self.controller, 'name', '?')!r}, "
                f"backend={self.backend_name!r})")
