"""String-keyed extension registries for the simulation façade.

One :class:`Registry` instance per extension point (controllers,
backends).  Registries replace the ad-hoc name maps that used to live
in ``repro.sim.sweep``, ``repro.cli`` and ``repro.scenarios.compiler``:
the CLI, the sweep runners and the scenario compiler all resolve names
through the same table, so registering a new controller or backend once
makes it reachable everywhere.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """An ordered name -> entry table with fail-fast lookups.

    Registration order is preserved (it is the order ``names()`` and
    iteration report), and unknown names raise :class:`ValueError`
    listing what *is* available — the message the CLI surfaces
    verbatim.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, entry: T | None = None):
        """Register ``entry`` under ``name``.

        Usable directly (``registry.register("x", obj)``) or as a
        decorator (``@registry.register("x")``).  Re-registering a name
        raises: silent replacement would make results depend on import
        order.
        """
        def _add(value: T) -> T:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered")
            self._entries[name] = value
            return value

        if entry is None:
            return _add
        return _add(entry)

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"choose from {', '.join(self._entries)}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def describe(self) -> dict[str, str]:
        """Ordered ``name -> one-line summary`` over the entries.

        The summary is the headline of the entry's docstring (for
        registered instances, attribute lookup falls through to the
        class docstring), so an extension documents itself at the
        point of registration.  ``python -m repro list`` renders this
        table verbatim — it is the one listing path for every
        registry-backed extension point.
        """
        out: dict[str, str] = {}
        for name, entry in self._entries.items():
            doc = (getattr(entry, "__doc__", None) or "").strip()
            out[name] = doc.splitlines()[0].strip() if doc else ""
        return out

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind}: {', '.join(self._entries)})"


#: Factory signature for controller registry entries.
ControllerFactory = Callable[..., object]
