"""Typed observer hooks for the simulation lifecycle (DESIGN.md §13).

An :class:`Observer` sees three moments of a
:class:`~repro.api.Simulation`:

* ``on_run_start(sim, start_hour, n_hours)`` — before the first hour;
* ``on_hour(t, now)`` — at the end of every hour tick, after the
  simulator's own bookkeeping (this is exactly where both engines'
  legacy ``hour_hooks`` fired, so an observer sees the same state a
  hook did);
* ``on_run_end(result)`` — after the run, with the unified
  :class:`~repro.api.RunResult`.

Observers subsume the two simulators' ``hour_hooks`` tuples: the
scenario engine's :class:`~repro.scenarios.compiler.ChurnInjector` is
an observer, and plain ``(t, now)`` callables are adapted on the fly by
:func:`as_observer`, so existing hooks keep working unchanged.
Multiple observers fire in registration order at every moment.
"""

from __future__ import annotations


class Observer:
    """Base observer: subclass and override the moments you need.

    Any object with the same three methods duck-types as an observer;
    subclassing just inherits the no-ops.
    """

    def on_run_start(self, sim, start_hour: int, n_hours: int) -> None:
        """The run is about to start; ``sim`` is the façade."""

    def on_hour(self, t: int, now: float) -> None:
        """Hour ``t`` just completed (``now`` = seconds since epoch)."""

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the unified RunResult."""


class CallableObserver(Observer):
    """Adapter: a plain ``(t, now)`` hour hook as an observer."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def on_hour(self, t: int, now: float) -> None:
        self._fn(t, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallableObserver({self._fn!r})"


class _DuckObserver(Observer):
    """Adapter filling the no-ops for a partial duck-typed observer."""

    def __init__(self, obj) -> None:
        self._obj = obj
        for name in ("on_run_start", "on_hour", "on_run_end"):
            method = getattr(obj, name, None)
            if method is not None:
                setattr(self, name, method)


def as_observer(obj) -> Observer:
    """Coerce ``obj`` into an :class:`Observer`.

    Accepts full observers (returned as-is), objects defining a subset
    of the three methods (missing ones become no-ops) and plain
    ``(t, now)`` callables (adapted to ``on_hour``).
    """
    if isinstance(obj, Observer):
        return obj
    if any(hasattr(obj, name)
           for name in ("on_run_start", "on_hour", "on_run_end")):
        return _DuckObserver(obj)
    if callable(obj):
        return CallableObserver(obj)
    raise TypeError(
        f"{obj!r} is not an observer: expected on_run_start/on_hour/"
        "on_run_end methods or a plain (t, now) callable")
