"""Typed observer hooks for the simulation lifecycle (DESIGN.md §13).

An :class:`Observer` sees three moments of a
:class:`~repro.api.Simulation`:

* ``on_run_start(sim, start_hour, n_hours)`` — before the first hour;
* ``on_hour(t, now)`` — at the end of every hour tick, after the
  simulator's own bookkeeping (this is exactly where both engines'
  legacy ``hour_hooks`` fired, so an observer sees the same state a
  hook did);
* ``on_run_end(result)`` — after the run, with the unified
  :class:`~repro.api.RunResult`.

Observers subsume the two simulators' ``hour_hooks`` tuples: the
scenario engine's :class:`~repro.scenarios.compiler.ChurnInjector` is
an observer, and plain ``(t, now)`` callables are adapted on the fly by
:func:`as_observer`, so existing hooks keep working unchanged.
Multiple observers fire in registration order at every moment.

**Which clock is ``now``?**  The engines' raw ``hour_hooks`` receive
the *simulated* clock (seconds since simulation start — the value
admin operations like ``evacuate_host(host, now)`` expect).  Observer
``on_hour`` receives the *wall* clock, ``time.time()`` read at the
hour boundary, uniformly across all three backends: the façade wraps
each observer's hook in a :class:`WallClockHour` adapter.  Observers
that legitimately feed ``now`` into simulated state (churn/fault
injection, legacy hooks) declare ``wants_sim_time = True`` and keep
the simulated clock — everything else must treat ``now`` as
read-only telemetry, never pass it back into the simulation, or
determinism (and the obs bit-parity oracle) breaks.
"""

from __future__ import annotations

import time


class Observer:
    """Base observer: subclass and override the moments you need.

    Any object with the same three methods duck-types as an observer;
    subclassing just inherits the no-ops.
    """

    #: Set ``True`` on observers whose ``on_hour`` feeds ``now`` back
    #: into simulated state (admin/churn/fault injection): they receive
    #: the simulated clock instead of ``time.time()``.
    wants_sim_time = False

    def on_run_start(self, sim, start_hour: int, n_hours: int) -> None:
        """The run is about to start; ``sim`` is the façade."""

    def on_hour(self, t: int, now: float) -> None:
        """Hour ``t`` just completed.

        ``now`` is ``time.time()`` read at the hour boundary (wall
        clock, seconds since epoch) — identical semantics on the
        hourly, event and sharded backends.  It is telemetry only:
        feeding it into simulated state (placement, power, meters)
        would make runs clock-dependent; observers that need the
        simulated clock set :attr:`wants_sim_time` instead.
        """

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the unified RunResult."""


class CallableObserver(Observer):
    """Adapter: a plain ``(t, now)`` hour hook as an observer.

    Legacy hooks predate the wall-clock boundary and were written
    against the engines' simulated clock, so they keep receiving it.
    """

    wants_sim_time = True

    def __init__(self, fn) -> None:
        self._fn = fn

    def on_hour(self, t: int, now: float) -> None:
        self._fn(t, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallableObserver({self._fn!r})"


class _DuckObserver(Observer):
    """Adapter filling the no-ops for a partial duck-typed observer."""

    def __init__(self, obj) -> None:
        self._obj = obj
        self.wants_sim_time = bool(getattr(obj, "wants_sim_time", False))
        for name in ("on_run_start", "on_hour", "on_run_end"):
            method = getattr(obj, name, None)
            if method is not None:
                setattr(self, name, method)


class WallClockHour:
    """Hour-hook adapter substituting the wall clock for observers.

    Engines pass their simulated clock to raw ``hour_hooks`` (admin
    operations consume it); this adapter discards it and hands the
    observer ``time.time()`` instead.  A class (not a closure) so the
    hook tuple pickles with checkpoints.
    """

    __slots__ = ("observer",)

    def __init__(self, observer: Observer) -> None:
        self.observer = observer

    def __call__(self, t: int, sim_now: float) -> None:
        self.observer.on_hour(t, time.time())


def hour_hook(observer: Observer):
    """The engine-facing hour hook for ``observer`` (its bound
    ``on_hour`` when it wants the simulated clock, a wall-clock
    adapter otherwise)."""
    if getattr(observer, "wants_sim_time", False):
        return observer.on_hour
    return WallClockHour(observer)


def as_observer(obj) -> Observer:
    """Coerce ``obj`` into an :class:`Observer`.

    Accepts full observers (returned as-is), objects defining a subset
    of the three methods (missing ones become no-ops) and plain
    ``(t, now)`` callables (adapted to ``on_hour``).
    """
    if isinstance(obj, Observer):
        return obj
    if any(hasattr(obj, name)
           for name in ("on_run_start", "on_hour", "on_run_end")):
        return _DuckObserver(obj)
    if callable(obj):
        return CallableObserver(obj)
    raise TypeError(
        f"{obj!r} is not an observer: expected on_run_start/on_hour/"
        "on_run_end methods or a plain (t, now) callable")
