"""The unified run result: one schema over both simulation backends.

:class:`RunResult` is the superset of the hourly simulator's
``HourlyResult`` and the event-driven simulator's ``EventResult``.
Quantities both backends produce (energy, suspended fractions, suspend
cycles, migrations) are always populated; backend-specific quantities
are ``None`` when the backend does not measure them:

============================  =======  ======
field                          hourly   event
============================  =======  ======
``overload_host_hours``          ✓       None
``active_host_hours``            ✓       None
``resume_cycles_by_host``       None      ✓
``request_summary``             None      ✓
``wol_sent``                    None      ✓
``events_processed``            None      ✓
============================  =======  ======

Derived properties (``total_energy_kwh``, ``slatah``, ``esv``, …) are
defined once here and behave identically for every backend; the ones
built on backend-absent fields return ``None`` instead of guessing.
Every populated field is a verbatim copy of the native result — the
golden parity suite (``tests/test_api.py``) holds bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RunResult:
    """Aggregated outcome of one :class:`~repro.api.Simulation` run."""

    hours: int
    controller_name: str
    #: Which backend produced this result (``"hourly"`` / ``"event"``).
    backend: str
    energy_kwh_by_host: dict[str, float]
    suspended_fraction_by_host: dict[str, float]
    suspend_cycles_by_host: dict[str, int]
    migrations: int
    vm_migrations: dict[str, int]
    # -- hourly-backend provenance ------------------------------------
    #: Beloglazov's SLATAH numerator / denominator (hourly only).
    overload_host_hours: int | None = None
    active_host_hours: int | None = None
    # -- event-backend provenance -------------------------------------
    resume_cycles_by_host: dict[str, int] | None = None
    #: The SDN switch's request-latency digest (requests, SLA fraction,
    #: mean/p50/p99/max sojourn, wake-triggered request count).
    request_summary: dict[str, float] | None = None
    #: Wake-on-LAN packets the active waking module sent.
    wol_sent: int | None = None
    events_processed: int | None = None
    # -- fault injection (either backend) ------------------------------
    #: Degradation accounting (:class:`~repro.faults.spec.FaultSummary`)
    #: attached by the façade when a fault plan rode the run; ``None``
    #: on fault-free runs, so fault-free results compare bit-identically
    #: with and without the field ever being considered.
    fault_summary: object | None = None

    # ------------------------------------------------------------------
    # derived metrics (identical for every backend)
    # ------------------------------------------------------------------
    @property
    def total_energy_kwh(self) -> float:
        return sum(self.energy_kwh_by_host.values())

    @property
    def global_suspended_fraction(self) -> float:
        vals = list(self.suspended_fraction_by_host.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def total_suspend_cycles(self) -> int:
        return sum(self.suspend_cycles_by_host.values())

    @property
    def slatah(self) -> float | None:
        """SLA violation Time per Active Host (fraction of active
        host-hours spent at saturated CPU); ``None`` when the backend
        does not account host-hours (event backend)."""
        if self.active_host_hours is None:
            return None
        if self.active_host_hours == 0:
            return 0.0
        return self.overload_host_hours / self.active_host_hours

    @property
    def esv(self) -> float | None:
        """Energy-SLA-Violation product (lower is better); ``None``
        whenever :attr:`slatah` is."""
        slatah = self.slatah
        if slatah is None:
            return None
        return self.total_energy_kwh * slatah

    # ------------------------------------------------------------------
    # conversions from the backends' native results
    # ------------------------------------------------------------------
    @classmethod
    def from_hourly(cls, result) -> "RunResult":
        """Wrap a :class:`~repro.sim.hourly.HourlyResult` verbatim."""
        return cls(
            hours=result.hours,
            controller_name=result.controller_name,
            backend="hourly",
            energy_kwh_by_host=result.energy_kwh_by_host,
            suspended_fraction_by_host=result.suspended_fraction_by_host,
            suspend_cycles_by_host=result.suspend_cycles_by_host,
            migrations=result.migrations,
            vm_migrations=result.vm_migrations,
            overload_host_hours=result.overload_host_hours,
            active_host_hours=result.active_host_hours,
        )

    @classmethod
    def from_event(cls, result) -> "RunResult":
        """Wrap an :class:`~repro.sim.event_driven.EventResult`
        verbatim."""
        return cls(
            hours=result.hours,
            controller_name=result.controller_name,
            backend="event",
            energy_kwh_by_host=result.energy_kwh_by_host,
            suspended_fraction_by_host=result.suspended_fraction_by_host,
            suspend_cycles_by_host=result.suspend_cycles_by_host,
            migrations=result.migrations,
            vm_migrations=result.vm_migrations,
            resume_cycles_by_host=result.resume_cycles_by_host,
            request_summary=result.request_summary,
            wol_sent=result.wol_sent,
            events_processed=result.events_processed,
        )
