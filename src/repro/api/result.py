"""The unified run result: one schema over both simulation backends.

:class:`RunResult` is the superset of the hourly simulator's
``HourlyResult`` and the event-driven simulator's ``EventResult``.
Quantities both backends produce (energy, suspended fractions, suspend
cycles, migrations) are always populated; backend-specific quantities
are ``None`` when the backend does not measure them:

============================  =======  ======
field                          hourly   event
============================  =======  ======
``overload_host_hours``          ✓       None
``active_host_hours``            ✓       None
``resume_cycles_by_host``       None      ✓
``request_summary``             None      ✓
``wol_sent``                    None      ✓
``events_processed``            None      ✓
============================  =======  ======

Derived properties (``total_energy_kwh``, ``slatah``, ``esv``, …) are
defined once here and behave identically for every backend; the ones
built on backend-absent fields return ``None`` instead of guessing.
Every populated field is a verbatim copy of the native result — the
golden parity suite (``tests/test_api.py``) holds bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path


@dataclass(frozen=True)
class ResultRow:
    """One cell of the flattened :class:`RunResult` wire table.

    ``field`` names the result field, ``key`` the dict key (or the
    fault-summary field) inside it — empty for scalars.  Every value is
    carried as text: floats via ``repr`` (shortest round-trip form),
    so a reloaded result compares equal bit-for-bit.
    """

    field: str
    key: str
    kind: str
    value: str


_TABLE_CLS = None


def _result_table():
    """The :class:`~repro.sim.sweep.SweepTable` subclass carrying
    flattened results (lazy: ``sim.sweep`` imports the api package)."""
    global _TABLE_CLS
    if _TABLE_CLS is None:
        from ..sim.sweep import SweepTable

        class _RunResultTable(SweepTable):
            row_type = ResultRow
            _TABLE = "run_result"

        _TABLE_CLS = _RunResultTable
    return _TABLE_CLS


def _cell(value) -> tuple[str, str]:
    if isinstance(value, float):
        return "float", repr(value)
    if isinstance(value, int):
        return "int", str(value)
    return "str", str(value)


def _decode(kind: str, value: str):
    if kind == "float":
        return float(value)
    if kind == "int":
        return int(value)
    return value


@dataclass
class RunResult:
    """Aggregated outcome of one :class:`~repro.api.Simulation` run."""

    hours: int
    controller_name: str
    #: Which backend produced this result (``"hourly"`` / ``"event"``).
    backend: str
    energy_kwh_by_host: dict[str, float]
    suspended_fraction_by_host: dict[str, float]
    suspend_cycles_by_host: dict[str, int]
    migrations: int
    vm_migrations: dict[str, int]
    # -- hourly-backend provenance ------------------------------------
    #: Beloglazov's SLATAH numerator / denominator (hourly only).
    overload_host_hours: int | None = None
    active_host_hours: int | None = None
    # -- event-backend provenance -------------------------------------
    resume_cycles_by_host: dict[str, int] | None = None
    #: The SDN switch's request-latency digest (requests, SLA fraction,
    #: mean/p50/p99/max sojourn, wake-triggered request count).
    request_summary: dict[str, float] | None = None
    #: Wake-on-LAN packets the active waking module sent.
    wol_sent: int | None = None
    events_processed: int | None = None
    # -- fault injection (either backend) ------------------------------
    #: Degradation accounting (:class:`~repro.faults.spec.FaultSummary`)
    #: attached by the façade when a fault plan rode the run; ``None``
    #: on fault-free runs, so fault-free results compare bit-identically
    #: with and without the field ever being considered.
    fault_summary: object | None = None
    # -- observability (either backend) ---------------------------------
    #: Frozen :class:`~repro.obs.Telemetry` (per-hour metric series +
    #: run totals) attached when the run carried a metrics-enabled
    #: :class:`~repro.obs.TelemetryConfig`.  Excluded from equality:
    #: telemetry describes the *runner* (wall clocks included), not the
    #: simulated outcome, so obs-on results still ``==`` obs-off ones.
    telemetry: object | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # derived metrics (identical for every backend)
    # ------------------------------------------------------------------
    @property
    def total_energy_kwh(self) -> float:
        return sum(self.energy_kwh_by_host.values())

    @property
    def global_suspended_fraction(self) -> float:
        vals = list(self.suspended_fraction_by_host.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def total_suspend_cycles(self) -> int:
        return sum(self.suspend_cycles_by_host.values())

    @property
    def slatah(self) -> float | None:
        """SLA violation Time per Active Host (fraction of active
        host-hours spent at saturated CPU); ``None`` when the backend
        does not account host-hours (event backend)."""
        if self.active_host_hours is None:
            return None
        if self.active_host_hours == 0:
            return 0.0
        return self.overload_host_hours / self.active_host_hours

    @property
    def esv(self) -> float | None:
        """Energy-SLA-Violation product (lower is better); ``None``
        whenever :attr:`slatah` is."""
        slatah = self.slatah
        if slatah is None:
            return None
        return self.total_energy_kwh * slatah

    # ------------------------------------------------------------------
    # conversions from the backends' native results
    # ------------------------------------------------------------------
    @classmethod
    def from_hourly(cls, result) -> "RunResult":
        """Wrap a :class:`~repro.sim.hourly.HourlyResult` verbatim."""
        return cls(
            hours=result.hours,
            controller_name=result.controller_name,
            backend="hourly",
            energy_kwh_by_host=result.energy_kwh_by_host,
            suspended_fraction_by_host=result.suspended_fraction_by_host,
            suspend_cycles_by_host=result.suspend_cycles_by_host,
            migrations=result.migrations,
            vm_migrations=result.vm_migrations,
            overload_host_hours=result.overload_host_hours,
            active_host_hours=result.active_host_hours,
        )

    @classmethod
    def from_event(cls, result) -> "RunResult":
        """Wrap an :class:`~repro.sim.event_driven.EventResult`
        verbatim."""
        return cls(
            hours=result.hours,
            controller_name=result.controller_name,
            backend="event",
            energy_kwh_by_host=result.energy_kwh_by_host,
            suspended_fraction_by_host=result.suspended_fraction_by_host,
            suspend_cycles_by_host=result.suspend_cycles_by_host,
            migrations=result.migrations,
            vm_migrations=result.vm_migrations,
            resume_cycles_by_host=result.resume_cycles_by_host,
            request_summary=result.request_summary,
            wol_sent=result.wol_sent,
            events_processed=result.events_processed,
        )

    # ------------------------------------------------------------------
    # persistence (suffix dispatch through the sweep-table machinery)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the result to ``path``; the suffix picks the format
        (``.csv``, ``.sqlite``/``.sqlite3``/``.db`` — one appended run
        per call — or ``.parquet``), exactly like sweep tables.

        The result is flattened to :class:`ResultRow` cells in field
        order (dict rows in dict order, which for per-host maps is
        fleet order), so :meth:`load` rebuilds a result that compares
        equal to the original — floats included.
        """
        self._table()(rows=self._to_rows()).save(path)

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        """Read a result previously written by :meth:`save` (for
        SQLite: the most recently appended run)."""
        return cls._from_rows(cls._table().load(path).rows)

    _table = staticmethod(_result_table)

    def _to_rows(self) -> list[ResultRow]:
        rows: list[ResultRow] = []
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "telemetry":
                # Runner telemetry (wall clocks, trace paths) is not
                # part of the simulated outcome and does not persist;
                # a reloaded result carries None there — still equal,
                # the field is excluded from comparisons.
                continue
            if value is None:
                rows.append(ResultRow(f.name, "", "none", ""))
            elif isinstance(value, dict):
                # Marker row first: an *empty* dict still round-trips,
                # and the count guards against truncated files.
                rows.append(ResultRow(f.name, "", "dict", str(len(value))))
                for key, item in value.items():
                    kind, text = _cell(item)
                    rows.append(ResultRow(f.name, str(key), kind, text))
            elif is_dataclass(value) and not isinstance(value, type):
                rows.append(ResultRow(f.name, "", "fault-summary", ""))
                for sf in fields(value):
                    kind, text = _cell(getattr(value, sf.name))
                    rows.append(ResultRow(f.name, sf.name, kind, text))
            else:
                kind, text = _cell(value)
                rows.append(ResultRow(f.name, "", kind, text))
        return rows

    @classmethod
    def _from_rows(cls, rows) -> "RunResult":
        from ..faults.spec import FaultSummary

        kwargs: dict = {}
        counts: dict[str, int] = {}
        summaries: list[str] = []
        for row in rows:
            if row.key:
                kwargs[row.field][row.key] = _decode(row.kind, row.value)
            elif row.kind == "none":
                kwargs[row.field] = None
            elif row.kind == "dict":
                kwargs[row.field] = {}
                counts[row.field] = int(row.value)
            elif row.kind == "fault-summary":
                kwargs[row.field] = {}
                summaries.append(row.field)
            else:
                kwargs[row.field] = _decode(row.kind, row.value)
        for name, expected in counts.items():
            if len(kwargs[name]) != expected:
                raise ValueError(
                    f"result table is truncated: {name} has "
                    f"{len(kwargs[name])} of {expected} entries")
        for name in summaries:
            kwargs[name] = FaultSummary(**kwargs[name])
        return cls(**kwargs)
