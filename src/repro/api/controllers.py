"""The controller registry: every consolidation policy by name.

``controllers`` maps a string to a factory ``(dc, params) ->
controller``.  The four controller families of the evaluation plus the
un-managed baseline are pre-registered; the CLI, the sweep grids and
the scenario compiler all resolve controller names here (DESIGN.md
§13), so registering a new policy once makes it reachable from every
entry point::

    from repro.api import controllers

    @controllers.register("my-policy")
    def _my_policy(dc, params):
        return MyPolicy(dc, params=params)

Factories import their controller module lazily so importing
``repro.api`` stays cheap.
"""

from __future__ import annotations

from ..core.params import DrowsyParams
from .registry import Registry

#: Name -> factory ``(dc, params) -> controller``.
controllers: Registry = Registry("controller")

#: The controllers the standard sweep grids cycle through (the paper's
#: §VI comparison set).  ``"none"`` is registered but not swept by
#: default — it is the do-nothing reference, not a contender.
SWEEP_CONTROLLERS = ("drowsy", "neat", "neat-distributed", "oasis")


@controllers.register("drowsy")
def _drowsy(dc, params: DrowsyParams):
    """Drowsy-DC: idleness-model consolidation with drowsy standby."""
    from ..consolidation.drowsy import DrowsyController

    return DrowsyController(dc, params=params)


@controllers.register("neat")
def _neat(dc, params: DrowsyParams):
    """Neat: reactive overload/underload migration baseline."""
    from ..consolidation.neat import NeatController

    return NeatController(dc, params=params)


@controllers.register("neat-distributed")
def _neat_distributed(dc, params: DrowsyParams):
    """Neat with per-rack distributed consolidation managers."""
    from ..consolidation.managers import DistributedNeat

    return DistributedNeat(dc, params)


@controllers.register("oasis")
def _oasis(dc, params: DrowsyParams):
    """Oasis-like hybrid partial-migration baseline (EuroSys'16)."""
    from ..consolidation.oasis import OasisController

    return OasisController(
        dc, params, n_consolidation_hosts=max(1, len(dc.hosts) // 20))


@controllers.register("none")
def _none(dc, params: DrowsyParams):
    """Un-managed baseline: no migrations, hosts never sleep."""
    from ..consolidation.baseline import PassiveController

    return PassiveController()


def build_controller(name: str, dc, params: DrowsyParams):
    """Resolve ``name`` and build the controller for ``dc``."""
    return controllers.get(name)(dc, params)
