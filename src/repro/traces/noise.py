"""Scheduler-quanta model and noise filtering (paper section III-C).

The activity level of a VM is "the ratio of CPU quanta scheduled for the
VM, over the total possible quanta during an hour; very short scheduling
quanta — noise — are filtered out".  This module models the quanta
stream a hypervisor-side monitor would see (real work plus bookkeeping
blips from guest kernel ticks, monitoring agents, etc.) and the filter
that turns it into the hourly activity level the model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SECONDS_PER_HOUR = 3600.0

#: Quanta shorter than this (seconds) are considered noise by default.
#: A few scheduler ticks' worth of CPU: guest timer interrupts and
#: monitoring heartbeats fall below it, real request handling does not.
DEFAULT_MIN_QUANTUM_S = 0.050


@dataclass(frozen=True)
class QuantaSample:
    """CPU quanta granted to one VM during one hour."""

    durations_s: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.durations_s, dtype=np.float64)
        if np.any(arr < 0.0):
            raise ValueError("quantum durations must be >= 0")
        if arr.sum() > SECONDS_PER_HOUR + 1e-6:
            raise ValueError("quanta cannot exceed one hour in total")
        object.__setattr__(self, "durations_s", arr)

    @property
    def raw_activity(self) -> float:
        """Unfiltered activity level (all quanta counted)."""
        return float(self.durations_s.sum() / SECONDS_PER_HOUR)


def filter_activity(sample: QuantaSample,
                    min_quantum_s: float = DEFAULT_MIN_QUANTUM_S) -> float:
    """Hourly activity level after dropping noise quanta.

    Only quanta of at least ``min_quantum_s`` are counted; this is the
    paper's "very short scheduling quanta are filtered out" step and is
    what lets a VM running only a monitoring agent be classified idle.
    """
    d = sample.durations_s
    kept = d[d >= min_quantum_s]
    return float(kept.sum() / SECONDS_PER_HOUR)


def synthesize_quanta(activity: float, rng: np.random.Generator,
                      noise_events: int = 120,
                      noise_quantum_s: float = 0.002,
                      work_quantum_s: float = 30.0,
                      min_quantum_s: float = DEFAULT_MIN_QUANTUM_S) -> QuantaSample:
    """Generate a plausible quanta stream for a target activity level.

    Real work is emitted as quanta of ~``work_quantum_s``; on top, every
    hour carries ``noise_events`` short bookkeeping quanta (kernel ticks,
    agents) of ~``noise_quantum_s`` each, which the filter must remove.
    ``min_quantum_s`` should match the filter's threshold: a work
    remainder below it is folded into the preceding work quantum so the
    round-trip ``filter_activity(synthesize_quanta(a)) == a`` is exact
    whenever there is at least one work quantum to fold into (activity
    below ``min_quantum_s / 3600`` still reads idle — by design, that
    is the sub-noise regime).
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    work_total = activity * SECONDS_PER_HOUR
    n_work = int(work_total // work_quantum_s)
    quanta = [work_quantum_s] * n_work
    remainder = work_total - n_work * work_quantum_s
    if remainder > 0.0:
        if quanta and remainder < min_quantum_s:
            quanta[-1] += remainder
        else:
            quanta.append(remainder)
    noise_budget = SECONDS_PER_HOUR - work_total
    n_noise = min(noise_events, int(noise_budget / max(noise_quantum_s, 1e-9)))
    if n_noise > 0:
        noise = rng.uniform(0.2 * noise_quantum_s, noise_quantum_s, size=n_noise)
        quanta.extend(noise.tolist())
    return QuantaSample(np.asarray(quanta))


def observed_activity(activity: float, rng: np.random.Generator,
                      min_quantum_s: float = DEFAULT_MIN_QUANTUM_S) -> float:
    """End-to-end monitor view: synthesize quanta, then filter.

    Convenience used by the simulators so that the model always sees
    activity that went through the noise path (idle hours stay exactly
    idle because noise quanta are filtered out).
    """
    sample = synthesize_quanta(activity, rng, min_quantum_s=min_quantum_s)
    return filter_activity(sample, min_quantum_s)
