"""Synthetic workload traces (paper Table II and section I examples).

Each builder returns an :class:`~repro.traces.base.ActivityTrace` whose
idle/active structure matches one of the workload archetypes the paper
uses: the daily backup service (Fig. 4a), the online comic strip
published three times a week except during the summer holidays (Fig. 4b),
the seasonal diploma-results website (section III-A example), plain
mostly-used VMs (Fig. 4h) and short-lived tasks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.calendar import slots_of_hours
from .base import ActivityTrace, VMKind

#: Signature of an activity predicate: arrays (h, dw, dm, m, doy) -> bool mask.
ActiveFn = Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def build_trace(
    name: str,
    hours: int,
    active_fn: ActiveFn,
    level: float = 0.2,
    kind: VMKind = VMKind.LLMI,
    rng: np.random.Generator | None = None,
    level_jitter: float = 0.0,
    p_extra: float = 0.0,
    p_miss: float = 0.0,
) -> ActivityTrace:
    """Build a trace from a calendar predicate.

    ``active_fn`` receives vectorized calendar coordinates for every hour
    and returns the active mask.  ``level_jitter`` multiplies active
    levels by lognormal noise; ``p_extra`` / ``p_miss`` flip inactive /
    active hours with the given probabilities (trace irregularity).
    """
    if hours <= 0:
        raise ValueError("hours must be positive")
    coords = slots_of_hours(np.arange(hours))
    mask = np.asarray(active_fn(*coords), dtype=bool)
    if mask.shape != (hours,):
        raise ValueError("active_fn must return one bool per hour")
    if p_extra or p_miss or level_jitter:
        if rng is None:
            raise ValueError("rng is required for stochastic traces")
    if p_extra:
        mask = mask | (rng.random(hours) < p_extra)
    if p_miss:
        mask = mask & ~(rng.random(hours) < p_miss)
    levels = np.full(hours, level)
    if level_jitter:
        levels = levels * rng.lognormal(0.0, level_jitter, size=hours)
    activities = np.where(mask, np.clip(levels, 0.01, 1.0), 0.0)
    return ActivityTrace(name, activities, kind)


def daily_backup_trace(days: int = 365, backup_hour: int = 2,
                       level: float = 0.8) -> ActivityTrace:
    """Backup service running each day at ``backup_hour`` (Fig. 4a)."""
    return build_trace(
        "daily-backup", days * 24,
        lambda h, dw, dm, m, doy: h == backup_hour,
        level=level)


def comic_strips_trace(years: int = 3, publish_days: tuple[int, ...] = (0, 2, 4),
                       publish_hours: tuple[int, ...] = (8, 9, 10),
                       holiday_months: tuple[int, ...] = (6, 7),
                       level: float = 0.35) -> ActivityTrace:
    """Comic-strip site: three publications a week, none in July/August.

    Fig. 4b's workload: weekly periodicity (Mon/Wed/Fri) modulated by a
    yearly holiday period, which only the SIy scale can capture — the
    paper reports ~2 years for the model to fully learn it.
    """
    def active(h, dw, dm, m, doy):
        return (np.isin(dw, publish_days) & np.isin(h, publish_hours)
                & ~np.isin(m, holiday_months))

    return build_trace("comic-strips", years * 365 * 24, active, level=level)


def seasonal_results_trace(years: int = 3, month: int = 6, day_of_month: int = 19,
                           hours_active: tuple[int, ...] = (14, 15),
                           level: float = 0.9) -> ActivityTrace:
    """National diploma-results website (paper section III-A example).

    Mostly used at 2 pm / 3 pm on the 20th of July (0-based: month 6,
    day 19), every year — the extreme LLMI case where only the yearly
    scale carries signal.
    """
    def active(h, dw, dm, m, doy):
        return (m == month) & (dm == day_of_month) & np.isin(h, hours_active)

    return build_trace("diploma-results", years * 365 * 24, active, level=level)


def llmu_trace(hours: int = 3 * 365 * 24, base_level: float = 0.55,
               diurnal_amplitude: float = 0.25, floor: float = 0.05,
               seed: int = 7) -> ActivityTrace:
    """Long-lived mostly-used VM: always active, diurnal load (Fig. 4h).

    Models a popular web service a la CloudSuite Media Streaming; the
    defining property for the model is that no hour is ever idle.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    diurnal = base_level + diurnal_amplitude * np.sin(2 * np.pi * (t % 24) / 24.0)
    noise = rng.normal(0.0, 0.05, size=hours)
    levels = np.clip(diurnal + noise, floor, 1.0)
    return ActivityTrace("llmu", levels, VMKind.LLMU)


def slmu_trace(lifetime_hours: int = 8, level: float = 0.9,
               total_hours: int | None = None) -> ActivityTrace:
    """Short-lived mostly-used task (e.g. MapReduce job, section I).

    Fully active for ``lifetime_hours`` then gone; if ``total_hours`` is
    given the tail is zero-padded so the trace composes with others.
    """
    total = total_hours if total_hours is not None else lifetime_hours
    if total < lifetime_hours:
        raise ValueError("total_hours must cover the lifetime")
    arr = np.zeros(total)
    arr[:lifetime_hours] = level
    return ActivityTrace("slmu", arr, VMKind.SLMU)


def weekly_pattern_trace(name: str, active_hours_by_weekday: dict[int, tuple[int, ...]],
                         weeks: int = 1, level: float = 0.2,
                         rng: np.random.Generator | None = None,
                         level_jitter: float = 0.0) -> ActivityTrace:
    """Generic weekly schedule: map weekday -> active hours of day."""
    table = np.zeros((7, 24), dtype=bool)
    for dw, hs in active_hours_by_weekday.items():
        table[dw, list(hs)] = True

    def active(h, dw, dm, m, doy):
        return table[dw, h]

    return build_trace(name, weeks * 7 * 24, active, level=level, rng=rng,
                       level_jitter=level_jitter)


def always_idle_trace(hours: int, name: str = "always-idle") -> ActivityTrace:
    """Degenerate trace: never any activity (cold-start edge case)."""
    return ActivityTrace(name, np.zeros(hours), VMKind.LLMI)
