"""Trace replay from CSV (scenario subsystem, DESIGN.md §12).

Scenarios can drive VMs with *measured* hourly series instead of the
synthetic generators: a CSV with one value per hour (``value`` or
``index,value`` rows, optional header) becomes an
:class:`~repro.traces.base.ActivityTrace` that both simulators consume
like any generated trace — periodic extension included — or a rate
table for :meth:`repro.network.requests.ArrivalShape.from_csv`.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from .base import ActivityTrace, VMKind


def read_hourly_column(source: str | Path) -> list[float]:
    """Parse one float per row from CSV text or a CSV file path.

    Rows may be ``value`` or ``index,value`` (the last column wins); a
    first row that does not parse as a number is treated as a header.
    A string argument containing a newline is taken as CSV text,
    anything else as a path.  Shared by the CSV trace replay below and
    the ``replay`` arrival shape.
    """
    if isinstance(source, Path) or "\n" not in str(source):
        text = Path(source).read_text()
    else:
        text = str(source)
    values: list[float] = []
    for i, row in enumerate(csv.reader(io.StringIO(text))):
        if not row or not any(cell.strip() for cell in row):
            continue
        try:
            values.append(float(row[-1]))
        except ValueError:
            if not values:
                continue  # header: non-numeric rows before any data
            raise ValueError(f"non-numeric CSV value {row[-1]!r} "
                             f"on row {i + 1}") from None
    if not values:
        raise ValueError("CSV contains no hourly values")
    return values


def trace_from_csv(source: str | Path, name: str | None = None,
                   kind: VMKind = VMKind.LLMI) -> ActivityTrace:
    """Build a trace from a CSV of hourly activity levels in [0, 1].

    Values outside [0, 1] are rejected by the trace constructor —
    replayed activity is a fraction of an hour, exactly like the
    generated traces.
    """
    values = np.array(read_hourly_column(source))
    if name is None:
        name = Path(source).stem if "\n" not in str(source) else "csv-trace"
    return ActivityTrace(name, values, kind)
