"""PlanetLab-like CPU utilization traces.

OpenStack Neat's own evaluation (Beloglazov & Buyya, the framework the
paper builds on) replays PlanetLab CPU utilization traces: spiky,
autocorrelated series with low means (~10-20 %) and occasional bursts
toward saturation.  The originals are not redistributable, so this
module generates statistically similar series; they drive the
overload-detector / VM-selector study (`repro.experiments.detector_study`)
that validates our Neat substrate against its published behaviour.
"""

from __future__ import annotations

import numpy as np

from .base import ActivityTrace, VMKind


def planetlab_like_trace(hours: int, seed: int = 0, mean_level: float = 0.15,
                         burst_prob: float = 0.02, burst_level: float = 0.85,
                         ar_coeff: float = 0.7, noise_std: float = 0.06,
                         floor: float = 0.01) -> ActivityTrace:
    """One PlanetLab-style utilization series.

    Properties matched to the published trace statistics: low median
    utilization, heavy right tail (bursts), strong short-range
    autocorrelation, never exactly idle (these are *utilization* traces
    of always-running services, i.e. LLMU in the paper's taxonomy).
    """
    if hours <= 0:
        raise ValueError("hours must be positive")
    if not 0.0 <= ar_coeff < 1.0:
        raise ValueError("ar_coeff must be in [0, 1)")
    rng = np.random.default_rng(seed)

    ar = np.empty(hours)
    x = 0.0
    innov = rng.normal(0.0, noise_std, size=hours)
    for i in range(hours):
        x = ar_coeff * x + innov[i]
        ar[i] = x

    base = mean_level * rng.lognormal(0.0, 0.3, size=hours)
    bursts = np.zeros(hours)
    in_burst = rng.random(hours) < burst_prob
    # Bursts persist 1-3 hours.
    for i in np.nonzero(in_burst)[0]:
        length = int(rng.integers(1, 4))
        bursts[i:i + length] = burst_level * rng.uniform(0.7, 1.0)

    levels = np.clip(base + ar + bursts, floor, 1.0)
    return ActivityTrace(f"planetlab-{seed}", levels, VMKind.LLMU)


def planetlab_fleet(n: int, hours: int, seed: int = 0) -> list[ActivityTrace]:
    """A fleet of PlanetLab-like traces with varied means and burstiness."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        out.append(planetlab_like_trace(
            hours,
            seed=int(rng.integers(0, 2**31)),
            mean_level=float(rng.uniform(0.08, 0.25)),
            burst_prob=float(rng.uniform(0.01, 0.05)),
        ).with_name(f"planetlab-{i:03d}"))
    return out
