"""Activity traces.

A trace is the hourly activity level of one VM: the fraction of scheduler
quanta the VM consumed in each hour, in ``[0, 1]`` (paper section III-C).
An hour with activity exactly 0 is an *idle* hour; the idleness model
only distinguishes idle vs active, but the activity *level* feeds the
update magnitude (eq. (2)) and the request generator.

The paper's VM taxonomy (section I) is carried on the trace:

* ``SLMU`` — short-lived mostly-used (e.g. MapReduce tasks);
* ``LLMU`` — long-lived mostly-used (e.g. popular web services);
* ``LLMI`` — long-lived mostly-idle (e.g. seasonal web services).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.calendar import HOURS_PER_DAY


class VMKind(enum.Enum):
    """Paper section I VM activity classes."""

    SLMU = "short-lived mostly-used"
    LLMU = "long-lived mostly-used"
    LLMI = "long-lived mostly-idle"


@dataclass(frozen=True)
class ActivityTrace:
    """Hourly activity levels of one VM.

    ``activities[t]`` is the activity level of absolute hour ``t`` (hours
    since the calendar epoch, a Monday Jan 1).
    """

    name: str
    activities: np.ndarray
    kind: VMKind = VMKind.LLMI

    def __post_init__(self) -> None:
        arr = np.asarray(self.activities, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("activities must be a 1-D array")
        if arr.size == 0:
            raise ValueError("trace must contain at least one hour")
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("activity levels must be in [0, 1]")
        object.__setattr__(self, "activities", arr)

    # ------------------------------------------------------------------
    @property
    def hours(self) -> int:
        """Trace length in hours."""
        return int(self.activities.size)

    @property
    def days(self) -> float:
        return self.hours / HOURS_PER_DAY

    @property
    def idle_mask(self) -> np.ndarray:
        """Bool array: True where the hour is idle (activity == 0)."""
        return self.activities == 0.0

    @property
    def idle_fraction(self) -> float:
        """Fraction of idle hours over the trace."""
        return float(np.mean(self.idle_mask))

    @property
    def mean_active_level(self) -> float:
        """Mean activity level over active hours (0 if never active)."""
        active = self.activities[~self.idle_mask]
        return float(active.mean()) if active.size else 0.0

    # ------------------------------------------------------------------
    def activity(self, hour_index: int) -> float:
        """Activity level of absolute hour ``hour_index``.

        Hours past the end of the trace wrap around (periodic extension),
        so a one-week trace can drive a simulation of arbitrary length —
        this mirrors the paper extending one-week Nutanix traces to three
        years (Table II).
        """
        return float(self.activities[hour_index % self.hours])

    def window(self, start_hour: int, n_hours: int) -> np.ndarray:
        """Activity levels for ``n_hours`` starting at ``start_hour``."""
        idx = (start_hour + np.arange(n_hours)) % self.hours
        return self.activities[idx]

    def tiled(self, total_hours: int, name: str | None = None) -> "ActivityTrace":
        """Periodic extension of the trace to ``total_hours``."""
        reps = int(np.ceil(total_hours / self.hours))
        arr = np.tile(self.activities, reps)[:total_hours]
        return ActivityTrace(name or f"{self.name}*{reps}", arr, self.kind)

    def with_name(self, name: str) -> "ActivityTrace":
        return ActivityTrace(name, self.activities, self.kind)

    def __len__(self) -> int:
        return self.hours


def activity_matrix(traces: list[ActivityTrace], n_hours: int,
                    start_hour: int = 0) -> np.ndarray:
    """Stack traces into an ``(n, T)`` activity matrix.

    ``matrix[i, k]`` equals ``traces[i].activity(start_hour + k)``
    (periodic extension per trace).  Building the matrix once and
    loading one column per simulated hour replaces ``n`` Python trace
    calls with a single array read — the trace half of the columnar hot
    path (DESIGN.md §6); :class:`~repro.core.binding.FleetBinding`
    caches the matrix for a whole run horizon.
    """
    if n_hours <= 0:
        raise ValueError("n_hours must be positive")
    return np.stack([t.window(start_hour, n_hours) for t in traces])


def trace_matrix(traces: list[ActivityTrace], n_hours: int) -> np.ndarray:
    """Stack traces into an ``(n, T)`` matrix (periodically extended)."""
    return activity_matrix(traces, n_hours)
