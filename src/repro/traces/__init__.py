"""Workload trace generation: synthetic, production-like and Google-like."""

from .base import ActivityTrace, VMKind, activity_matrix, trace_matrix
from .google import google_llmu_fleet, google_llmu_trace
from .noise import (
    DEFAULT_MIN_QUANTUM_S,
    QuantaSample,
    filter_activity,
    observed_activity,
    synthesize_quanta,
)
from .planetlab import planetlab_fleet, planetlab_like_trace
from .replay import read_hourly_column, trace_from_csv
from .production import (
    PRODUCTION_SPECS,
    fig1_traces,
    production_trace,
    testbed_llmi_traces,
)
from .synthetic import (
    always_idle_trace,
    build_trace,
    comic_strips_trace,
    daily_backup_trace,
    llmu_trace,
    seasonal_results_trace,
    slmu_trace,
    weekly_pattern_trace,
)

__all__ = [
    "ActivityTrace",
    "DEFAULT_MIN_QUANTUM_S",
    "activity_matrix",
    "PRODUCTION_SPECS",
    "QuantaSample",
    "VMKind",
    "always_idle_trace",
    "build_trace",
    "comic_strips_trace",
    "daily_backup_trace",
    "fig1_traces",
    "filter_activity",
    "google_llmu_fleet",
    "google_llmu_trace",
    "llmu_trace",
    "observed_activity",
    "planetlab_fleet",
    "planetlab_like_trace",
    "production_trace",
    "read_hourly_column",
    "seasonal_results_trace",
    "slmu_trace",
    "synthesize_quanta",
    "testbed_llmi_traces",
    "trace_from_csv",
    "trace_matrix",
    "weekly_pattern_trace",
]
