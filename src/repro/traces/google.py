"""Google-cluster-like LLMU traces (paper section VI-B).

The simulation study feeds LLMU VMs with Google traces [32].  Those are
not redistributable, so we generate statistically similar load series:
always-active utilization with strong diurnal swing, autocorrelated
minute-to-minute noise (AR(1)) and occasional load spikes — the features
reported by the Google cluster analyses the paper cites [4, 22, 23].
"""

from __future__ import annotations

import numpy as np

from .base import ActivityTrace, VMKind


def google_llmu_trace(hours: int, seed: int = 0, base_level: float = 0.5,
                      diurnal_amplitude: float = 0.2, ar_coeff: float = 0.85,
                      noise_std: float = 0.08, spike_prob: float = 0.01,
                      floor: float = 0.03) -> ActivityTrace:
    """Always-active utilization series with diurnal + AR(1) structure.

    ``floor`` keeps every hour strictly active — the defining LLMU
    property — while spikes push some hours to full utilization.
    """
    if not 0.0 <= ar_coeff < 1.0:
        raise ValueError("ar_coeff must be in [0, 1)")
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    diurnal = base_level + diurnal_amplitude * np.sin(2 * np.pi * ((t % 24) - 6) / 24.0)

    ar = np.empty(hours)
    x = 0.0
    innov = rng.normal(0.0, noise_std, size=hours)
    for i in range(hours):
        x = ar_coeff * x + innov[i]
        ar[i] = x

    spikes = (rng.random(hours) < spike_prob) * rng.uniform(0.2, 0.5, size=hours)
    levels = np.clip(diurnal + ar + spikes, floor, 1.0)
    return ActivityTrace(f"google-llmu-{seed}", levels, VMKind.LLMU)


def google_llmu_fleet(n: int, hours: int, seed: int = 0) -> list[ActivityTrace]:
    """A fleet of LLMU traces with varied base loads and phases."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        out.append(google_llmu_trace(
            hours,
            seed=int(rng.integers(0, 2**31)),
            base_level=float(rng.uniform(0.35, 0.65)),
            diurnal_amplitude=float(rng.uniform(0.1, 0.3)),
        ))
    return out
