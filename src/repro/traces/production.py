"""Production-like LLMI traces (paper Fig. 1 / Table II "real traces").

The paper drives its experiments with traces of five LLMI VMs monitored
for seven days in Nutanix's production DC (Fig. 1 shows three of them),
later extended to three years for the model evaluation (Table II,
subfigures c-g).  The traces themselves are proprietary; we substitute
seeded generators reproducing the documented structure: daily/weekly
periodic activity bursts with levels around 8-25 % and mild irregularity
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.calendar import slots_of_hours
from .base import ActivityTrace, VMKind


@dataclass(frozen=True)
class ProductionTraceSpec:
    """Shape of one production LLMI workload."""

    name: str
    description: str
    #: (h, dw, dm) -> bool mask builder over vectorized coords.
    weekdays: tuple[int, ...]
    hours: tuple[int, ...]
    #: extra activity on end-of-month days (monthly periodicity).
    end_of_month: bool
    level: float
    level_jitter: float
    p_extra: float
    p_miss: float


#: Five specs calibrated on Fig. 1: daily or weekday bursts, activity
#: levels 8-25 %, V3/V4's workload is trace 1 (they "received the exact
#: same workload"), V6's is trace 3.
PRODUCTION_SPECS: tuple[ProductionTraceSpec, ...] = (
    ProductionTraceSpec(
        "real-trace-1", "morning business burst (weekdays 9-12)",
        weekdays=(0, 1, 2, 3, 4), hours=(9, 10, 11, 12),
        end_of_month=False, level=0.18, level_jitter=0.25,
        p_extra=0.002, p_miss=0.005),
    ProductionTraceSpec(
        "real-trace-2", "twin daily peaks (7 am, 7 pm, every day)",
        weekdays=tuple(range(7)), hours=(7, 19),
        end_of_month=False, level=0.12, level_jitter=0.2,
        p_extra=0.002, p_miss=0.005),
    ProductionTraceSpec(
        "real-trace-3", "nightly batch processing (1-3 am, every day)",
        weekdays=tuple(range(7)), hours=(1, 2, 3),
        end_of_month=False, level=0.22, level_jitter=0.3,
        p_extra=0.001, p_miss=0.004),
    ProductionTraceSpec(
        "real-trace-4", "weekday mornings plus Saturday catch-up",
        weekdays=(0, 1, 2, 3, 4, 5), hours=(9, 10),
        end_of_month=False, level=0.15, level_jitter=0.25,
        p_extra=0.002, p_miss=0.006),
    ProductionTraceSpec(
        "real-trace-5", "weekday middays plus end-of-month reporting",
        weekdays=(0, 1, 2, 3, 4), hours=(11, 12, 13),
        end_of_month=True, level=0.20, level_jitter=0.25,
        p_extra=0.002, p_miss=0.005),
)


def production_trace(index: int, days: int = 7, seed: int | None = None) -> ActivityTrace:
    """Production-like LLMI trace ``index`` in [1, 5] over ``days`` days.

    The default seven days matches the monitored window of section
    VI-A.2; pass ``days=3*365`` for the Fig. 4 evaluation.  ``seed``
    defaults to the trace index so V3 and V4 can share byte-identical
    workloads by using the same index and seed.
    """
    if not 1 <= index <= len(PRODUCTION_SPECS):
        raise ValueError(f"trace index must be in [1, {len(PRODUCTION_SPECS)}]")
    spec = PRODUCTION_SPECS[index - 1]
    rng = np.random.default_rng(seed if seed is not None else 1000 + index)
    hours = days * 24
    h, dw, dm, m, doy = slots_of_hours(np.arange(hours))

    mask = np.isin(dw, spec.weekdays) & np.isin(h, spec.hours)
    if spec.end_of_month:
        mask = mask | ((dm >= 27) & (h >= 9) & (h <= 17))
    mask = mask | (rng.random(hours) < spec.p_extra)
    mask = mask & ~(rng.random(hours) < spec.p_miss)

    levels = spec.level * rng.lognormal(0.0, spec.level_jitter, size=hours)
    activities = np.where(mask, np.clip(levels, 0.02, 1.0), 0.0)
    return ActivityTrace(spec.name, activities, VMKind.LLMI)


def fig1_traces(days: int = 6, seed: int = 42) -> dict[str, ActivityTrace]:
    """The example workloads of Fig. 1: V3/V4 (same trace) and V6.

    Returns a mapping with keys ``"VM3"``, ``"VM4"`` and ``"VM6"``; VM3
    and VM4 carry the exact same activity array, as in the paper.
    """
    shared = production_trace(1, days=days, seed=seed)
    v6 = production_trace(3, days=days, seed=seed + 1)
    return {
        "VM3": shared.with_name("VM3"),
        "VM4": shared.with_name("VM4"),
        "VM6": v6.with_name("VM6"),
    }


def testbed_llmi_traces(days: int = 7, seed: int = 42) -> list[ActivityTrace]:
    """The six LLMI workloads of the testbed experiment (V3-V8).

    V3 and V4 receive the same workload (paper section VI-A.2); V5-V8
    draw from the remaining production specs.
    """
    shared = production_trace(1, days=days, seed=seed)
    out = [shared.with_name("V3"), shared.with_name("V4")]
    for vm, idx in zip(("V5", "V6", "V7", "V8"), (2, 3, 4, 5)):
        out.append(production_trace(idx, days=days, seed=seed + idx).with_name(vm))
    return out
