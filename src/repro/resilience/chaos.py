"""Seed-deterministic process chaos: kill or hang workers on cue.

The supervision path (``repro.resilience.supervisor``) must itself be
testable, which needs *reproducible* process failures: not "kill a
random pid sometime", but "shard 2's worker dies the moment it reaches
hour 5" — every run, every machine.  Two harnesses provide that:

* :class:`ShardChaos` rides a :class:`~repro.api.sharded.ShardedConfig`
  into the sharded backend's workers.  The shard port fires it at each
  hour boundary (before any message of that hour is sent), so a kill
  or hang lands at a protocol point the coordinator can replay from —
  and the run's result is byte-identical to an undisturbed run.
* :class:`ChaosKill` + :func:`run_chaos_cell` wrap a sweep cell: the
  wrapped cell SIGKILLs its own worker process the *first* time it
  runs (a sentinel file in ``dir`` makes the kill fire-once across the
  respawned pool), exercising ``supervised_map``'s retry path.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class ShardChaos:
    """Deterministic worker failures for the sharded backend.

    ``kill_worker_at_hour`` / ``hang_worker_at_hour`` are tuples of
    ``(shard, hour)`` pairs: when the named shard reaches the named
    hour boundary it SIGKILLs its own worker process (taking down
    every shard co-located in it) or sleeps ``hang_s`` seconds —
    longer than any sane transport deadline, so the coordinator's
    timeout path fires.  After the coordinator recovers, entries at or
    before the recovery hour are stripped from the respawned setups,
    so each failure fires exactly once.
    """

    kill_worker_at_hour: tuple = ()
    hang_worker_at_hour: tuple = ()
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        for name in ("kill_worker_at_hour", "hang_worker_at_hour"):
            entries = tuple(
                (int(s), int(h)) for s, h in getattr(self, name))
            object.__setattr__(self, name, entries)

    @property
    def is_zero(self) -> bool:
        return not (self.kill_worker_at_hour or self.hang_worker_at_hour)

    def surviving(self, hour: int) -> "ShardChaos":
        """The entries still to fire after a recovery at ``hour``."""
        return ShardChaos(
            kill_worker_at_hour=tuple(
                e for e in self.kill_worker_at_hour if e[1] > hour),
            hang_worker_at_hour=tuple(
                e for e in self.hang_worker_at_hour if e[1] > hour),
            hang_s=self.hang_s)

    def fire(self, shard: int, hour: int) -> None:
        """Called by the shard port at each hour boundary."""
        if (shard, hour) in self.kill_worker_at_hour:
            os.kill(os.getpid(), signal.SIGKILL)
        if (shard, hour) in self.hang_worker_at_hour:
            time.sleep(self.hang_s)


@dataclass(frozen=True)
class ChaosKill:
    """Fire-once self-SIGKILL for sweep-cell chaos.

    ``maybe_fire`` atomically creates ``<dir>/<tag>.fired``; the
    creator kills its own process, later attempts (the respawned
    worker re-running the cell) see the sentinel and run through.
    """

    dir: str
    tag: str = "chaos"

    @property
    def sentinel(self) -> Path:
        return Path(self.dir) / f"{self.tag}.fired"

    def maybe_fire(self) -> None:
        self.sentinel.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class ChaosCell:
    """A sweep cell plus the chaos that greets its first execution."""

    cell: object
    kill: ChaosKill | None = None
    #: Extra pre-kill delay; lets hang-style tests exceed a deadline.
    sleep_s: float = 0.0
    runner: object = field(default=None)


def run_chaos_cell(chaos_cell: ChaosCell):
    """Run one wrapped sweep cell (top-level so spawn workers can
    pickle it); fires the chaos first, then delegates to the real cell
    runner (``repro.sim.sweep.run_cell`` by default)."""
    if chaos_cell.sleep_s > 0.0:
        time.sleep(chaos_cell.sleep_s)
    if chaos_cell.kill is not None:
        chaos_cell.kill.maybe_fire()
    runner = chaos_cell.runner
    if runner is None:
        from ..sim.sweep import run_cell as runner
    return runner(chaos_cell.cell)
