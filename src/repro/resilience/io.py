"""Crash-safe file writes: temp file + atomic rename.

Every artifact the package persists (checkpoints, sweep tables, run
results, journals) goes through :func:`atomic_target`: the payload is
written to a hidden sibling temp file, fsynced, and renamed over the
destination in one ``os.replace`` — so a crash (SIGKILL, OOM, power
loss) mid-save can never leave a truncated or half-written file at the
target path.  The temp file lives in the destination directory, which
keeps the rename on one filesystem (POSIX guarantees atomicity only
then).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path


def fsync_path(path: str | Path) -> None:
    """Flush a fully written file to stable storage (best effort —
    some filesystems refuse fsync on special files)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - races with removal
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs-dependent
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_target(path: str | Path):
    """Yield a temp path to write; rename it over ``path`` on success.

    The temp file is removed on failure, so aborted saves leave no
    debris next to the destination.  Concurrent savers to the same
    destination each get a distinct temp name (pid-suffixed); last
    rename wins with both files intact.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        yield tmp
        fsync_path(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_target(path) as tmp:
        tmp.write_bytes(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_target(path) as tmp:
        tmp.write_text(text)
