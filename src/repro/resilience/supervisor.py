"""Worker supervision: deadlines, backoff respawn, graceful degrade.

Two consumers share the policy object defined here:

* the sharded backend's coordinator (``repro.api.sharded``) wraps every
  transport read/write with it — a dead or hung worker process raises
  :class:`ShardCrashError` / :class:`ShardTimeoutError`, the coordinator
  respawns the whole worker pool from the last hour-boundary shard
  snapshots, replays its message journal, and continues the hour
  mid-protocol;
* :func:`supervised_map` is the crash-safe counterpart of
  ``multiprocessing.Pool.map`` for sweep cells — a SIGKILLed or hung
  worker loses only its unfinished cells, which are resubmitted to a
  fresh pool (bounded retries, exponential backoff) and finally run
  serially in-process when respawn is exhausted.

Both paths preserve the package's byte-identical determinism: every
retried unit of work (a shard hour, a sweep cell) is a pure function of
its inputs, so results are independent of which workers died and when —
asserted by ``tests/test_resilience.py``.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait


class ShardTimeoutError(RuntimeError):
    """A worker missed its response deadline (hung, not provably dead).

    Carries the worker (shard) id, the simulation hour the coordinator
    was exchanging when the deadline expired, and the elapsed wait.
    """

    def __init__(self, shard: int, hour: int | None, elapsed_s: float,
                 timeout_s: float) -> None:
        self.shard = shard
        self.hour = hour
        self.elapsed_s = elapsed_s
        self.timeout_s = timeout_s
        at = "before the first hour" if hour is None else f"at hour {hour}"
        super().__init__(
            f"shard {shard} timed out {at}: no response after "
            f"{elapsed_s:.1f} s (timeout {timeout_s:.1f} s)")


class ShardCrashError(RuntimeError):
    """A worker's channel closed without a goodbye (process death)."""

    def __init__(self, shard: int, hour: int | None, detail: str) -> None:
        self.shard = shard
        self.hour = hour
        at = "before the first hour" if hour is None else f"at hour {hour}"
        super().__init__(f"shard {shard} crashed {at}: {detail}")


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard to try before giving up on worker processes.

    ``max_restarts`` bounds pool respawns per run; each respawn waits
    ``backoff_base_s * backoff_factor**k`` first.  ``deadline_s`` is
    the no-progress timeout: how long a read from a worker may block
    before the worker counts as hung.  ``degrade`` falls back to
    in-process serial execution (threads for the sharded backend,
    inline calls for sweeps) once restarts are exhausted, instead of
    failing the run.
    """

    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    deadline_s: float = 300.0
    degrade: bool = True

    def backoff_s(self, restart: int) -> float:
        """Sleep before restart number ``restart`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** max(
            0, restart - 1)

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}")


# ----------------------------------------------------------------------
# supervised map (sweep cells)
# ----------------------------------------------------------------------

class _CellError:
    """A cell raised inside the worker: deterministic, never retried."""

    def __init__(self, formatted: str) -> None:
        self.formatted = formatted


class _RoundFailed(Exception):
    """A worker died or hung; the unfinished cells need a fresh pool."""


_PENDING = object()


def _map_worker(fn, assignments, conn) -> None:
    """Spawned-process entry: run this worker's cells in order."""
    try:
        for index, item in assignments:
            try:
                row = fn(item)
            except Exception:
                conn.send((index, _CellError(traceback.format_exc())))
                return
            conn.send((index, row))
    except (BrokenPipeError, OSError):  # parent died; nothing to report
        pass
    finally:
        conn.close()


def _run_round(ctx, fn, items, pending, workers, policy, results,
               on_result) -> None:
    """One pool incarnation: round-robin the pending cells over fresh
    worker processes; raise :class:`_RoundFailed` on death or hang."""
    n_procs = min(workers, len(pending))
    per_worker: list[list] = [[] for _ in range(n_procs)]
    for pos, index in enumerate(pending):
        per_worker[pos % n_procs].append((index, items[index]))
    procs = []
    expected: dict = {}
    try:
        for assignments in per_worker:
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_map_worker,
                               args=(fn, assignments, child), daemon=True)
            procs.append(proc)
            expected[parent] = len(assignments)
            proc.start()
            child.close()
        alive = set(expected)
        while alive:
            ready = _conn_wait(list(alive), timeout=policy.deadline_s)
            if not ready:
                raise _RoundFailed(
                    f"no cell completed within {policy.deadline_s:.1f} s")
            for conn in ready:
                try:
                    index, row = conn.recv()
                except (EOFError, OSError):
                    if expected[conn] > 0:
                        raise _RoundFailed(
                            "worker died with cells outstanding") from None
                    alive.discard(conn)
                    continue
                if isinstance(row, _CellError):
                    raise RuntimeError(
                        f"sweep cell {index} failed in worker:\n"
                        f"{row.formatted}")
                results[index] = row
                expected[conn] -= 1
                if on_result is not None:
                    on_result(index, row)
                if expected[conn] == 0:
                    alive.discard(conn)
                    conn.close()
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        for conn in expected:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def supervised_map(fn, items: list, workers: int,
                   policy: SupervisorPolicy | None = None,
                   mp_context=None, on_result=None,
                   skip: dict | None = None) -> list:
    """Crash-safe, order-preserving parallel map of independent cells.

    Results land by item index, so the output (and any table built from
    it) is byte-identical to a serial map no matter which workers were
    killed, hung, or respawned along the way.  ``on_result(index, row)``
    fires as each result arrives (journaling hook); ``skip`` maps
    indices to already-known results (resume), which are *not*
    recomputed and do *not* re-fire ``on_result``.
    """
    if policy is None:
        policy = SupervisorPolicy()
    if mp_context is None:
        from ..sim.sweep import spawn_context

        mp_context = spawn_context()
    items = list(items)
    results: list = [_PENDING] * len(items)
    for index, row in (skip or {}).items():
        if 0 <= index < len(items):
            results[index] = row
    pending = [i for i, r in enumerate(results) if r is _PENDING]
    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            results[index] = fn(items[index])
            if on_result is not None:
                on_result(index, results[index])
        return results
    restarts = 0
    while pending:
        try:
            _run_round(mp_context, fn, items, pending, workers, policy,
                       results, on_result)
        except _RoundFailed as exc:
            restarts += 1
            pending = [i for i, r in enumerate(results) if r is _PENDING]
            if restarts > policy.max_restarts:
                if not policy.degrade:
                    raise RuntimeError(
                        f"sweep workers failed {restarts} times "
                        f"(last: {exc}); degrade disabled") from exc
                for index in pending:
                    results[index] = fn(items[index])
                    if on_result is not None:
                        on_result(index, results[index])
                return results
            time.sleep(policy.backoff_s(restarts))
            continue
        pending = [i for i, r in enumerate(results) if r is _PENDING]
    return results
