"""Deterministic checkpoint/resume for simulation runs.

A checkpoint is the *entire* simulation object graph — the
:class:`~repro.api.Simulation` façade with its engine, data center,
controller, observers, fault injector, RNG streams, event heap and
timer wheel — pickled at an hour boundary (the one quiescent point of
both engines: the hour hooks are the last statement of hour
processing, and nothing is in flight between hours).  Because every
piece of runtime state is part of that graph, a resumed run replays
the remaining hours through exactly the code path of an uninterrupted
one, and the repo's signature guarantee extends across the crash:
**the resumed ``RunResult`` is byte-identical to the uninterrupted
run's** (asserted by ``tests/test_resilience.py``).

The on-disk format is versioned and self-validating::

    pickle({"magic": "repro-ckpt", "version": 1,
            "meta": {...provenance...},
            "digest": blake2b(payload).hexdigest(),
            "payload": <pickled Simulation>})

``meta`` is readable without touching the payload (``list_checkpoints``
never unpickles simulation state); the digest catches truncation and
bit rot before any resume is attempted; writes go through
:func:`~repro.resilience.io.atomic_target`, so a crash mid-write never
corrupts an earlier checkpoint.  Loading refuses unknown versions —
the format can evolve without silently misreading old files.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..obs.log import get_logger
from .io import atomic_write_bytes

log = get_logger("resilience.checkpoint")

#: On-disk format version; bump on any incompatible layout change.
CHECKPOINT_VERSION = 1
_MAGIC = "repro-ckpt"
#: Checkpoint filename suffix (what discovery globs for).
CHECKPOINT_SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or from another world."""


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where to checkpoint a run.

    ``every_h`` counts simulated hours between snapshots; ``keep``
    bounds how many files stay on disk (0 = keep all); ``label``
    prefixes the filenames, so several runs can share a directory.
    """

    dir: str
    every_h: int = 1
    keep: int = 0
    label: str = "run"

    def __post_init__(self) -> None:
        if self.every_h < 1:
            raise ValueError(f"every_h must be >= 1, got {self.every_h}")
        if self.keep < 0:
            raise ValueError(f"keep must be >= 0, got {self.keep}")


#: Process-wide default policy (CLI wiring): ``--checkpoint-dir`` on
#: ``python -m repro run``/``scenario run`` installs one here so every
#: simulation the experiment builds checkpoints itself, without
#: threading a parameter through each experiment module.
_default_policy: CheckpointPolicy | None = None
_default_attached = 0


def set_default_policy(policy: CheckpointPolicy | None) -> None:
    """Install (or clear, with ``None``) the process default policy.

    A :class:`~repro.api.Simulation` constructed with
    ``checkpoint=None`` picks the default up via
    :func:`take_default_policy`.  Spawned worker processes import the
    package fresh and therefore never inherit it — sweep cells stay
    checkpoint-free unless journaled at the sweep level.
    """
    global _default_policy, _default_attached
    _default_policy = policy
    _default_attached = 0


def take_default_policy() -> CheckpointPolicy | None:
    """The default policy for the next simulation, label-uniquified
    (``run``, ``run-2``, ``run-3``, …) so the several runs one command
    may start never overwrite each other's snapshot files."""
    global _default_attached
    if _default_policy is None:
        return None
    _default_attached += 1
    if _default_attached == 1:
        return _default_policy
    return replace(_default_policy,
                   label=f"{_default_policy.label}-{_default_attached}")


@dataclass
class Checkpoint:
    """One versioned, digest-protected snapshot of a running simulation."""

    meta: dict
    payload: bytes
    digest: str
    version: int = CHECKPOINT_VERSION

    @classmethod
    def capture(cls, sim, hour: int, start_hour: int,
                n_hours: int) -> "Checkpoint":
        """Snapshot ``sim`` just after hour ``hour`` completed."""
        payload = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "hour": hour,
            "next_hour": hour + 1,
            "start_hour": start_hour,
            "n_hours": n_hours,
            "backend": sim.backend_name,
            "controller": getattr(sim.controller, "name", "?"),
            "hosts": len(sim.dc.hosts),
            "vms": len(sim.dc.vms),
        }
        return cls(meta=meta,
                   payload=payload,
                   digest=hashlib.blake2b(payload).hexdigest())

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        atomic_write_bytes(path, pickle.dumps(
            {"magic": _MAGIC, "version": self.version, "meta": self.meta,
             "digest": self.digest, "payload": self.payload},
            protocol=pickle.HIGHEST_PROTOCOL))
        return path

    @classmethod
    def load(cls, path: str | Path, verify: bool = True) -> "Checkpoint":
        path = Path(path)
        try:
            wrapper = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint at {path}") from None
        except Exception as exc:
            raise CheckpointError(
                f"{path} is not a readable checkpoint: {exc}") from exc
        if not isinstance(wrapper, dict) or wrapper.get("magic") != _MAGIC:
            raise CheckpointError(f"{path} is not a repro checkpoint")
        if wrapper.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path} has checkpoint format "
                f"{wrapper.get('version')!r}; this build reads "
                f"{CHECKPOINT_VERSION}")
        ckpt = cls(meta=wrapper["meta"], payload=wrapper["payload"],
                   digest=wrapper["digest"], version=wrapper["version"])
        if verify:
            actual = hashlib.blake2b(ckpt.payload).hexdigest()
            if actual != ckpt.digest:
                raise CheckpointError(
                    f"{path} failed its digest check (stored "
                    f"{ckpt.digest[:12]}…, payload hashes to "
                    f"{actual[:12]}…): truncated or corrupt")
        return ckpt

    def restore(self):
        """Unpickle the simulation, marked to continue where it stopped."""
        sim = pickle.loads(self.payload)
        sim._resuming = True
        return sim


@dataclass(frozen=True)
class CheckpointInfo:
    """Cheap listing entry: provenance without unpickling any state."""

    path: Path
    meta: dict

    def describe(self) -> str:
        m = self.meta
        return (f"{self.path.name:<24} hour {m.get('hour', '?'):>4} / "
                f"{m.get('n_hours', '?'):<4} {m.get('backend', '?'):<8} "
                f"{m.get('controller', '?'):<12} "
                f"{m.get('hosts', '?')} hosts, {m.get('vms', '?')} VMs")


def list_checkpoints(directory: str | Path) -> list[CheckpointInfo]:
    """Resumable checkpoints under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    infos = []
    for path in sorted(directory.glob(f"*{CHECKPOINT_SUFFIX}")):
        try:
            info = CheckpointInfo(
                path=path, meta=Checkpoint.load(path, verify=False).meta)
        except CheckpointError:
            continue
        infos.append(info)
    infos.sort(key=lambda i: (i.meta.get("hour", -1), str(i.path)))
    return infos


def latest_checkpoint(directory: str | Path) -> Path:
    """The most advanced checkpoint in ``directory`` (for resume)."""
    infos = list_checkpoints(directory)
    if not infos:
        raise CheckpointError(f"no checkpoints under {directory}")
    return infos[-1].path


class CheckpointManager:
    """The observer that writes checkpoints at hour boundaries.

    Attached by ``Simulation(..., checkpoint=...)`` as the *last*
    observer, so the snapshot of hour ``t`` includes every mutation
    the other observers (scenario churn, fault injector) made at
    ``t``.  On the in-process backends the manager pickles the façade
    directly; the sharded coordinator exposes ``request_checkpoint``
    instead — it must first collect the per-shard engine snapshots
    (the hour's last protocol messages) before the graph is complete.
    """

    #: The manager keys ``due()`` off the simulated hour alone, but a
    #: resumed run re-derives ``_start_hour`` from the snapshot, and
    #: capture must never see a wall-clock time in the graph it pickles
    #: (repro.api.observers).
    wants_sim_time = True

    def __init__(self, policy: CheckpointPolicy | str | Path) -> None:
        if isinstance(policy, (str, Path)):
            policy = CheckpointPolicy(dir=str(policy))
        self.policy = policy
        self._sim = None
        self._start_hour = 0
        self._n_hours = 0
        #: Path of the newest checkpoint written this run.
        self.last_path: Path | None = None
        #: Checkpoints written this run (benchmarks read this).
        self.written = 0
        #: Bytes and wall seconds spent writing them (telemetry reads
        #: these; DESIGN.md §17).
        self.bytes_written = 0
        self.write_wall_s = 0.0

    # -- observer protocol -------------------------------------------------
    def on_run_start(self, sim, start_hour: int, n_hours: int) -> None:
        self._sim = sim
        self._start_hour = start_hour
        self._n_hours = n_hours
        Path(self.policy.dir).mkdir(parents=True, exist_ok=True)

    def on_hour(self, t: int, now: float) -> None:
        if self._sim is None or not self.due(t):
            return
        request = getattr(self._sim.engine, "request_checkpoint", None)
        if request is not None:
            request(self, t)
        else:
            self.write_checkpoint(t)

    def on_run_end(self, result) -> None:
        pass

    # ----------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Late attachment (scenario-compiled simulations)."""
        self._sim = sim

    def due(self, t: int) -> bool:
        return (t - self._start_hour + 1) % self.policy.every_h == 0

    def write_checkpoint(self, t: int) -> Path:
        started = time.perf_counter()
        ckpt = Checkpoint.capture(self._sim, hour=t,
                                  start_hour=self._start_hour,
                                  n_hours=self._n_hours)
        path = (Path(self.policy.dir)
                / f"{self.policy.label}-h{t + 1:05d}{CHECKPOINT_SUFFIX}")
        ckpt.save(path)
        self.last_path = path
        self.written += 1
        self.bytes_written += path.stat().st_size
        self.write_wall_s += time.perf_counter() - started
        log.debug("checkpoint hour %d -> %s", t, path)
        self._prune()
        return path

    def _prune(self) -> None:
        keep = self.policy.keep
        if keep <= 0:
            return
        mine = sorted(Path(self.policy.dir).glob(
            f"{self.policy.label}-h*{CHECKPOINT_SUFFIX}"))
        for stale in mine[:-keep]:
            stale.unlink(missing_ok=True)
