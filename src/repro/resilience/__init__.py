"""Crash-safe execution: checkpoint/resume + worker supervision.

The package's durable-runs layer (DESIGN.md §16).  Nothing here
imports ``repro.api`` at module level — the façade imports *us*, and
the sharded transport borrows the error types — so the dependency
graph stays a DAG.
"""

from .chaos import ChaosCell, ChaosKill, ShardChaos, run_chaos_cell
from .checkpoint import (
    CHECKPOINT_SUFFIX,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointInfo,
    CheckpointManager,
    CheckpointPolicy,
    latest_checkpoint,
    list_checkpoints,
)
from .io import atomic_target, atomic_write_bytes, atomic_write_text
from .journal import SweepJournal
from .supervisor import (
    ShardCrashError,
    ShardTimeoutError,
    SupervisorPolicy,
    supervised_map,
)

__all__ = [
    "CHECKPOINT_SUFFIX",
    "CHECKPOINT_VERSION",
    "ChaosCell",
    "ChaosKill",
    "Checkpoint",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "CheckpointPolicy",
    "ShardChaos",
    "ShardCrashError",
    "ShardTimeoutError",
    "SupervisorPolicy",
    "SweepJournal",
    "atomic_target",
    "atomic_write_bytes",
    "atomic_write_text",
    "latest_checkpoint",
    "list_checkpoints",
    "run_chaos_cell",
    "supervised_map",
]
