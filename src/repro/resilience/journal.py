"""Append-only result journal for resumable sweeps.

A sweep over hundreds of cells should not lose completed work when the
*driver* process dies.  :class:`SweepJournal` streams each finished
``(index, row)`` pair to disk as a self-delimiting pickle record,
fsynced per append; a relaunched sweep loads the journal, skips the
cells already done, and recomputes only the rest.  A truncated tail
record (the crash landed mid-append) is silently dropped — every
complete record before it is still valid, which is exactly the
guarantee an append-only log can give.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path


class SweepJournal:
    """Durable per-cell results of one sweep invocation."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> dict[int, object]:
        """Completed cells recorded so far: ``{index: row}``."""
        done: dict[int, object] = {}
        if not self.path.exists():
            return done
        with open(self.path, "rb") as fh:
            while True:
                try:
                    index, row = pickle.load(fh)
                except (EOFError, pickle.UnpicklingError, ValueError,
                        AttributeError, IndexError):
                    break
                done[int(index)] = row
        return done

    def append(self, index: int, row) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as fh:
            pickle.dump((index, row), fh,
                        protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)
