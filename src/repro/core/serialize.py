"""Persistence for idleness models.

A data center restarts its management plane without wanting to relearn
months of idleness history, so models are saveable.  Format: a single
NumPy ``.npz`` archive holding the four score tables, the weights and
the scalar counters, plus a format version for forward compatibility.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .fleet import FleetIdlenessModel
from .model import IdlenessModel
from .params import DEFAULT_PARAMS, DrowsyParams

FORMAT_VERSION = 1


def _check_version(data) -> None:
    version = int(data["version"])
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model file version {version} "
                         f"(expected {FORMAT_VERSION})")


def save_model(model: IdlenessModel, path: str | Path) -> None:
    """Serialize one VM's model to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        version=FORMAT_VERSION,
        kind="scalar",
        sid=model.sid, siw=model.siw, sim=model.sim, siy=model.siy,
        weights=model.weights,
        scale_mask=model.scale_mask,
        activity_sum=model._activity_sum,
        active_hours=model._active_hours,
        hours_observed=model.hours_observed,
    )


def load_model(path: str | Path,
               params: DrowsyParams = DEFAULT_PARAMS) -> IdlenessModel:
    """Restore a scalar model saved by :func:`save_model`."""
    with np.load(path) as data:
        _check_version(data)
        if str(data["kind"]) != "scalar":
            raise ValueError("file holds a fleet model; use load_fleet")
        model = IdlenessModel(params)
        model.sid = data["sid"].copy()
        model.siw = data["siw"].copy()
        model.sim = data["sim"].copy()
        model.siy = data["siy"].copy()
        model.weights = data["weights"].copy()
        model.scale_mask = data["scale_mask"].copy()
        model._activity_sum = float(data["activity_sum"])
        model._active_hours = int(data["active_hours"])
        model.hours_observed = int(data["hours_observed"])
    return model


def save_fleet(fleet: FleetIdlenessModel, path: str | Path) -> None:
    """Serialize a whole fleet's models to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        version=FORMAT_VERSION,
        kind="fleet",
        n=fleet.n,
        sid=fleet.sid, siw=fleet.siw, sim=fleet.sim, siy=fleet.siy,
        weights=fleet.weights,
        scale_mask=fleet.scale_mask,
        activity_sum=fleet._activity_sum,
        active_hours=fleet._active_hours,
        hours_observed=fleet.hours_observed,
        row_hours=fleet.row_hours,
    )


def load_fleet(path: str | Path,
               params: DrowsyParams = DEFAULT_PARAMS) -> FleetIdlenessModel:
    """Restore a fleet model saved by :func:`save_fleet`."""
    with np.load(path) as data:
        _check_version(data)
        if str(data["kind"]) != "fleet":
            raise ValueError("file holds a scalar model; use load_model")
        fleet = FleetIdlenessModel(int(data["n"]), params)
        fleet.sid = data["sid"].copy()
        fleet.siw = data["siw"].copy()
        fleet.sim = data["sim"].copy()
        fleet.siy = data["siy"].copy()
        fleet.weights = data["weights"].copy()
        fleet.scale_mask = data["scale_mask"].copy()
        fleet._activity_sum = data["activity_sum"].copy()
        fleet._active_hours = data["active_hours"].copy()
        fleet.hours_observed = int(data["hours_observed"])
        if "row_hours" in data.files:
            fleet.row_hours = data["row_hours"].copy()
        else:  # archives written before the per-row counters existed
            fleet.row_hours = np.full(fleet.n, fleet.hours_observed,
                                      dtype=np.int64)
    return fleet


def model_to_bytes(model: IdlenessModel) -> bytes:
    """In-memory serialization (e.g. for replication over the network)."""
    buf = io.BytesIO()
    save_model(model, buf)
    return buf.getvalue()


def model_from_bytes(blob: bytes,
                     params: DrowsyParams = DEFAULT_PARAMS) -> IdlenessModel:
    """Inverse of :func:`model_to_bytes`."""
    return load_model(io.BytesIO(blob), params)
