"""Paper constants and tunable parameters for Drowsy-DC.

Every constant that the paper states explicitly lives here, together with
the handful of parameters the paper leaves implicit (documented in
DESIGN.md, section "Interpretation choices").  All components take a
:class:`DrowsyParams` so experiments can ablate individual knobs without
monkey-patching module globals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Hours in the paper's 365-day year (no leap years; see DESIGN.md).
HOURS_PER_YEAR = 365 * 24

#: Activity scaling factor sigma (paper eq. (3)): constant full activity
#: for one year moves SId from 0 to -1 (ignoring the u coefficient).
SIGMA = 1.0 / HOURS_PER_YEAR

#: Paper section III-D: hosts whose VM IP range exceeds 7*sigma are split
#: by the opportunistic consolidation step ("roughly a week of constant
#: maximum activity in a SId").
IP_RANGE_THRESHOLD = 7.0 * SIGMA

#: Paper section III-C: alpha is "the decrease speed of the update value
#: when the threshold set by beta is reached".
ALPHA = 0.7
#: Paper section III-C: beta is "the threshold above which the SI* is
#: considered to start reaching extreme values" (halfway point).
BETA = 0.5

#: Paper section IV: grace time bounds, "empirically set between 5s and
#: 2min, exponentially increasing as the IP decreases".
GRACE_MIN_S = 5.0
GRACE_MAX_S = 120.0

#: Paper section VI-A.3: response time of wake-triggered requests was
#: ~1500 ms, brought down to ~800 ms by the quick-resume work.
RESUME_LATENCY_BASELINE_S = 1.5
RESUME_LATENCY_OPTIMIZED_S = 0.8

#: Paper section VI-A.2: suspended host draws ~5 W, about 10% of idle S0.
SUSPEND_POWER_W = 5.0
IDLE_POWER_W = 50.0
#: Peak power for the i7-3770 testbed machines (calibrated, see DESIGN.md).
MAX_POWER_W = 120.0

#: CloudSuite web-search SLA used in section VI-A.3.
SLA_LATENCY_S = 0.200


def u_coefficient(abs_si: float, alpha: float = ALPHA, beta: float = BETA) -> float:
    """Paper eq. (4): u(|SI*|) = 1 / (1 + exp(alpha * (|SI*| - beta))).

    Dampens updates as a score approaches the [-1, 1] bounds while keeping
    learning fast for undetermined (near-zero) scores.
    """
    return 1.0 / (1.0 + math.exp(alpha * (abs_si - beta)))


@dataclass(frozen=True)
class DrowsyParams:
    """All tunables for the idleness model and the two runtime modules.

    Defaults are the paper's values; fields flagged *(interpretation)* are
    documented choices for under-specified details (DESIGN.md section 2).
    """

    # --- idleness model (section III) ---
    alpha: float = ALPHA
    beta: float = BETA
    sigma: float = SIGMA
    #: Number of steepest-descent iterations per hourly weight update.
    weight_descent_steps: int = 8
    #: Steepest-descent step size (interpretation: paper only says the
    #: precision "can be set to not incur any overhead").
    weight_learning_rate: float = 0.5
    #: Fallback mean activity before any active hour was observed
    #: (interpretation; see DESIGN.md).
    default_activity: float = 1.0
    #: Quanta shorter than this fraction of an hour are treated as noise
    #: when computing the hourly activity level (section III-C: "very
    #: short scheduling quanta -- noise -- are filtered out").
    quanta_noise_threshold: float = 1e-3
    #: Disable weight learning (ablation): keep uniform weights.
    learn_weights: bool = True
    #: Error-driven gating (interpretation): correct the weights only on
    #: hours where the model mispredicted.  When the prediction was
    #: right, Q(w) is already near its minimum and the descent would
    #: merely chase the idle-hour volume, collapsing all weight onto the
    #: daily scale; gating keeps the scales in competition (this is what
    #: reproduces Fig. 4b's slow holiday learning).
    weight_update_on_error_only: bool = True
    #: Calendar scales in use (ablation).  All four per the paper.
    use_weekly_scale: bool = True
    use_monthly_scale: bool = True
    use_yearly_scale: bool = True

    # --- consolidation (section III-D) ---
    ip_range_threshold: float = IP_RANGE_THRESHOLD
    #: Tolerance when sorting by IP distance (footnote 3: "close
    #: distances are considered equal").  Half an hour-of-constant-
    #: activity worth of SI difference: small enough to react to one
    #: day of pattern divergence, large enough to ignore level noise.
    ip_distance_tolerance: float = 0.5 * SIGMA
    #: Enable the opportunistic IP-range consolidation step (ablation).
    opportunistic_step: bool = True

    # --- suspending module (section IV) ---
    grace_min_s: float = GRACE_MIN_S
    grace_max_s: float = GRACE_MAX_S
    #: Raw-IP scale for the grace-time mapping (interpretation): raw IPs
    #: live on the sigma scale — the paper's own 7*sigma range threshold
    #: shows meaningful IP differences are a few sigma — so a host a
    #: couple of weeks of activity "deep" saturates the grace window.
    grace_ip_scale: float = 14.0 * SIGMA
    #: Enable grace time (ablation; Neat's suspend support in the paper
    #: runs "the exact same algorithm ... the grace time excepted").
    use_grace: bool = True
    #: Period between idleness checks of the suspending module.
    suspend_check_period_s: float = 5.0

    # --- waking module (section V) ---
    resume_latency_s: float = RESUME_LATENCY_OPTIMIZED_S
    suspend_latency_s: float = 3.0
    #: Scheduled wakes are sent ahead of time by the resume latency
    #: (section V-B) plus this safety margin.
    wake_ahead_margin_s: float = 0.2
    #: Enable ahead-of-time scheduled wake (ablation).
    ahead_of_time_wake: bool = True
    #: Heartbeat period for waking-module fault tolerance.
    heartbeat_period_s: float = 1.0
    #: Heartbeats missed before a mirror takes over.
    heartbeat_miss_limit: int = 3
    #: WoL retry: a sent wake not observed to land within this timeout is
    #: re-sent (the resilient channel; only armed under fault injection).
    wol_retry_timeout_s: float = 1.0
    #: Multiplier applied to the retry timeout per attempt (exponential
    #: backoff).
    wol_retry_backoff: float = 2.0
    #: Retries before a wake is abandoned to the periodic redispatch path.
    wol_retry_max: int = 6

    # --- power model (section VI-A.2) ---
    suspend_power_w: float = SUSPEND_POWER_W
    idle_power_w: float = IDLE_POWER_W
    max_power_w: float = MAX_POWER_W

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.weight_descent_steps < 0:
            raise ValueError("weight_descent_steps must be >= 0")
        if self.weight_learning_rate < 0:
            raise ValueError("weight_learning_rate must be >= 0")
        if not 0.0 <= self.default_activity <= 1.0:
            raise ValueError("default_activity must be in [0, 1]")
        if self.ip_range_threshold < 0 or self.ip_distance_tolerance < 0:
            raise ValueError("IP thresholds must be >= 0")
        if not 0 < self.grace_min_s <= self.grace_max_s:
            raise ValueError("grace bounds must satisfy 0 < min <= max")
        if self.grace_ip_scale <= 0:
            raise ValueError("grace_ip_scale must be positive")
        if self.resume_latency_s < 0 or self.suspend_latency_s < 0:
            raise ValueError("transition latencies must be >= 0")
        if self.suspend_check_period_s <= 0:
            raise ValueError("suspend_check_period_s must be positive")
        if self.heartbeat_period_s <= 0 or self.heartbeat_miss_limit < 1:
            raise ValueError("heartbeat configuration invalid")
        if self.wol_retry_timeout_s <= 0 or self.wol_retry_backoff < 1.0:
            raise ValueError("WoL retry configuration invalid")
        if self.wol_retry_max < 0:
            raise ValueError("wol_retry_max must be >= 0")
        if not 0.0 <= self.suspend_power_w <= self.idle_power_w <= self.max_power_w:
            raise ValueError("power model must satisfy 0 <= S3 <= idle <= max")

    def replace(self, **kwargs) -> "DrowsyParams":
        """Return a copy with ``kwargs`` overridden (dataclass replace)."""
        import dataclasses

        return dataclasses.replace(self, **kwargs)


#: Shared default parameter set (paper values).
DEFAULT_PARAMS = DrowsyParams()
