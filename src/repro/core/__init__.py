"""Core contribution of the paper: idleness model, probability, metrics."""

from .calendar import (
    DAYS_PER_WEEK,
    DAYS_PER_YEAR,
    HOURS_PER_DAY,
    HOURS_PER_YEAR,
    MONTH_LENGTHS,
    CalendarSlot,
    hour_index,
    hour_of_time,
    slot_of_hour,
    slots_of_hours,
    time_of_hour,
)
from .adaptive import AdaptiveBands, AdaptiveIdlenessModel
from .binding import FleetBinding, FleetVMView
from .fleet import FleetIdlenessModel
from .metrics import ConfusionCounts, MetricCurves, cumulative_curves
from .model import IdlenessModel, IdlenessObservation
from .serialize import (
    load_fleet,
    load_model,
    model_from_bytes,
    model_to_bytes,
    save_fleet,
    save_model,
)
from .params import (
    DEFAULT_PARAMS,
    IP_RANGE_THRESHOLD,
    SIGMA,
    DrowsyParams,
    u_coefficient,
)
from .weights import descend_weights, initial_weights, project_to_simplex

__all__ = [
    "AdaptiveBands",
    "AdaptiveIdlenessModel",
    "CalendarSlot",
    "ConfusionCounts",
    "DAYS_PER_WEEK",
    "DAYS_PER_YEAR",
    "DEFAULT_PARAMS",
    "DrowsyParams",
    "FleetBinding",
    "FleetIdlenessModel",
    "FleetVMView",
    "HOURS_PER_DAY",
    "HOURS_PER_YEAR",
    "IP_RANGE_THRESHOLD",
    "IdlenessModel",
    "IdlenessObservation",
    "MONTH_LENGTHS",
    "MetricCurves",
    "SIGMA",
    "cumulative_curves",
    "descend_weights",
    "hour_index",
    "hour_of_time",
    "initial_weights",
    "load_fleet",
    "load_model",
    "model_from_bytes",
    "model_to_bytes",
    "project_to_simplex",
    "save_fleet",
    "save_model",
    "slot_of_hour",
    "slots_of_hours",
    "time_of_hour",
    "u_coefficient",
]
