"""Weight learning for the idleness model (paper section III-C-b).

The four scale weights ``w = (wd, ww, wm, wy)`` are corrected every hour
by steepest descent on the quadratic error

    Q(w) = (IP' - IP)^2 = (w0^T SI' - w^T SI)^2        (paper eq. (8))

where ``w0`` are the weights at the beginning of the hour, ``SI'`` the
scores *after* the hourly update and ``SI`` the scores *before* it.

The paper treats weights as relative importances ("higher means more
important"); we therefore keep them on the non-negative unit simplex via
Euclidean projection after the descent (see DESIGN.md, interpretation
choices).  Both a scalar (one VM) and a batched (fleet) implementation
are provided; they are property-tested to agree exactly.
"""

from __future__ import annotations

import numpy as np

N_SCALES = 4


def project_to_simplex(v: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Euclidean projection of ``v`` onto the probability simplex.

    ``mask`` (bool, same shape) marks active coordinates; masked-out
    coordinates are forced to exactly zero and the remaining mass is
    distributed over the active ones.  Supports a trailing axis of
    coordinates with arbitrary leading batch axes.
    """
    v = np.asarray(v, dtype=np.float64)
    if mask is None:
        mask = np.ones(v.shape[-1], dtype=bool)
    mask = np.broadcast_to(mask, v.shape)
    w = np.where(mask, v, -np.inf)

    # Sort descending along the last axis; -inf (masked) entries sink.
    u = -np.sort(-w, axis=-1)
    k = np.arange(1, v.shape[-1] + 1, dtype=np.float64)
    finite = np.isfinite(u)
    safe_u = np.where(finite, u, 0.0)
    css = np.cumsum(safe_u, axis=-1) - 1.0
    cond = (u - css / k > 0) & finite
    # rho: last index where cond holds (at least one always holds for a
    # non-empty mask because the largest active coordinate satisfies it).
    rho = cond.shape[-1] - 1 - np.argmax(cond[..., ::-1], axis=-1)
    any_active = mask.any(axis=-1)
    if not np.all(any_active):
        raise ValueError("projection requires at least one active scale")
    theta = np.take_along_axis(css, rho[..., None], axis=-1) / (rho[..., None] + 1.0)
    out = np.maximum(np.where(mask, v, 0.0) - theta, 0.0)
    return np.where(mask, out, 0.0)


def descend_weights(
    w0: np.ndarray,
    si_old: np.ndarray,
    si_new: np.ndarray,
    steps: int,
    learning_rate: float,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """One hourly weight correction (vectorized over leading batch axes).

    Parameters
    ----------
    w0 : (..., 4) weights at the beginning of the hour.
    si_old : (..., 4) SI scores before the hourly update.
    si_new : (..., 4) SI scores after the hourly update.
    steps, learning_rate : descent configuration.
    mask : optional (4,) bool array of active scales (ablation).

    Returns the corrected weights, projected onto the simplex.
    """
    w0 = np.asarray(w0, dtype=np.float64)
    si_old = np.asarray(si_old, dtype=np.float64)
    si_new = np.asarray(si_new, dtype=np.float64)
    if mask is not None:
        si_old = np.where(mask, si_old, 0.0)
        si_new = np.where(mask, si_new, 0.0)

    target = np.sum(w0 * si_new, axis=-1)  # IP' (paper eq. (7))
    w = w0.copy()
    # Steepest descent on Q(w): grad = -2 (target - w.SI) SI.
    # Normalize the step by |SI|^2 so convergence speed is independent of
    # the (tiny) SI magnitude; eta=1 would solve exactly in one step.
    norm2 = np.sum(si_old * si_old, axis=-1)
    safe = np.where(norm2 > 0.0, norm2, 1.0)
    for _ in range(steps):
        err = target - np.sum(w * si_old, axis=-1)
        w = w + (learning_rate * err / safe)[..., None] * si_old
    w = np.where((norm2 > 0.0)[..., None], w, w0)
    return project_to_simplex(w, mask)


def initial_weights(mask: np.ndarray | None = None, batch: int | None = None) -> np.ndarray:
    """Uniform weights over the active scales (start of learning)."""
    if mask is None:
        mask = np.ones(N_SCALES, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    n_active = int(mask.sum())
    if n_active == 0:
        raise ValueError("at least one scale must be active")
    base = np.where(mask, 1.0 / n_active, 0.0)
    if batch is None:
        return base.copy()
    return np.tile(base, (batch, 1))
