"""Columnar fleet-state binding: one vectorized model for a data center.

The scalar :class:`~repro.core.model.IdlenessModel` makes the per-VM,
per-hour update O(1), but driving ``n`` of them from Python costs ``n``
interpreter round-trips per simulated hour — at fleet scale that loop is
where both simulators spend their time.  :class:`FleetBinding` owns a
single :class:`~repro.core.fleet.FleetIdlenessModel` holding every VM's
SI tables in stacked arrays and replaces each ``vm.model`` with a
:class:`FleetVMView`: a zero-copy view object satisfying the scalar
model's API, so consolidation controllers, the suspending module and the
schedulers keep working unchanged while the simulators ingest a whole
hour with one vectorized ``observe`` call (DESIGN.md §6).

Bit-for-bit equivalence with the scalar path is a hard requirement (the
parity suite in ``tests/test_fleet_binding.py`` asserts identical energy
totals, suspend cycles, migrations and SLATAH): views compute queries
with exactly the scalar model's expressions over the fleet rows, and the
batched update is the property-tested vectorized kernel of
:mod:`repro.core.fleet`.
"""

from __future__ import annotations

import numpy as np

from .calendar import CalendarSlot, slot_of_hour
from .fleet import FleetIdlenessModel
from .model import IdlenessModel
from .params import DrowsyParams


class FleetVMView:
    """One VM's window into a :class:`FleetIdlenessModel`.

    Implements the scalar :class:`~repro.core.model.IdlenessModel` API
    (queries, ``observe``, table/weight attributes) backed by row ``i``
    of the fleet arrays.  Reads are views, never copies; the scalar
    fallback :meth:`observe` delegates to the fleet's single-row update.
    """

    __slots__ = ("_fleet", "_i")

    def __init__(self, fleet: FleetIdlenessModel, index: int) -> None:
        self._fleet = fleet
        self._i = index

    # -- state attributes (scalar-model compatible) --------------------
    @property
    def fleet(self) -> FleetIdlenessModel:
        return self._fleet

    @property
    def fleet_index(self) -> int:
        return self._i

    @property
    def params(self) -> DrowsyParams:
        return self._fleet.params

    @property
    def scale_mask(self) -> np.ndarray:
        return self._fleet.scale_mask

    @property
    def sid(self) -> np.ndarray:
        return self._fleet.sid[self._i]

    @property
    def siw(self) -> np.ndarray:
        return self._fleet.siw[self._i]

    @property
    def sim(self) -> np.ndarray:
        return self._fleet.sim[self._i]

    @property
    def siy(self) -> np.ndarray:
        return self._fleet.siy[self._i]

    @property
    def weights(self) -> np.ndarray:
        return self._fleet.weights[self._i]

    @property
    def hours_observed(self) -> int:
        return int(self._fleet.row_hours[self._i])

    @property
    def _activity_sum(self) -> float:
        return float(self._fleet._activity_sum[self._i])

    @property
    def _active_hours(self) -> int:
        return int(self._fleet._active_hours[self._i])

    @property
    def mean_active_activity(self) -> float:
        f, i = self._fleet, self._i
        if f._active_hours[i] == 0:
            return f.params.default_activity
        return f._activity_sum[i] / f._active_hours[i]

    # -- queries -------------------------------------------------------
    def si_vector(self, slot: CalendarSlot) -> np.ndarray:
        f, i = self._fleet, self._i
        h = slot.hour
        si = np.array([
            f.sid[i, h],
            f.siw[i, slot.day_of_week, h],
            f.sim[i, slot.day_of_month, h],
            f.siy[i, slot.day_of_year, h],
        ])
        return np.where(f.scale_mask, si, 0.0)

    def raw_ip(self, slot: CalendarSlot) -> float:
        # One vectorized gather serves all n VMs' queries at this slot
        # (bit-identical to the scalar w @ si, see raw_ip_column).
        return float(self._fleet.raw_ip_column(slot)[self._i])

    def idleness_probability(self, slot: CalendarSlot) -> float:
        return (self.raw_ip(slot) + 1.0) / 2.0

    def predict_idle(self, slot: CalendarSlot) -> bool:
        return self.idleness_probability(slot) > 0.5

    # -- updates -------------------------------------------------------
    def observe(self, hour_index: int, activity: float):
        """Single-row scalar update (for VMs observed outside a batch)."""
        return self._fleet.observe_one(self._i, hour_index, float(activity))

    def predict_and_observe(self, hour_index: int, activity: float) -> tuple[bool, bool]:
        predicted = self.predict_idle(slot_of_hour(hour_index))
        obs = self.observe(hour_index, activity)
        return predicted, obs.idle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetVMView(row={self._i}, n={self._fleet.n})"


class FleetBinding:
    """Bind every VM of a data center to one columnar fleet model.

    Construction imports each VM's current scalar model state into the
    fleet rows (pre-trained models are preserved exactly) and swaps
    ``vm.model`` for a :class:`FleetVMView`.  The binding also owns the
    precomputed ``(n, T)`` trace activity matrix so per-hour trace loads
    are one column read instead of ``n`` Python calls.

    Use :meth:`try_bind` from simulators: it refuses (returns ``None``)
    when the data center is empty, when a VM carries a non-standard
    model (e.g. :class:`~repro.core.adaptive.AdaptiveIdlenessModel`), or
    when model parameters disagree across VMs — the simulators then keep
    the scalar per-VM path.
    """

    def __init__(self, vms: list, params: DrowsyParams) -> None:
        if not vms:
            raise ValueError("cannot bind an empty fleet")
        self.vms = list(vms)
        self.params = params
        n = len(self.vms)
        self.fleet = FleetIdlenessModel(n, params)
        self.index = {vm.name: i for i, vm in enumerate(self.vms)}
        if len(self.index) != n:
            raise ValueError("duplicate VM names in fleet binding")
        for i, vm in enumerate(self.vms):
            self._import_row(i, vm.model)
            vm.model = FleetVMView(self.fleet, i)
            # Import host-process state too: the columnar blocked-I/O
            # flags must reflect values set before binding.
            if getattr(vm, "blocked_io", False):
                self.fleet.set_blocked_io(i, True)
        self._matrix: np.ndarray | None = None
        self._matrix_start = 0
        #: Columnar per-host accounting attached by :meth:`try_bind`
        #: (see :mod:`repro.cluster.accounting`).
        self.accounting = None

    # ------------------------------------------------------------------
    @classmethod
    def try_bind(cls, dc, params: DrowsyParams,
                 accounting: bool = True) -> "FleetBinding | None":
        """Bind ``dc``'s VMs if they carry plain, uniform models.

        Reuses the data center's current binding when it still covers
        the placed VMs.  When the fleet grew (some VMs bound to an older
        fleet, newcomers scalar), a *fresh* binding is built — views
        expose the scalar state API, so their rows import exactly and
        the columnar fast path survives fleet growth.

        With ``accounting=True`` (the default) the binding also attaches
        a :class:`~repro.cluster.accounting.HostAccounting` to ``dc`` so
        simulators and controllers can read per-host quantities
        columnar-ly; ``accounting=False`` detaches it, leaving every
        consumer on the scalar per-host properties.
        """
        existing = getattr(dc, "_fleet_binding", None)
        vms = dc.vms
        if existing is not None and existing.covers(vms):
            existing._sync_accounting(dc, accounting)
            return existing
        if not vms:
            return None
        for vm in vms:
            if type(vm.model) not in (IdlenessModel, FleetVMView):
                return None
            if vm.model.params != params:
                return None
        binding = cls(vms, params)
        dc._fleet_binding = binding
        binding._sync_accounting(dc, accounting)
        return binding

    def _sync_accounting(self, dc, enabled: bool) -> None:
        """Attach/refresh (or detach) the host-accounting layer."""
        from ..cluster.accounting import HostAccounting

        if not enabled:
            self.accounting = None
            dc._accounting = None
            return
        acc = self.accounting
        if acc is None or acc.dc is not dc or not acc.valid:
            acc = HostAccounting(self, dc)
            self.accounting = acc
        dc._accounting = acc

    def _import_row(self, i: int, model) -> None:
        """Copy scalar-API model state (IdlenessModel or FleetVMView)
        into fleet row ``i``."""
        f = self.fleet
        if not np.array_equal(model.scale_mask, f.scale_mask):
            raise ValueError("scale-mask mismatch importing model state")
        f.sid[i] = model.sid
        f.siw[i] = model.siw
        f.sim[i] = model.sim
        f.siy[i] = model.siy
        f.weights[i] = model.weights
        f._activity_sum[i] = model._activity_sum
        f._active_hours[i] = model._active_hours
        f.row_hours[i] = model.hours_observed

    # ------------------------------------------------------------------
    def covers(self, vms: list) -> bool:
        """True iff every VM in ``vms`` is bound to this fleet."""
        index = self.index
        fleet = self.fleet
        for vm in vms:
            m = vm.model
            if type(m) is not FleetVMView or m._fleet is not fleet:
                return False
            if index.get(vm.name) != m._i:
                return False
        return True

    # ------------------------------------------------------------------
    # precomputed trace matrix
    # ------------------------------------------------------------------
    def ensure_horizon(self, start_hour: int, n_hours: int) -> None:
        """Precompute the ``(n, T)`` activity matrix for a run horizon."""
        if (self._matrix is not None and self._matrix_start <= start_hour
                and start_hour + n_hours <= self._matrix_start + self._matrix.shape[1]):
            return
        from ..traces.base import activity_matrix

        self._matrix = activity_matrix([vm.trace for vm in self.vms],
                                       n_hours, start_hour=start_hour)
        self._matrix_start = start_hour

    def activities(self, hour_index: int) -> np.ndarray:
        """(n,) trace activities of the bound VMs for an absolute hour."""
        m = self._matrix
        if m is not None:
            col = hour_index - self._matrix_start
            if 0 <= col < m.shape[1]:
                return m[:, col]
        return np.array([vm.activity_at(hour_index) for vm in self.vms])

    def load_hour(self, hour_index: int) -> np.ndarray:
        """Set every bound VM's ``current_activity`` for the hour.

        Returns the ``(n,)`` activity column, ready to be fed to
        :meth:`observe`.  VMs no longer placed on any host keep receiving
        their trace activity — nothing reads their state, and keeping the
        column dense keeps the batched update branch-free.
        """
        col = self.activities(hour_index)
        for vm, a in zip(self.vms, col.tolist()):
            vm.current_activity = a
        return col

    def observe(self, hour_index: int, activities: np.ndarray) -> None:
        """Ingest one hour for the whole fleet (one vectorized update)."""
        self.fleet.observe(hour_index, activities)
