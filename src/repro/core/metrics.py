"""Prediction-accuracy metrics (paper Table III).

The positive class is "idle" (predicted idle iff IP > 50 %).  The paper
evaluates with Recall, Precision, F-measure and Specificity; Fig. 4 plots
them as they evolve over the trace, which we reproduce with cumulative
confusion counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConfusionCounts:
    """Running confusion-matrix counts with the paper's metric definitions."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def update(self, predicted_idle: bool, actually_idle: bool) -> None:
        """Account one (prediction, ground truth) pair."""
        if predicted_idle and actually_idle:
            self.tp += 1
        elif predicted_idle and not actually_idle:
            self.fp += 1
        elif not predicted_idle and actually_idle:
            self.fn += 1
        else:
            self.tn += 1

    def update_batch(self, predicted: np.ndarray, actual: np.ndarray) -> None:
        """Vectorized :meth:`update` over bool arrays of equal shape."""
        predicted = np.asarray(predicted, dtype=bool)
        actual = np.asarray(actual, dtype=bool)
        if predicted.shape != actual.shape:
            raise ValueError("shape mismatch between predictions and actuals")
        self.tp += int(np.sum(predicted & actual))
        self.fp += int(np.sum(predicted & ~actual))
        self.fn += int(np.sum(~predicted & actual))
        self.tn += int(np.sum(~predicted & ~actual))

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def recall(self) -> float:
        """TP / (TP + FN); sensitive to missed idleness."""
        d = self.tp + self.fn
        return self.tp / d if d else float("nan")

    @property
    def precision(self) -> float:
        """TP / (TP + FP); sensitive to falsely predicted idleness."""
        d = self.tp + self.fp
        return self.tp / d if d else float("nan")

    @property
    def f_measure(self) -> float:
        """Harmonic mean of recall and precision (main Fig. 4 score)."""
        r, p = self.recall, self.precision
        if np.isnan(r) or np.isnan(p) or (r + p) == 0.0:
            return float("nan")
        return 2.0 * r * p / (r + p)

    @property
    def specificity(self) -> float:
        """TN / (TN + FP); the 'precision of active periods' (LLMU score)."""
        d = self.tn + self.fp
        return self.tn / d if d else float("nan")

    def as_dict(self) -> dict[str, float]:
        return {
            "recall": self.recall,
            "precision": self.precision,
            "f_measure": self.f_measure,
            "specificity": self.specificity,
        }


@dataclass
class MetricCurves:
    """Cumulative metric curves sampled along a trace (Fig. 4 series)."""

    hours: list[int] = field(default_factory=list)
    recall: list[float] = field(default_factory=list)
    precision: list[float] = field(default_factory=list)
    f_measure: list[float] = field(default_factory=list)
    specificity: list[float] = field(default_factory=list)

    def append(self, hour: int, counts: ConfusionCounts) -> None:
        self.hours.append(hour)
        self.recall.append(counts.recall)
        self.precision.append(counts.precision)
        self.f_measure.append(counts.f_measure)
        self.specificity.append(counts.specificity)

    def final(self) -> dict[str, float]:
        """Metric values at the end of the trace."""
        if not self.hours:
            raise ValueError("no samples recorded")
        return {
            "recall": self.recall[-1],
            "precision": self.precision[-1],
            "f_measure": self.f_measure[-1],
            "specificity": self.specificity[-1],
        }


def cumulative_curves(predicted: np.ndarray, actual: np.ndarray,
                      sample_every: int = 24) -> MetricCurves:
    """Build cumulative metric curves from per-hour bool vectors.

    ``predicted`` and ``actual`` are 1-D bool arrays over hours; the
    curves are sampled every ``sample_every`` hours (daily by default),
    matching the online protocol of Fig. 4.
    """
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape or predicted.ndim != 1:
        raise ValueError("predicted/actual must be equal-length 1-D arrays")
    tp = np.cumsum(predicted & actual)
    fp = np.cumsum(predicted & ~actual)
    fn = np.cumsum(~predicted & actual)
    tn = np.cumsum(~predicted & ~actual)

    curves = MetricCurves()
    idx = np.arange(sample_every - 1, predicted.size, sample_every)
    with np.errstate(invalid="ignore", divide="ignore"):
        rec = tp / (tp + fn)
        prec = tp / (tp + fp)
        f = 2 * rec * prec / (rec + prec)
        spec = tn / (tn + fp)
    for i in idx:
        curves.hours.append(int(i + 1))
        curves.recall.append(float(rec[i]))
        curves.precision.append(float(prec[i]))
        curves.f_measure.append(float(f[i]))
        curves.specificity.append(float(spec[i]))
    return curves
