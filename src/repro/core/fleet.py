"""Vectorized idleness models for a fleet of VMs.

:class:`FleetIdlenessModel` holds the SI tables of ``n`` VMs in stacked
NumPy arrays and performs the hourly update for the whole fleet with a
handful of vectorized operations (no per-VM Python loop).  All VMs share
the wall clock, so a single calendar slot indexes one column per scale
table — gathers and scatters are plain fancy indexing on the trailing
axes, updated in place per the hpc-parallel guidance (views, no copies).

Semantics are identical to :class:`repro.core.model.IdlenessModel`; the
equivalence is enforced by property-based tests.
"""

from __future__ import annotations

import numpy as np

from .calendar import slot_of_hour
from .params import DEFAULT_PARAMS, DrowsyParams
from .weights import descend_weights, initial_weights


class FleetIdlenessModel:
    """Idleness models of ``n`` VMs, updated in lockstep.

    The public API mirrors the scalar model but takes/returns arrays of
    shape ``(n,)`` (activities, IPs, predictions).
    """

    def __init__(self, n: int, params: DrowsyParams = DEFAULT_PARAMS) -> None:
        if n <= 0:
            raise ValueError(f"fleet size must be positive, got {n}")
        self.n = n
        self.params = params
        self.sid = np.zeros((n, 24))
        self.siw = np.zeros((n, 7, 24))
        self.sim = np.zeros((n, 31, 24))
        self.siy = np.zeros((n, 365, 24))
        self.scale_mask = np.array(
            [True, params.use_weekly_scale, params.use_monthly_scale,
             params.use_yearly_scale])
        self.weights = initial_weights(self.scale_mask, batch=n)
        self._activity_sum = np.zeros(n)
        self._active_hours = np.zeros(n, dtype=np.int64)
        self.hours_observed = 0
        #: Per-VM hour counters.  These track the batched counter except
        #: when rows are updated individually through
        #: :meth:`observe_one` (the :class:`~repro.core.binding.FleetVMView`
        #: fallback path for VMs observed outside a batch).
        self.row_hours = np.zeros(n, dtype=np.int64)
        #: Monotonic state-version counter keying :meth:`raw_ip_column`'s
        #: cache; bumped by every update.
        self.version = 0
        self._ip_cache: dict = {}
        #: Per-VM blocked-on-I/O flags, mirrored from ``VM.blocked_io``
        #: by its property setter while the VM is fleet-bound.  Not model
        #: state — this is host-process-table state (suspend §IV) kept
        #: columnar so the batched suspend sweep can derive per-host
        #: blocked-I/O masks without walking ``host.vms``.
        self.blocked_io = np.zeros(n, dtype=bool)
        #: Version counter for :attr:`blocked_io` (cache key for the
        #: per-host reduction in the host accounting).
        self.blocked_version = 0

    def set_blocked_io(self, i: int, value: bool) -> None:
        """Flip one VM's blocked-I/O flag (bumps the column version)."""
        value = bool(value)
        if bool(self.blocked_io[i]) != value:
            self.blocked_io[i] = value
            self.blocked_version += 1

    # ------------------------------------------------------------------
    def si_matrix(self, hour_index: int) -> np.ndarray:
        """(n, 4) SI scores of every VM for the given absolute hour."""
        s = slot_of_hour(hour_index)
        si = np.stack([
            self.sid[:, s.hour],
            self.siw[:, s.day_of_week, s.hour],
            self.sim[:, s.day_of_month, s.hour],
            self.siy[:, s.day_of_year, s.hour],
        ], axis=1)
        si[:, ~self.scale_mask] = 0.0
        return si

    def raw_ip(self, hour_index: int) -> np.ndarray:
        """(n,) raw IPs ``w^T SI`` for the given absolute hour."""
        return np.einsum("ij,ij->i", self.weights, self.si_matrix(hour_index))

    def idleness_probability(self, hour_index: int) -> np.ndarray:
        """(n,) normalized IPs in [0, 1]."""
        return (self.raw_ip(hour_index) + 1.0) / 2.0

    def raw_ip_column(self, slot) -> np.ndarray:
        """(n,) raw IPs for one calendar slot, cached per model version.

        Consolidation controllers query every VM's IP at the same hour
        (selection distances, host means, the 7-sigma range); this
        amortizes those n scalar queries into one vectorized gather per
        (slot, state-version).  The batched product is computed with the
        same BLAS dot kernel as the scalar model's ``w @ si`` — the
        per-row values are bit-identical to
        :meth:`repro.core.model.IdlenessModel.raw_ip`, which the parity
        suite relies on.
        """
        key = (slot.hour, slot.day_of_week, slot.day_of_month,
               slot.day_of_year, self.version)
        col = self._ip_cache.get(key)
        if col is None:
            h = slot.hour
            si = np.stack([
                self.sid[:, h],
                self.siw[:, slot.day_of_week, h],
                self.sim[:, slot.day_of_month, h],
                self.siy[:, slot.day_of_year, h],
            ], axis=1)
            si[:, ~self.scale_mask] = 0.0
            col = (self.weights[:, None, :] @ si[:, :, None]).reshape(self.n)
            self._ip_cache[key] = col
        return col

    def predict_idle(self, hour_index: int) -> np.ndarray:
        """(n,) bool: predicted idle iff probability > 0.5."""
        return self.idleness_probability(hour_index) > 0.5

    @property
    def mean_active_activity(self) -> np.ndarray:
        """(n,) a-bar values with the cold-start fallback applied."""
        fallback = np.full(self.n, self.params.default_activity)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = self._activity_sum / self._active_hours
        return np.where(self._active_hours > 0, mean, fallback)

    # ------------------------------------------------------------------
    def observe(self, hour_index: int, activities: np.ndarray) -> None:
        """Ingest one hour of activity levels for the whole fleet."""
        a_h = np.asarray(activities, dtype=np.float64)
        if a_h.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {a_h.shape}")
        if np.any((a_h < 0.0) | (a_h > 1.0)):
            raise ValueError("activities must be in [0, 1]")
        p = self.params
        s = slot_of_hour(hour_index)
        idle = a_h == 0.0

        si_old = self.si_matrix(hour_index)
        a = np.where(idle, self.mean_active_activity, a_h)
        a_star = (p.sigma * a)[:, None]
        u = 1.0 / (1.0 + np.exp(p.alpha * (np.abs(si_old) - p.beta)))
        v = a_star * u
        si_new = np.clip(np.where(idle[:, None], si_old + v, si_old - v),
                         -1.0, 1.0)
        si_new[:, ~self.scale_mask] = 0.0

        # Scatter back (views into the per-scale tables, in place).
        self.sid[:, s.hour] = si_new[:, 0]
        self.siw[:, s.day_of_week, s.hour] = si_new[:, 1]
        self.sim[:, s.day_of_month, s.hour] = si_new[:, 2]
        self.siy[:, s.day_of_year, s.hour] = si_new[:, 3]

        if p.learn_weights:
            if p.weight_update_on_error_only:
                predicted_idle = np.einsum("ij,ij->i", self.weights, si_old) > 0.0
                update = predicted_idle != idle
            else:
                update = np.ones(self.n, dtype=bool)
            if update.any():
                new_weights = descend_weights(
                    self.weights, si_old, si_new,
                    steps=p.weight_descent_steps,
                    learning_rate=p.weight_learning_rate,
                    mask=self.scale_mask)
                self.weights = np.where(update[:, None], new_weights,
                                        self.weights)

        np.add.at(self._activity_sum, np.nonzero(~idle)[0], a_h[~idle])
        self._active_hours += ~idle
        self.hours_observed += 1
        self.row_hours += 1
        self.version += 1
        self._ip_cache.clear()

    # ------------------------------------------------------------------
    def observe_one(self, i: int, hour_index: int, activity: float):
        """Scalar-path hourly update of row ``i`` only.

        Bit-identical to :meth:`repro.core.model.IdlenessModel.observe`
        on a standalone model holding this row's state — the operations
        below are the scalar model's, applied to row views.  Used by
        :class:`~repro.core.binding.FleetVMView` when a bound VM must be
        observed outside the fleet batch (e.g. after new VMs joined the
        data center and the simulator fell back to the per-VM loop).
        """
        from .model import IdlenessObservation

        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        p = self.params
        s = slot_of_hour(hour_index)
        idle = activity == 0.0
        h = s.hour
        mask = self.scale_mask

        si_old = np.array([
            self.sid[i, h],
            self.siw[i, s.day_of_week, h],
            self.sim[i, s.day_of_month, h],
            self.siy[i, s.day_of_year, h],
        ])
        si_old = np.where(mask, si_old, 0.0)
        w = self.weights[i]
        raw_before = float(w @ si_old)

        if idle:
            if self._active_hours[i] == 0:
                a = p.default_activity
            else:
                a = self._activity_sum[i] / self._active_hours[i]
        else:
            a = activity
        a_star = p.sigma * a
        u = 1.0 / (1.0 + np.exp(p.alpha * (np.abs(si_old) - p.beta)))
        v = a_star * u
        si_new = np.clip(si_old + v if idle else si_old - v, -1.0, 1.0)
        si_new = np.where(mask, si_new, 0.0)

        self.sid[i, h] = si_new[0]
        self.siw[i, s.day_of_week, h] = si_new[1]
        self.sim[i, s.day_of_month, h] = si_new[2]
        self.siy[i, s.day_of_year, h] = si_new[3]

        predicted_idle = raw_before > 0.0
        mispredicted = predicted_idle != idle
        if p.learn_weights and (mispredicted or not p.weight_update_on_error_only):
            self.weights[i] = descend_weights(
                w.copy(), si_old, si_new,
                steps=p.weight_descent_steps,
                learning_rate=p.weight_learning_rate,
                mask=mask)

        if not idle:
            self._activity_sum[i] += activity
            self._active_hours[i] += 1
        self.row_hours[i] += 1
        self.version += 1
        self._ip_cache.clear()

        return IdlenessObservation(
            hour_index=hour_index, activity=activity, idle=idle,
            raw_ip_before=raw_before,
            raw_ip_after=float(self.weights[i] @ si_new))

    def predict_and_observe(self, hour_index: int, activities: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(predicted_idle, actually_idle) arrays, online protocol."""
        predicted = self.predict_idle(hour_index)
        a_h = np.asarray(activities, dtype=np.float64)
        self.observe(hour_index, a_h)
        return predicted, a_h == 0.0

    # ------------------------------------------------------------------
    def run_trace_matrix(self, activities: np.ndarray, start_hour: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Feed an ``(n, T)`` activity matrix hour by hour.

        Returns ``(predictions, actuals)`` bool arrays of shape (n, T)
        following the online protocol (predict before observe).  This is
        the hot path for Fig. 4 and the fleet benchmarks: calendar
        coordinates are precomputed for the whole horizon and the
        per-hour update is inlined so each SI gather happens once per
        hour instead of once per query (profiling-driven, see the
        hpc-parallel notes in DESIGN.md §6).
        """
        activities = np.asarray(activities, dtype=np.float64)
        if activities.ndim != 2 or activities.shape[0] != self.n:
            raise ValueError(f"expected (n={self.n}, T) matrix, got {activities.shape}")
        if np.any((activities < 0.0) | (activities > 1.0)):
            raise ValueError("activities must be in [0, 1]")
        T = activities.shape[1]
        preds = np.empty((self.n, T), dtype=bool)
        actual = activities == 0.0

        from .calendar import slots_of_hours

        hh, dww, dmm, mm, doyy = slots_of_hours(start_hour + np.arange(T))
        p = self.params
        mask = self.scale_mask
        fallback = p.default_activity
        si = np.empty((self.n, 4))

        for t in range(T):
            h = int(hh[t])
            dw = int(dww[t])
            dm = int(dmm[t])
            doy = int(doyy[t])
            si[:, 0] = self.sid[:, h]
            si[:, 1] = self.siw[:, dw, h]
            si[:, 2] = self.sim[:, dm, h]
            si[:, 3] = self.siy[:, doy, h]
            si[:, ~mask] = 0.0

            raw = np.einsum("ij,ij->i", self.weights, si)
            preds[:, t] = raw > 0.0

            a_h = activities[:, t]
            idle = actual[:, t]
            with np.errstate(invalid="ignore", divide="ignore"):
                mean_active = self._activity_sum / self._active_hours
            a = np.where(idle,
                         np.where(self._active_hours > 0, mean_active, fallback),
                         a_h)
            v = (p.sigma * a)[:, None] / (1.0 + np.exp(p.alpha * (np.abs(si) - p.beta)))
            si_new = np.clip(np.where(idle[:, None], si + v, si - v), -1.0, 1.0)
            si_new[:, ~mask] = 0.0

            self.sid[:, h] = si_new[:, 0]
            self.siw[:, dw, h] = si_new[:, 1]
            self.sim[:, dm, h] = si_new[:, 2]
            self.siy[:, doy, h] = si_new[:, 3]

            if p.learn_weights:
                update = (preds[:, t] != idle) if p.weight_update_on_error_only \
                    else np.ones(self.n, dtype=bool)
                if update.any():
                    new_weights = descend_weights(
                        self.weights, si, si_new,
                        steps=p.weight_descent_steps,
                        learning_rate=p.weight_learning_rate,
                        mask=mask)
                    self.weights = np.where(update[:, None], new_weights,
                                            self.weights)

            self._activity_sum += np.where(idle, 0.0, a_h)
            self._active_hours += ~idle
            self.hours_observed += 1
        self.row_hours += T
        self.version += 1
        self._ip_cache.clear()
        return preds, actual
