"""Simulation calendar.

The idleness model indexes its scores by calendar coordinates: hour of
day ``h``, day of week ``dw``, day of month ``dm``, month ``m`` and (for
the yearly scale) day of year.  The paper uses a plain 365-day year; we
fix the epoch (hour 0) at 00:00 on Monday, January 1st.

Everything here is pure and vectorizable: scalar ints in the scalar API,
NumPy arrays in the ``*_array`` API used by the fleet model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7
DAYS_PER_YEAR = 365
HOURS_PER_YEAR = DAYS_PER_YEAR * HOURS_PER_DAY
MONTH_LENGTHS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
#: First day-of-year of each month (0-based).
MONTH_STARTS = tuple(int(x) for x in np.concatenate(([0], np.cumsum(MONTH_LENGTHS)[:-1])))

_MONTH_OF_DOY = np.repeat(np.arange(12), MONTH_LENGTHS)
_DOM_OF_DOY = np.concatenate([np.arange(n) for n in MONTH_LENGTHS])

assert _MONTH_OF_DOY.shape == (DAYS_PER_YEAR,)


@dataclass(frozen=True)
class CalendarSlot:
    """Calendar coordinates of one hour.

    Attributes mirror the paper's notation: ``hour`` is h in [0, 24),
    ``day_of_week`` is dw in [0, 7) with 0 = Monday, ``day_of_month`` is
    dm in [0, 31), ``month`` is m in [0, 12), and ``day_of_year`` in
    [0, 365) indexes the SIy table.
    """

    hour: int
    day_of_week: int
    day_of_month: int
    month: int
    day_of_year: int


@lru_cache(maxsize=16384)
def slot_of_hour(hour_index: int) -> CalendarSlot:
    """Map an absolute hour index (hours since epoch) to calendar coords.

    Memoized: every VM model query and update at hour ``t`` shares one
    slot decode (the hot loops ask for the same handful of hours
    millions of times; the slot is an immutable value object).
    """
    if hour_index < 0:
        raise ValueError(f"hour_index must be >= 0, got {hour_index}")
    h = hour_index % HOURS_PER_DAY
    day = hour_index // HOURS_PER_DAY
    dw = day % DAYS_PER_WEEK
    doy = day % DAYS_PER_YEAR
    m = int(_MONTH_OF_DOY[doy])
    dm = int(_DOM_OF_DOY[doy])
    return CalendarSlot(hour=int(h), day_of_week=int(dw), day_of_month=dm,
                        month=m, day_of_year=int(doy))


def slots_of_hours(hour_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`slot_of_hour`.

    Returns ``(h, dw, dm, m, doy)`` arrays of the same shape as the input.
    """
    hour_indices = np.asarray(hour_indices)
    if np.any(hour_indices < 0):
        raise ValueError("hour indices must be >= 0")
    h = hour_indices % HOURS_PER_DAY
    day = hour_indices // HOURS_PER_DAY
    dw = day % DAYS_PER_WEEK
    doy = day % DAYS_PER_YEAR
    return h, dw, _DOM_OF_DOY[doy], _MONTH_OF_DOY[doy], doy


def hour_of_time(time_s: float) -> int:
    """Absolute hour index containing simulation time ``time_s`` (seconds)."""
    if time_s < 0:
        raise ValueError(f"time must be >= 0, got {time_s}")
    return int(time_s // 3600.0)


def hour_index(day: int, hour: int) -> int:
    """Absolute hour index for ``hour`` o'clock on day ``day`` since epoch."""
    return day * HOURS_PER_DAY + hour


def time_of_hour(hour_idx: int) -> float:
    """Simulation time (seconds) at the start of absolute hour ``hour_idx``."""
    return hour_idx * 3600.0
