"""Per-VM idleness model (paper section III).

The idleness model (IM) summarizes a VM's past idleness with synthesized
idleness (SI) scores at four calendar scales, plus four learned weights.
Every hour :meth:`IdlenessModel.observe` ingests the VM's activity level
and updates scores and weights; :meth:`IdlenessModel.idleness_probability`
answers "how likely is this VM to be idle at calendar slot X?".

Scores live in ``[-1, 1]``: positive means "historically idle at this
slot", negative "historically active", zero "undetermined".  See
DESIGN.md for the raw-IP vs probability distinction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calendar import CalendarSlot, slot_of_hour
from .params import DEFAULT_PARAMS, DrowsyParams
from .weights import N_SCALES, descend_weights, initial_weights

#: Index of each scale in SI/weight vectors, matching the paper's order
#: (wd, ww, wm, wy).
SCALE_DAY, SCALE_WEEK, SCALE_MONTH, SCALE_YEAR = range(N_SCALES)


@dataclass(frozen=True)
class IdlenessObservation:
    """Result of one hourly model update (useful for tracing/learning)."""

    hour_index: int
    activity: float
    idle: bool
    raw_ip_before: float
    raw_ip_after: float


class IdlenessModel:
    """Idleness model of a single VM.

    Parameters
    ----------
    params:
        Tunables; defaults are the paper's values.

    Notes
    -----
    The model is deliberately cheap: one hourly update touches exactly one
    cell per scale table plus the 4-vector of weights, so the per-VM,
    per-hour cost is O(1) — this is what makes Drowsy-DC's consolidation
    O(n) in the number of VMs (paper section VII).
    """

    def __init__(self, params: DrowsyParams = DEFAULT_PARAMS) -> None:
        self.params = params
        self.sid = np.zeros(24)
        self.siw = np.zeros((7, 24))
        self.sim = np.zeros((31, 24))
        self.siy = np.zeros((365, 24))
        self.scale_mask = np.array(
            [True, params.use_weekly_scale, params.use_monthly_scale,
             params.use_yearly_scale])
        self.weights = initial_weights(self.scale_mask)
        self._activity_sum = 0.0
        self._active_hours = 0
        self.hours_observed = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def si_vector(self, slot: CalendarSlot) -> np.ndarray:
        """SI scores (SId, SIw, SIm, SIy) for one calendar slot."""
        h = slot.hour
        si = np.array([
            self.sid[h],
            self.siw[slot.day_of_week, h],
            self.sim[slot.day_of_month, h],
            self.siy[slot.day_of_year, h],
        ])
        return np.where(self.scale_mask, si, 0.0)

    def raw_ip(self, slot: CalendarSlot) -> float:
        """Raw idleness probability ``w^T SI`` (paper eq. (1)).

        Lives on the SI scale (|raw| <= 1); used for placement distances
        and the 7-sigma opportunistic threshold.
        """
        return float(self.weights @ self.si_vector(slot))

    def idleness_probability(self, slot: CalendarSlot) -> float:
        """Raw IP mapped affinely to [0, 1] (DESIGN.md interpretation).

        0.5 means undetermined; above 0.5 the VM is predicted idle.
        """
        return (self.raw_ip(slot) + 1.0) / 2.0

    def predict_idle(self, slot: CalendarSlot) -> bool:
        """Paper section VI-A.5: positive prediction iff IP > 50 %."""
        return self.idleness_probability(slot) > 0.5

    @property
    def mean_active_activity(self) -> float:
        """Mean activity level over past *active* hours (a-bar, eq. (2))."""
        if self._active_hours == 0:
            return self.params.default_activity
        return self._activity_sum / self._active_hours

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def observe(self, hour_index: int, activity: float) -> IdlenessObservation:
        """Ingest the activity level of absolute hour ``hour_index``.

        ``activity`` is the fraction of scheduler quanta the VM consumed
        during that hour, in [0, 1], *after* noise filtering (paper
        section III-C; see :mod:`repro.traces.noise`).
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        p = self.params
        slot = slot_of_hour(hour_index)
        idle = activity == 0.0

        si_old = self.si_vector(slot)
        raw_before = float(self.weights @ si_old)

        # Paper eq. (2): use the hour's activity when active, the mean
        # past active level when idle.
        a = activity if not idle else self.mean_active_activity
        a_star = p.sigma * a  # eq. (3)
        # Eq. (4)-(5): one update value per scale, damped near the bounds.
        u = 1.0 / (1.0 + np.exp(p.alpha * (np.abs(si_old) - p.beta)))
        v = a_star * u
        si_new = np.clip(si_old + v if idle else si_old - v, -1.0, 1.0)
        si_new = np.where(self.scale_mask, si_new, 0.0)

        h = slot.hour
        self.sid[h] = si_new[SCALE_DAY]
        self.siw[slot.day_of_week, h] = si_new[SCALE_WEEK]
        self.sim[slot.day_of_month, h] = si_new[SCALE_MONTH]
        self.siy[slot.day_of_year, h] = si_new[SCALE_YEAR]

        predicted_idle = raw_before > 0.0
        mispredicted = predicted_idle != idle
        if p.learn_weights and (mispredicted or not p.weight_update_on_error_only):
            self.weights = descend_weights(
                self.weights, si_old, si_new,
                steps=p.weight_descent_steps,
                learning_rate=p.weight_learning_rate,
                mask=self.scale_mask)

        if not idle:
            self._activity_sum += activity
            self._active_hours += 1
        self.hours_observed += 1

        return IdlenessObservation(
            hour_index=hour_index, activity=activity, idle=idle,
            raw_ip_before=raw_before,
            raw_ip_after=float(self.weights @ si_new))

    # ------------------------------------------------------------------
    def predict_and_observe(self, hour_index: int, activity: float) -> tuple[bool, bool]:
        """Convenience for evaluation: prediction *then* ground truth.

        Returns ``(predicted_idle, actually_idle)`` for the hour, making
        the prediction with the model state *before* ingesting the hour
        (exactly the online protocol of Fig. 4).
        """
        slot = slot_of_hour(hour_index)
        predicted = self.predict_idle(slot)
        obs = self.observe(hour_index, activity)
        return predicted, obs.idle
