"""Adaptive alpha/beta tuning (paper §III-C: explicitly left as future work).

"We did not explore the possibility of dynamically setting α nor β
based on VM activity level variations, which could be a way for
improvement."  This module explores it.

Intuition: α controls how fast the update value decays once |SI| passes
β, and β is the "starting to be extreme" threshold.  For a VM with
*stable* activity levels, scores can be allowed to march further toward
the bounds before damping (higher β, gentler α): the behaviour is
trustworthy.  For a VM whose activity level varies wildly, scores
should be kept closer to undetermined (lower β, stronger α) so the
model can flip quickly when the behaviour shifts.

:class:`AdaptiveIdlenessModel` tracks an exponential moving estimate of
the activity level's coefficient of variation and re-derives effective
(α, β) each hour within configured bands.  The ablation bench compares
it to the fixed-(0.7, 0.5) model on regime-switching workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import IdlenessModel, IdlenessObservation
from .params import DEFAULT_PARAMS, DrowsyParams


@dataclass(frozen=True)
class AdaptiveBands:
    """Allowed ranges for the dynamically derived coefficients."""

    alpha_min: float = 0.35
    alpha_max: float = 1.4
    beta_min: float = 0.25
    beta_max: float = 0.75
    #: EMA smoothing for the activity mean/variance estimates.
    ema: float = 0.05
    #: Coefficient of variation mapped to the band edges: cv >= cv_high
    #: gives the most conservative (alpha_max, beta_min) setting.
    cv_high: float = 1.0

    def derive(self, cv: float) -> tuple[float, float]:
        """Map a coefficient of variation to effective (alpha, beta)."""
        x = min(max(cv / self.cv_high, 0.0), 1.0)
        alpha = self.alpha_min + x * (self.alpha_max - self.alpha_min)
        beta = self.beta_max - x * (self.beta_max - self.beta_min)
        return alpha, beta


class AdaptiveIdlenessModel(IdlenessModel):
    """Idleness model with activity-variation-driven (α, β).

    Drop-in replacement for :class:`~repro.core.model.IdlenessModel`;
    only the damping coefficient of the hourly update changes.
    """

    def __init__(self, params: DrowsyParams = DEFAULT_PARAMS,
                 bands: AdaptiveBands = AdaptiveBands()) -> None:
        super().__init__(params)
        self.bands = bands
        self._ema_mean = 0.0
        self._ema_var = 0.0
        self._samples = 0
        self.effective_alpha = params.alpha
        self.effective_beta = params.beta

    @property
    def coefficient_of_variation(self) -> float:
        """CV of the active-hour activity level (0 until two samples)."""
        if self._samples < 2 or self._ema_mean <= 1e-12:
            return 0.0
        return math.sqrt(max(self._ema_var, 0.0)) / self._ema_mean

    def observe(self, hour_index: int, activity: float) -> IdlenessObservation:
        if activity > 0.0:
            # Update EMA estimates of the active level's mean/variance.
            self._samples += 1
            k = self.bands.ema
            delta = activity - self._ema_mean
            self._ema_mean += k * delta
            self._ema_var = (1 - k) * (self._ema_var + k * delta * delta)
            self.effective_alpha, self.effective_beta = self.bands.derive(
                self.coefficient_of_variation)
        # Run the standard update under the effective coefficients.
        self.params = self.params.replace(alpha=self.effective_alpha,
                                          beta=self.effective_beta)
        return super().observe(hour_index, activity)
