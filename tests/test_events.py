"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.events import EventSimulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule_at(5.0, order.append, "b")
        sim.schedule_at(1.0, order.append, "a")
        sim.schedule_at(9.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_timestamp(self):
        sim = EventSimulator()
        order = []
        for tag in "abc":
            sim.schedule_at(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_schedule_in_relative(self):
        sim = EventSimulator(start_time=10.0)
        seen = []
        sim.schedule_in(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [15.0]

    def test_cannot_schedule_in_past(self):
        sim = EventSimulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        order = []

        def first():
            order.append("first")
            sim.schedule_in(1.0, lambda: order.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = EventSimulator()
        fired = []
        ev = sim.schedule_at(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = EventSimulator()
        ev = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.pending == 2
        ev.cancel()
        assert sim.pending == 1

    def test_peek_skips_cancelled(self):
        sim = EventSimulator()
        ev = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 2.0

    def test_double_cancel_counts_once(self):
        sim = EventSimulator()
        ev = sim.schedule_at(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending == 0

    def test_cancel_after_execution_keeps_pending_consistent(self):
        """Modules keep Event handles around; cancelling a handle whose
        event already fired must not corrupt the live counter."""
        sim = EventSimulator()
        ev = sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        ev.cancel()
        assert sim.pending == 0
        sim.schedule_at(2.0, lambda: None)
        assert sim.pending == 1


class TestScheduleBatch:
    def test_matches_n_individual_pushes(self):
        """A batch is behaviourally identical to N schedule_at calls:
        same processing order (incl. FIFO ties) and same clock stops."""
        times = [5.0, 1.0, 1.0, 3.0, 1.0, 9.0, 3.0]

        ref_sim, ref_order = EventSimulator(), []
        for i, t in enumerate(times):
            ref_sim.schedule_at(t, ref_order.append, (t, i))
        ref_sim.run()

        sim, order = EventSimulator(), []
        sim.schedule_batch((t, order.append, ((t, i),))
                           for i, t in enumerate(times))
        sim.run()
        assert order == ref_order
        assert sim.events_processed == ref_sim.events_processed

    def test_interleaves_with_scheduled_events_by_seq(self):
        """Batch entries get sequence numbers in entry order, after any
        previously scheduled events — ties at the same timestamp break
        exactly like individual pushes would."""
        sim, order = EventSimulator(), []
        sim.schedule_at(2.0, order.append, "pre")
        sim.schedule_batch([(2.0, order.append, ("b0",)),
                            (2.0, order.append, ("b1",))])
        sim.schedule_at(2.0, order.append, "post")
        sim.run()
        assert order == ["pre", "b0", "b1", "post"]

    def test_cancellation_and_live_counter_lockstep(self):
        sim = EventSimulator()
        fired = []
        events = sim.schedule_batch([(1.0, fired.append, (0,)),
                                     (2.0, fired.append, (1,)),
                                     (3.0, fired.append, (2,))])
        assert sim.pending == 3
        events[1].cancel()
        assert sim.pending == 2
        events[1].cancel()  # double-cancel counts once
        assert sim.pending == 2
        sim.run()
        assert fired == [0, 2]
        assert sim.pending == 0
        events[0].cancel()  # cancel after execution: no corruption
        assert sim.pending == 0

    def test_rejects_past_times(self):
        sim = EventSimulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule_batch([(11.0, lambda: None, ()),
                                (5.0, lambda: None, ())])

    def test_empty_batch(self):
        sim = EventSimulator()
        assert sim.schedule_batch([]) == []
        assert sim.pending == 0

    def test_unsorted_batch_still_runs_in_time_order(self):
        sim, order = EventSimulator(), []
        sim.schedule_batch([(9.0, order.append, (9,)),
                            (1.0, order.append, (1,)),
                            (5.0, order.append, (5,))])
        sim.run()
        assert order == [1, 5, 9]

    def test_count_coalesced(self):
        sim = EventSimulator()
        sim.schedule_at(1.0, lambda: sim.count_coalesced(4))
        sim.run()
        assert sim.events_processed == 5
        with pytest.raises(ValueError):
            sim.count_coalesced(-1)


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = EventSimulator()
        fired = []
        sim.schedule_at(1.0, fired.append, 1)
        sim.schedule_at(5.0, fired.append, 5)
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_inclusive_boundary(self):
        sim = EventSimulator()
        fired = []
        sim.schedule_at(3.0, fired.append, 3)
        sim.run_until(3.0)
        assert fired == [3]

    def test_advances_clock_when_drained(self):
        sim = EventSimulator()
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_step_returns_false_when_empty(self):
        assert EventSimulator().step() is False


class TestPropertyOrdering:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=60))
    def test_never_processes_out_of_order(self, times):
        sim = EventSimulator()
        processed = []
        for t in times:
            sim.schedule_at(t, lambda t=t: processed.append(sim.now))
        sim.run()
        assert processed == sorted(processed)
        assert sim.events_processed == len(times)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.booleans()), max_size=40))
    def test_cancellation_is_exact(self, spec):
        sim = EventSimulator()
        fired = []
        expected = []
        for i, (t, keep) in enumerate(spec):
            ev = sim.schedule_at(t, fired.append, i)
            if keep:
                expected.append((t, i))
            else:
                ev.cancel()
        sim.run()
        assert sorted(fired) == sorted(i for _, i in expected)
