"""Columnar host accounting parity (DESIGN.md §8).

The accounting layer must be *bit-identical* to the scalar per-host
properties (`Host.cpu_utilization`, `used_resources`, `all_vms_idle`,
`mean_raw_ip`, `ip_range`) — the scalar loop stays in the code as the
parity oracle.  Covers direct property comparisons under arbitrary
interleavings of migrations, VM arrivals and hour ticks (hypothesis),
plus end-to-end simulator parity with the accounting disabled.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.accounting import HostAccounting, columnar_host_view
from repro.cluster.datacenter import DataCenter
from repro.cluster.host import Host
from repro.cluster.resources import HostCapacity, ResourceSpec
from repro.cluster.vm import VM
from repro.consolidation.drowsy import DrowsyController
from repro.consolidation.managers import DistributedNeat
from repro.consolidation.neat import NeatController
from repro.consolidation.oasis import OasisController
from repro.core.binding import FleetBinding
from repro.core.params import DEFAULT_PARAMS
from repro.experiments.common import build_fleet
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.synthetic import daily_backup_trace, llmu_trace, weekly_pattern_trace

BIG_HOST = HostCapacity(cpus=64, memory_mb=64 * 1024, cpu_overcommit=1.0)
SMALL_VM = ResourceSpec(cpus=2, memory_mb=4 * 1024)
TINY_VM = ResourceSpec(cpus=1, memory_mb=2 * 1024)

CONTROLLERS = {
    "drowsy": lambda dc: DrowsyController(dc),
    "neat": lambda dc: NeatController(dc),
    "oasis": lambda dc: OasisController(dc),
    "neat-distributed": lambda dc: DistributedNeat(dc),
}


def _assert_host_parity(dc, acc, hour):
    """Columnar vectors equal the scalar per-host oracle, bit for bit."""
    acc.verify()
    util = acc.cpu_utilization(hour)
    demand = acc.cpu_demand(hour)
    used_cpus = acc.used_cpus()
    used_mem = acc.used_memory_mb()
    counts = acc.vm_counts()
    all_idle = acc.all_idle(hour)
    mean_ip = acc.mean_raw_ip(hour)
    ip_range = acc.ip_range(hour)
    for k, host in enumerate(dc.hosts):
        assert acc.pos(host) == k
        used = host.used_resources
        assert int(used_cpus[k]) == used.cpus
        assert int(used_mem[k]) == used.memory_mb
        assert int(counts[k]) == len(host.vms)
        assert float(util[k]) == host.cpu_utilization
        assert float(demand[k]) == sum(
            vm.current_activity * vm.resources.cpus for vm in host.vms)
        assert bool(all_idle[k]) == host.all_vms_idle
        assert float(mean_ip[k]) == host.mean_raw_ip(hour)
        assert float(ip_range[k]) == host.ip_range(hour)


class TestColumnarParityProperties:
    """Hypothesis: arbitrary interleavings of migrations, arrivals,
    removals and hour ticks keep the view equal to the scalar oracle."""

    ops = st.lists(
        st.tuples(
            st.sampled_from(["tick", "migrate", "arrive", "remove", "tick"]),
            st.integers(0, 9), st.integers(0, 2)),
        min_size=1, max_size=30)

    def _vm(self, i):
        flavor = SMALL_VM if i % 2 == 0 else TINY_VM
        if i % 3 == 0:
            trace = daily_backup_trace(days=3)
        elif i % 3 == 1:
            trace = llmu_trace(hours=72, seed=i)
        else:
            trace = weekly_pattern_trace(
                f"w{i}", {d: (9, 10, 11) for d in range(7)}, weeks=1)
        return VM(f"v{i}", trace.with_name(f"v{i}"), flavor,
                  params=DEFAULT_PARAMS)

    @settings(max_examples=30, deadline=None)
    @given(ops)
    def test_view_matches_scalar_oracle(self, operations):
        params = DEFAULT_PARAMS
        hosts = [Host(f"h{i}", BIG_HOST, params) for i in range(3)]
        dc = DataCenter(hosts, params)
        vms = [self._vm(i) for i in range(10)]
        placed = list(vms[:6])
        for i, vm in enumerate(placed):
            dc.place(vm, hosts[i % 3])
        spare = list(vms[6:])
        binding = FleetBinding.try_bind(dc, params)
        assert binding is not None
        hour = 0
        loaded = False

        for clock, (op, vm_i, host_i) in enumerate(operations, start=1):
            if op == "tick":
                binding = FleetBinding.try_bind(dc, params)
                col = binding.load_hour(hour)
                binding.observe(hour, col)
                hour += 1
                loaded = True
            elif op == "migrate" and placed:
                vm = placed[vm_i % len(placed)]
                dest = hosts[host_i]
                if dc.host_of(vm) is not dest and dest.can_host(vm):
                    dc.migrate(vm, dest, now=float(clock))
            elif op == "arrive" and spare:
                vm = spare.pop()
                if hosts[host_i].can_host(vm):
                    dc.place(vm, hosts[host_i])
                    placed.append(vm)
                else:
                    spare.append(vm)
            elif op == "remove" and placed:
                vm = placed.pop(vm_i % len(placed))
                dc.remove(vm, now=float(clock))
                spare.append(vm)

            acc = columnar_host_view(dc)
            if acc is None:
                # An arrival outside the binding marks the accounting
                # stale.  The simulators recover through the controller
                # check_invariants resync (same-fleet membership) or a
                # rebind at the next tick (grown fleet) — mirror that:
                dc.check_invariants()
                if binding.covers(dc.vms):
                    acc = columnar_host_view(dc)
                    assert acc is not None
                else:
                    continue
            if loaded and binding.covers(dc.vms):
                _assert_host_parity(dc, acc, max(hour - 1, 0))

        # Final resync path: the walk must agree with membership too.
        dc.check_invariants()
        acc = columnar_host_view(dc)
        if acc is not None:
            acc.verify()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 12))
    def test_deep_host_exact_sums(self, n_vms):
        """Hosts beyond numpy's pairwise-summation block size (8) still
        reproduce Python's sequential sums exactly."""
        params = DEFAULT_PARAMS
        host = Host("big", BIG_HOST, params)
        dc = DataCenter([host], params)
        vms = [VM(f"v{i}", llmu_trace(hours=48, seed=i), TINY_VM,
                  params=params) for i in range(n_vms)]
        for vm in vms:
            dc.place(vm, host)
        binding = FleetBinding.try_bind(dc, params)
        for t in range(5):
            col = binding.load_hour(t)
            binding.observe(t, col)
        acc = columnar_host_view(dc)
        _assert_host_parity(dc, acc, 4)


class TestSimulatorParityWithAccounting:
    """Accounting on vs off changes nothing observable, only speed."""

    @staticmethod
    def _hourly(controller_name, use_accounting):
        dc = build_fleet(n_hosts=8, n_vms=24, llmi_fraction=0.5, hours=72)
        sim = HourlySimulator(
            dc, CONTROLLERS[controller_name](dc),
            config=HourlyConfig(use_host_accounting=use_accounting))
        return sim.run(72)

    @pytest.mark.parametrize("controller", sorted(CONTROLLERS))
    def test_hourly_accounting_parity(self, controller):
        off = self._hourly(controller, False)
        on = self._hourly(controller, True)
        assert on.energy_kwh_by_host == off.energy_kwh_by_host
        assert on.suspend_cycles_by_host == off.suspend_cycles_by_host
        assert on.suspended_fraction_by_host == off.suspended_fraction_by_host
        assert on.migrations == off.migrations
        assert on.vm_migrations == off.vm_migrations
        assert on.overload_host_hours == off.overload_host_hours
        assert on.active_host_hours == off.active_host_hours

    def test_event_accounting_parity(self):
        def run(use_accounting):
            dc = build_fleet(n_hosts=4, n_vms=12, llmi_fraction=0.5,
                             hours=48)
            sim = EventDrivenSimulation(
                dc, DrowsyController(dc),
                config=EventConfig(use_host_accounting=use_accounting))
            return sim.run(24)

        off, on = run(False), run(True)
        assert on.energy_kwh_by_host == off.energy_kwh_by_host
        assert on.suspend_cycles_by_host == off.suspend_cycles_by_host
        assert on.resume_cycles_by_host == off.resume_cycles_by_host
        assert on.request_summary == off.request_summary
        assert on.events_processed == off.events_processed


class TestHostAccountingUnit:
    def _bound(self, n_hosts=2, n_vms=6):
        dc = build_fleet(n_hosts=n_hosts, n_vms=n_vms, llmi_fraction=0.5,
                         hours=48)
        binding = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        binding.load_hour(0)
        return dc, binding

    def test_incidence_matrix_shape_and_content(self):
        dc, binding = self._bound()
        acc = dc._accounting
        P = acc.incidence_matrix()
        assert P.shape == (len(dc.hosts), binding.fleet.n)
        np.testing.assert_array_equal(P.sum(axis=0), np.ones(binding.fleet.n))
        for k, host in enumerate(dc.hosts):
            assert P[k].sum() == len(host.vms)
            for vm in host.vms:
                assert P[k, binding.index[vm.name]] == 1.0

    def test_incidence_tracks_migration_incrementally(self):
        dc, binding = self._bound()
        acc = dc._accounting
        epoch = acc.epoch
        vm = dc.hosts[0].vms[0]
        dc.migrate(vm, dc.hosts[1], now=1.0)
        assert acc.epoch > epoch
        P = acc.incidence_matrix()
        assert P[1, binding.index[vm.name]] == 1.0
        assert P[0, binding.index[vm.name]] == 0.0
        acc.verify()

    def test_unknown_vm_marks_stale(self):
        dc, _ = self._bound()
        acc = dc._accounting
        newcomer = VM("newcomer", daily_backup_trace(days=2), TINY_VM)
        dc.place(newcomer, dc.hosts[0])
        assert not acc.valid
        assert columnar_host_view(dc) is None

    def test_empty_host_semantics(self):
        params = DEFAULT_PARAMS
        hosts = [Host("a", BIG_HOST, params), Host("b", BIG_HOST, params)]
        dc = DataCenter(hosts, params)
        vm = VM("only", daily_backup_trace(days=2), SMALL_VM, params=params)
        dc.place(vm, hosts[0])
        binding = FleetBinding.try_bind(dc, params)
        binding.load_hour(0)
        acc = dc._accounting
        # Host b is empty: utilization 0, mean IP 0, all-idle True
        # (all() over the empty list), exactly like the scalar oracle.
        assert float(acc.cpu_utilization(0)[1]) == hosts[1].cpu_utilization == 0.0
        assert float(acc.mean_raw_ip(0)[1]) == hosts[1].mean_raw_ip(0) == 0.0
        assert bool(acc.all_idle(0)[1]) is hosts[1].all_vms_idle is True
        assert not acc.sleepable(0)[1]
        assert float(acc.ip_range(0)[0]) == hosts[0].ip_range(0) == 0.0

    def test_accounting_disabled_detaches(self):
        dc, _ = self._bound()
        assert columnar_host_view(dc) is not None
        FleetBinding.try_bind(dc, DEFAULT_PARAMS, accounting=False)
        assert columnar_host_view(dc) is None

    def test_position_and_pos(self):
        dc, _ = self._bound()
        acc = dc._accounting
        for k, host in enumerate(dc.hosts):
            assert acc.pos(host) == acc.position(host.name) == k
        assert acc.position("nope") is None

    def test_verify_raises_on_direct_wiring(self):
        dc, _ = self._bound()
        acc = dc._accounting
        vm = dc.hosts[0].vms.pop()  # behind the data center's back
        dc.hosts[1].vms.append(vm)
        with pytest.raises(AssertionError):
            acc.verify()
        # check_invariants reconciles the rows, like the placement index.
        dc.check_invariants()
        acc.verify()

    def test_hourly_simulator_attaches_accounting(self):
        dc = build_fleet(n_hosts=4, n_vms=12, llmi_fraction=0.5, hours=24)
        HourlySimulator(dc, DrowsyController(dc))
        assert isinstance(dc._accounting, HostAccounting)
        assert columnar_host_view(dc) is dc._accounting
