"""Tests for resources, power model, host state machine, datacenter."""

import pytest

from repro.cluster import (
    DataCenter,
    Host,
    HostCapacity,
    HostStateError,
    MigrationModel,
    PlacementError,
    PowerModel,
    PowerState,
    ResourceSpec,
    TESTBED_HOST,
    TESTBED_VM,
    VM,
)
from repro.cluster.power import EnergyMeter
from repro.traces.synthetic import always_idle_trace, daily_backup_trace


def make_vm(name="vm", hours=48, **kw):
    return VM(name, always_idle_trace(hours), TESTBED_VM, **kw)


class TestResources:
    def test_addition(self):
        a = ResourceSpec(2, 1024) + ResourceSpec(1, 512)
        assert a == ResourceSpec(3, 1536)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceSpec(-1, 10)

    def test_capacity_fits(self):
        cap = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
        assert cap.fits(ResourceSpec(2, 6144), ResourceSpec(2, 6144))
        assert not cap.fits(ResourceSpec(2, 6144), ResourceSpec(2, 12288))

    def test_overcommit_only_cpu(self):
        cap = HostCapacity(cpus=4, memory_mb=8192, cpu_overcommit=2.0)
        assert cap.schedulable_cpus == 8.0
        with pytest.raises(ValueError):
            HostCapacity(cpus=4, memory_mb=8192, cpu_overcommit=0.5)

    def test_testbed_hosts_two_vms(self):
        """Section VI-A.2: 16 GB hosts, 6 GB VMs, max 2 per host."""
        used = TESTBED_VM + TESTBED_VM
        assert used.memory_mb <= TESTBED_HOST.memory_mb
        assert (used + TESTBED_VM).memory_mb > TESTBED_HOST.memory_mb


class TestPowerModel:
    def test_s3_is_ten_percent_of_idle(self):
        """Section VI-A.2: ~5 W suspended, ~10 % of idle S0."""
        m = PowerModel()
        s3 = m.power(PowerState.SUSPENDED, 0.0)
        idle = m.power(PowerState.ON, 0.0)
        assert s3 == pytest.approx(0.1 * idle)

    def test_linear_in_utilization(self):
        m = PowerModel(idle_w=50, max_w=120, suspend_w=5)
        assert m.power(PowerState.ON, 0.5) == pytest.approx(85.0)
        assert m.power(PowerState.ON, 1.0) == pytest.approx(120.0)

    def test_off_draws_nothing(self):
        assert PowerModel().power(PowerState.OFF, 0.0) == 0.0

    def test_transitions_draw_s0(self):
        m = PowerModel()
        assert m.power(PowerState.SUSPENDING, 0.0) == m.power(PowerState.ON, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(idle_w=50, max_w=40, suspend_w=5)
        with pytest.raises(ValueError):
            PowerModel().power(PowerState.ON, 1.2)


class TestEnergyMeter:
    def test_integrates_piecewise(self):
        meter = EnergyMeter(PowerModel(idle_w=50, max_w=120, suspend_w=5))
        meter.advance(3600.0, PowerState.ON, 0.0)       # 50 Wh
        meter.advance(7200.0, PowerState.SUSPENDED, 0.0)  # 5 Wh
        assert meter.energy_kwh == pytest.approx(0.055)

    def test_state_seconds(self):
        meter = EnergyMeter(PowerModel())
        meter.advance(10.0, PowerState.ON, 0.0)
        meter.advance(40.0, PowerState.SUSPENDED, 0.0)
        assert meter.state_seconds[PowerState.ON] == 10.0
        assert meter.suspended_fraction == pytest.approx(0.75)

    def test_time_cannot_go_backwards(self):
        meter = EnergyMeter(PowerModel())
        meter.advance(10.0, PowerState.ON, 0.0)
        with pytest.raises(ValueError):
            meter.advance(5.0, PowerState.ON, 0.0)


class TestHostStateMachine:
    def test_full_suspend_resume_cycle(self):
        host = Host("h")
        host.add_vm(make_vm())
        host.begin_suspend(10.0)
        assert host.state is PowerState.SUSPENDING
        host.finish_suspend(13.0)
        assert host.is_suspended
        host.begin_resume(100.0)
        host.finish_resume(100.8, grace_s=30.0)
        assert host.state is PowerState.ON
        assert host.in_grace(120.0)
        assert not host.in_grace(200.0)

    def test_illegal_transitions_raise(self):
        host = Host("h")
        with pytest.raises(HostStateError):
            host.finish_suspend(1.0)
        with pytest.raises(HostStateError):
            host.begin_resume(1.0)
        host.begin_suspend(1.0)
        with pytest.raises(HostStateError):
            host.begin_suspend(2.0)

    def test_power_off_requires_empty(self):
        host = Host("h")
        host.add_vm(make_vm())
        with pytest.raises(HostStateError):
            host.power_off(1.0)

    def test_energy_accounting_through_cycle(self):
        host = Host("h")
        host.add_vm(make_vm())
        host.begin_suspend(3600.0)     # 1 h ON idle = 50 Wh
        host.finish_suspend(3600.0)
        host.sync_meter(2 * 3600.0)    # 1 h S3 = 5 Wh
        assert host.meter.energy_kwh == pytest.approx(0.055)
        assert host.meter.suspended_fraction == pytest.approx(0.5)

    def test_utilization_from_vm_activity(self):
        host = Host("h", HostCapacity(cpus=8, memory_mb=16384))
        vm = make_vm()
        host.add_vm(vm)
        vm.current_activity = 0.5
        # 0.5 activity x 2 vcpus / 8 cores
        assert host.cpu_utilization == pytest.approx(0.125)

    def test_capacity_enforced(self):
        host = Host("h")
        host.add_vm(make_vm("a"))
        host.add_vm(make_vm("b"))
        with pytest.raises(ValueError):
            host.add_vm(make_vm("c"))

    def test_double_add_rejected(self):
        host = Host("h")
        vm = make_vm()
        host.add_vm(vm)
        with pytest.raises(ValueError):
            host.add_vm(vm)

    def test_transitions_recorded(self):
        host = Host("h")
        host.add_vm(make_vm())
        host.begin_suspend(1.0)
        host.finish_suspend(2.0)
        assert [t.to_state for t in host.transitions] == \
            [PowerState.SUSPENDING, PowerState.SUSPENDED]
        assert host.suspend_count == 1

    def test_ip_range_and_mean(self):
        host = Host("h")
        a, b = make_vm("a"), make_vm("b")
        host.add_vm(a)
        host.add_vm(b)
        for h in range(48):
            a.model.observe(h, 0.0)
            b.model.observe(h, 0.5)
        assert host.ip_range(48) > 0
        ips = [a.raw_ip(48), b.raw_ip(48)]
        assert host.mean_raw_ip(48) == pytest.approx(sum(ips) / 2)

    def test_empty_host_neutral_ip(self):
        assert Host("h").mean_raw_ip(0) == 0.0
        assert Host("h").ip_range(0) == 0.0


class TestDataCenter:
    def make_dc(self):
        hosts = [Host(f"h{i}") for i in range(3)]
        return DataCenter(hosts)

    def test_duplicate_host_names_rejected(self):
        with pytest.raises(PlacementError):
            DataCenter([Host("x"), Host("x")])

    def test_place_and_host_of(self):
        dc = self.make_dc()
        vm = make_vm()
        dc.place(vm, dc.host("h0"))
        assert dc.host_of(vm).name == "h0"
        with pytest.raises(PlacementError):
            dc.place(vm, dc.host("h1"))

    def test_unknown_host(self):
        with pytest.raises(PlacementError):
            self.make_dc().host("nope")

    def test_migrate_records(self):
        dc = self.make_dc()
        vm = make_vm()
        dc.place(vm, dc.host("h0"))
        rec = dc.migrate(vm, dc.host("h1"), now=100.0)
        assert rec.source == "h0" and rec.destination == "h1"
        assert vm.migrations == 1
        assert dc.host_of(vm).name == "h1"

    def test_migrate_to_same_host_rejected(self):
        dc = self.make_dc()
        vm = make_vm()
        dc.place(vm, dc.host("h0"))
        with pytest.raises(PlacementError):
            dc.migrate(vm, dc.host("h0"), now=1.0)

    def test_migrate_capacity_checked(self):
        dc = self.make_dc()
        for i, name in enumerate(("a", "b", "c")):
            dc.place(make_vm(name), dc.host(f"h{i // 2}"))
        # h0 holds a,b (full); migrating c there must fail.
        c = next(v for v in dc.vms if v.name == "c")
        with pytest.raises(PlacementError):
            dc.migrate(c, dc.host("h0"), now=1.0)

    def test_apply_assignment_swap(self):
        """Swaps between full hosts work via the bulk path."""
        dc = self.make_dc()
        a, b, c, d = (make_vm(n) for n in "abcd")
        dc.place(a, dc.host("h0"))
        dc.place(b, dc.host("h0"))
        dc.place(c, dc.host("h1"))
        dc.place(d, dc.host("h1"))
        records = dc.apply_assignment(
            {"a": dc.host("h1"), "c": dc.host("h0")}, now=5.0)
        assert len(records) == 2
        assert dc.host_of(a).name == "h1"
        assert dc.host_of(c).name == "h0"
        dc.check_invariants()

    def test_apply_assignment_noop_not_recorded(self):
        dc = self.make_dc()
        vm = make_vm()
        dc.place(vm, dc.host("h0"))
        records = dc.apply_assignment({vm.name: dc.host("h0")}, now=1.0)
        assert records == []
        assert vm.migrations == 0

    def test_apply_assignment_overfill_raises(self):
        dc = self.make_dc()
        a, b, c = (make_vm(n) for n in "abc")
        dc.place(a, dc.host("h0"))
        dc.place(b, dc.host("h1"))
        dc.place(c, dc.host("h2"))
        with pytest.raises(PlacementError):
            dc.apply_assignment(
                {"a": dc.host("h2"), "b": dc.host("h2")}, now=1.0)

    def test_check_invariants_detects_overcapacity(self):
        dc = self.make_dc()
        host = dc.host("h0")
        host.vms.append(make_vm("a"))
        host.vms.append(make_vm("b"))
        host.vms.append(make_vm("c"))  # bypass add_vm check
        with pytest.raises(PlacementError):
            dc.check_invariants()

    def test_set_hour_activities(self):
        dc = self.make_dc()
        vm = VM("t", daily_backup_trace(days=2), TESTBED_VM)
        dc.place(vm, dc.host("h0"))
        dc.set_hour_activities(2, now=2 * 3600.0)
        assert vm.current_activity > 0
        dc.set_hour_activities(3, now=3 * 3600.0)
        assert vm.current_activity == 0.0


class TestMigrationModel:
    def test_duration_scales_with_memory(self):
        m = MigrationModel(bandwidth_mb_s=1000.0)
        small = VM("s", always_idle_trace(24), ResourceSpec(1, 1024))
        big = VM("b", always_idle_trace(24), ResourceSpec(1, 8192))
        assert m.duration_s(big) > m.duration_s(small)

    def test_dirty_pages_slow_migration(self):
        m = MigrationModel()
        vm = make_vm()
        vm.current_activity = 0.0
        idle_duration = m.duration_s(vm)
        vm.current_activity = 1.0
        assert m.duration_s(vm) > idle_duration


class TestServiceTimer:
    def test_next_fire_before_first(self):
        from repro.cluster.vm import ServiceTimer

        t = ServiceTimer("t", period_s=100.0, first_fire_s=50.0)
        assert t.next_fire(0.0) == 50.0

    def test_next_fire_strictly_after_now(self):
        from repro.cluster.vm import ServiceTimer

        t = ServiceTimer("t", period_s=100.0, first_fire_s=50.0)
        assert t.next_fire(50.0) == 150.0
        assert t.next_fire(149.0) == 150.0
        assert t.next_fire(151.0) == 250.0
