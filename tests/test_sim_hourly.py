"""Tests for the hourly simulator (power accounting, suspension logic)."""

import pytest

from repro.cluster import DataCenter, Host, HostCapacity, PowerState, ResourceSpec, VM
from repro.consolidation import NeatController, OasisController
from repro.core.params import DEFAULT_PARAMS
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.synthetic import always_idle_trace, daily_backup_trace, llmu_trace

import numpy as np

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=6144)


def build(traces_by_host, params=DEFAULT_PARAMS):
    hosts = [Host(f"h{i}", CAP, params) for i in range(len(traces_by_host))]
    dc = DataCenter(hosts, params)
    k = 0
    for host, traces in zip(hosts, traces_by_host):
        for tr in traces:
            dc.place(VM(f"vm{k}", tr, FLAVOR, params=params), host)
            k += 1
    return dc


class PassiveController:
    """Controller stub: observes but never migrates."""

    name = "passive"
    uses_idleness = False

    def observe_hour(self, hour_index):
        pass

    def step(self, hour_index, now, executor=None):
        return 0


class TestSuspension:
    def test_idle_host_suspends_for_most_of_the_hour(self):
        dc = build([[always_idle_trace(48)]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(24)
        frac = result.suspended_fraction_by_host["h0"]
        assert frac > 0.95
        # Energy must be close to pure-S3: 24h x 5W = 0.12 kWh.
        assert result.total_energy_kwh < 0.15

    def test_suspend_disabled_stays_on(self):
        dc = build([[always_idle_trace(48)]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(suspend_enabled=False,
                                                  power_off_empty=False))
        result = sim.run(24)
        assert result.suspended_fraction_by_host["h0"] == 0.0
        # 24h x 50W idle = 1.2 kWh.
        assert result.total_energy_kwh == pytest.approx(1.2, rel=0.01)

    def test_active_vm_prevents_suspension(self):
        dc = build([[llmu_trace(hours=48)]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(24)
        assert result.suspended_fraction_by_host["h0"] == 0.0

    def test_host_resumes_on_activity(self):
        dc = build([[daily_backup_trace(days=3)]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(3 * 24)
        host = dc.host("h0")
        # One resume per backup day (plus initial hours awake).
        assert host.resume_count >= 2
        assert 0.7 < result.suspended_fraction_by_host["h0"] < 0.99

    def test_empty_host_powers_off(self):
        dc = build([[]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=True))
        result = sim.run(10)
        assert dc.host("h0").state is PowerState.OFF
        assert result.total_energy_kwh == pytest.approx(0.0)

    def test_energy_ordering_suspend_beats_no_suspend(self):
        """Fundamental inequality: S3 never costs more energy."""
        for cfg_suspend in (True, False):
            dc = build([[daily_backup_trace(days=2)]])
            sim = HourlySimulator(
                dc, PassiveController(),
                config=HourlyConfig(suspend_enabled=cfg_suspend,
                                    power_off_empty=False))
            result = sim.run(48)
            if cfg_suspend:
                with_suspend = result.total_energy_kwh
            else:
                without = result.total_energy_kwh
        assert with_suspend < without

    def test_mixed_host_never_sleeps(self):
        dc = build([[always_idle_trace(48), llmu_trace(hours=48)]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(24)
        assert result.suspended_fraction_by_host["h0"] == 0.0


class TestAccounting:
    def test_result_fields(self):
        dc = build([[always_idle_trace(48)], [llmu_trace(hours=48)]])
        sim = HourlySimulator(dc, NeatController(dc),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(24)
        assert result.hours == 24
        assert set(result.energy_kwh_by_host) == {"h0", "h1"}
        assert result.controller_name == "neat"
        assert result.global_suspended_fraction == pytest.approx(
            np.mean(list(result.suspended_fraction_by_host.values())))

    def test_meter_covers_whole_run(self):
        dc = build([[always_idle_trace(48)]])
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False))
        sim.run(24)
        assert dc.host("h0").meter.total_seconds == pytest.approx(24 * 3600.0)

    def test_rejects_nonpositive_hours(self):
        dc = build([[always_idle_trace(48)]])
        sim = HourlySimulator(dc, PassiveController())
        with pytest.raises(ValueError):
            sim.run(0)

    def test_hour_hooks_called(self):
        dc = build([[always_idle_trace(48)]])
        calls = []
        sim = HourlySimulator(dc, PassiveController(),
                              config=HourlyConfig(power_off_empty=False),
                              hour_hooks=(lambda t, now: calls.append(t),))
        sim.run(5)
        assert calls == [0, 1, 2, 3, 4]


class TestOasisIntegration:
    def test_oasis_consolidation_host_burns_power(self):
        idle = always_idle_trace(48)
        dc = build([[idle], [idle]])
        ctrl = OasisController(dc, n_consolidation_hosts=1)
        sim = HourlySimulator(dc, ctrl,
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(24)
        # Worker sleeps, consolidation host stays awake at idle power.
        assert result.suspended_fraction_by_host["h1"] > 0.9
        assert result.suspended_fraction_by_host["h0"] == 0.0

    def test_oasis_worse_than_plain_suspend_on_idle_fleet(self):
        """With everything idle, Oasis pays for the consolidation host."""
        idle = always_idle_trace(48)
        dc1 = build([[idle], [idle]])
        plain = HourlySimulator(dc1, PassiveController(),
                                config=HourlyConfig(power_off_empty=False)).run(24)
        dc2 = build([[idle], [idle]])
        oasis = HourlySimulator(dc2, OasisController(dc2),
                                config=HourlyConfig(power_off_empty=False)).run(24)
        assert oasis.total_energy_kwh > plain.total_energy_kwh
