"""Tests for the vectorized fleet model, incl. scalar equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fleet import FleetIdlenessModel
from repro.core.model import IdlenessModel
from repro.core.params import DEFAULT_PARAMS


class TestBasics:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            FleetIdlenessModel(0)

    def test_rejects_bad_shapes(self):
        fleet = FleetIdlenessModel(3)
        with pytest.raises(ValueError):
            fleet.observe(0, np.zeros(2))

    def test_rejects_out_of_range(self):
        fleet = FleetIdlenessModel(2)
        with pytest.raises(ValueError):
            fleet.observe(0, np.array([0.5, 1.5]))

    def test_initial_probability(self):
        fleet = FleetIdlenessModel(4)
        np.testing.assert_allclose(fleet.idleness_probability(0), 0.5)

    def test_predictions_start_active(self):
        fleet = FleetIdlenessModel(4)
        assert not fleet.predict_idle(0).any()


activity_matrix = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.lists(
        st.lists(st.sampled_from([0.0, 0.25, 0.7, 1.0]), min_size=30, max_size=60),
        min_size=n, max_size=n,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
)


class TestScalarEquivalence:
    """The fleet model must agree with the scalar model bit-for-bit."""

    @settings(max_examples=15, deadline=None)
    @given(activity_matrix)
    def test_exact_equivalence(self, rows):
        A = np.array(rows)
        n, T = A.shape
        fleet = FleetIdlenessModel(n)
        scalars = [IdlenessModel() for _ in range(n)]
        fleet_pred, fleet_act = fleet.run_trace_matrix(A)
        for i, m in enumerate(scalars):
            for t in range(T):
                m.observe(t, float(A[i, t]))
            np.testing.assert_allclose(fleet.sid[i], m.sid, atol=0)
            np.testing.assert_allclose(fleet.siw[i], m.siw, atol=0)
            np.testing.assert_allclose(fleet.weights[i], m.weights, atol=1e-12)

    def test_predictions_match_scalar(self):
        rng = np.random.default_rng(3)
        A = np.where(rng.random((3, 120)) < 0.6, 0.0, 0.4)
        fleet = FleetIdlenessModel(3)
        preds, actual = fleet.run_trace_matrix(A)
        for i in range(3):
            m = IdlenessModel()
            expected = []
            for t in range(120):
                p, _ = m.predict_and_observe(t, float(A[i, t]))
                expected.append(p)
            np.testing.assert_array_equal(preds[i], expected)

    def test_mean_active_activity_matches(self):
        A = np.array([[0.5, 0.0, 0.3, 0.0], [0.0, 0.0, 0.0, 0.0]])
        fleet = FleetIdlenessModel(2)
        fleet.run_trace_matrix(A)
        assert fleet.mean_active_activity[0] == pytest.approx(0.4)
        # Never-active VM falls back to default_activity.
        assert fleet.mean_active_activity[1] == pytest.approx(
            DEFAULT_PARAMS.default_activity)


class TestRunTraceMatrix:
    def test_output_shapes(self):
        fleet = FleetIdlenessModel(2)
        A = np.zeros((2, 48))
        preds, actual = fleet.run_trace_matrix(A)
        assert preds.shape == (2, 48)
        assert actual.shape == (2, 48)
        assert actual.all()

    def test_shape_validation(self):
        fleet = FleetIdlenessModel(2)
        with pytest.raises(ValueError):
            fleet.run_trace_matrix(np.zeros((3, 10)))

    def test_start_hour_offset(self):
        """Starting mid-calendar indexes different slots."""
        A = np.tile(np.array([[0.0] * 3 + [0.5] * 21]), (1, 10))
        f0 = FleetIdlenessModel(1)
        f0.run_trace_matrix(A)
        f1 = FleetIdlenessModel(1)
        f1.run_trace_matrix(A, start_hour=12)
        assert not np.allclose(f0.sid[0], f1.sid[0])


class TestFleetScaleAblation:
    def test_masked_scales_zero(self):
        params = DEFAULT_PARAMS.replace(use_yearly_scale=False)
        fleet = FleetIdlenessModel(2, params)
        fleet.observe(0, np.array([0.0, 0.5]))
        assert np.all(fleet.siy == 0)
        assert np.all(fleet.weights[:, 3] == 0)
