"""Tests for the simulation calendar."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.calendar import (
    DAYS_PER_WEEK,
    DAYS_PER_YEAR,
    HOURS_PER_DAY,
    HOURS_PER_YEAR,
    MONTH_LENGTHS,
    MONTH_STARTS,
    hour_index,
    hour_of_time,
    slot_of_hour,
    slots_of_hours,
    time_of_hour,
)


class TestSlotOfHour:
    def test_epoch_is_monday_jan1_midnight(self):
        s = slot_of_hour(0)
        assert s.hour == 0
        assert s.day_of_week == 0
        assert s.day_of_month == 0
        assert s.month == 0
        assert s.day_of_year == 0

    def test_hour_within_day(self):
        s = slot_of_hour(13)
        assert s.hour == 13
        assert s.day_of_week == 0

    def test_next_day_is_tuesday(self):
        s = slot_of_hour(24)
        assert s.hour == 0
        assert s.day_of_week == 1
        assert s.day_of_month == 1

    def test_week_wraps(self):
        s = slot_of_hour(7 * 24)
        assert s.day_of_week == 0
        assert s.day_of_month == 7

    def test_february_start(self):
        s = slot_of_hour(31 * 24)
        assert s.month == 1
        assert s.day_of_month == 0
        assert s.day_of_year == 31

    def test_december_end(self):
        s = slot_of_hour(364 * 24 + 23)
        assert s.month == 11
        assert s.day_of_month == 30
        assert s.hour == 23

    def test_year_wraps(self):
        s = slot_of_hour(HOURS_PER_YEAR)
        assert s.day_of_year == 0
        assert s.month == 0
        # 365 % 7 == 1: the next year starts one weekday later.
        assert s.day_of_week == 1

    def test_negative_hour_rejected(self):
        with pytest.raises(ValueError):
            slot_of_hour(-1)

    def test_month_lengths_sum_to_year(self):
        assert sum(MONTH_LENGTHS) == DAYS_PER_YEAR

    def test_month_starts_consistent(self):
        assert MONTH_STARTS[0] == 0
        assert MONTH_STARTS[1] == 31
        assert MONTH_STARTS[-1] == DAYS_PER_YEAR - MONTH_LENGTHS[-1]


class TestVectorized:
    @given(st.integers(min_value=0, max_value=10 * HOURS_PER_YEAR))
    def test_matches_scalar(self, hour):
        h, dw, dm, m, doy = slots_of_hours(np.array([hour]))
        s = slot_of_hour(hour)
        assert h[0] == s.hour
        assert dw[0] == s.day_of_week
        assert dm[0] == s.day_of_month
        assert m[0] == s.month
        assert doy[0] == s.day_of_year

    def test_batch_shape(self):
        out = slots_of_hours(np.arange(1000))
        assert all(arr.shape == (1000,) for arr in out)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            slots_of_hours(np.array([-5]))

    def test_ranges(self):
        h, dw, dm, m, doy = slots_of_hours(np.arange(3 * HOURS_PER_YEAR))
        assert h.min() == 0 and h.max() == HOURS_PER_DAY - 1
        assert dw.min() == 0 and dw.max() == DAYS_PER_WEEK - 1
        assert dm.min() == 0 and dm.max() == 30
        assert m.min() == 0 and m.max() == 11
        assert doy.min() == 0 and doy.max() == DAYS_PER_YEAR - 1


class TestTimeConversions:
    def test_hour_of_time(self):
        assert hour_of_time(0.0) == 0
        assert hour_of_time(3599.9) == 0
        assert hour_of_time(3600.0) == 1

    def test_time_of_hour_roundtrip(self):
        for t in (0, 5, 1000):
            assert hour_of_time(time_of_hour(t)) == t

    def test_hour_index(self):
        assert hour_index(0, 5) == 5
        assert hour_index(2, 3) == 51

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            hour_of_time(-1.0)
