"""Simulator parity for the columnar fleet hot path (DESIGN.md §6).

The fleet-bound simulators must be *bit-identical* to the seed per-VM
scalar path: identical energy totals, suspend cycles, migrations and
SLATAH — not merely close.  Plus property tests for the O(1) placement
index under migrate/apply_assignment/remove.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.datacenter import DataCenter, PlacementError
from repro.cluster.host import Host
from repro.cluster.resources import TESTBED_VM
from repro.cluster.vm import VM
from repro.consolidation.drowsy import DrowsyController
from repro.consolidation.managers import DistributedNeat
from repro.consolidation.neat import NeatController
from repro.consolidation.oasis import OasisController
from repro.core.binding import FleetBinding, FleetVMView
from repro.core.calendar import slot_of_hour
from repro.core.model import IdlenessModel
from repro.core.params import DEFAULT_PARAMS
from repro.experiments.common import build_fleet
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.base import activity_matrix
from repro.traces.synthetic import daily_backup_trace, llmu_trace

HOURS = 96  # >= 72 h, exercises several day boundaries

CONTROLLERS = {
    "drowsy": lambda dc: DrowsyController(dc),
    "neat": lambda dc: NeatController(dc),
    "oasis": lambda dc: OasisController(dc),
    "neat-distributed": lambda dc: DistributedNeat(dc),
}


def _hourly_run(controller_name: str, use_fleet: bool, hours: int = HOURS,
                **config_kwargs):
    dc = build_fleet(n_hosts=8, n_vms=24, llmi_fraction=0.5, hours=hours)
    controller = CONTROLLERS[controller_name](dc)
    sim = HourlySimulator(
        dc, controller,
        config=HourlyConfig(use_fleet_model=use_fleet, **config_kwargs))
    return sim.run(hours), dc


def _assert_identical(a, b):
    assert a.total_energy_kwh == b.total_energy_kwh
    assert a.energy_kwh_by_host == b.energy_kwh_by_host
    assert a.suspend_cycles_by_host == b.suspend_cycles_by_host
    assert a.suspended_fraction_by_host == b.suspended_fraction_by_host
    assert a.migrations == b.migrations
    assert a.vm_migrations == b.vm_migrations


class TestHourlyParity:
    """Scalar vs fleet-bound hourly runs are bit-identical."""

    @pytest.mark.parametrize("controller", sorted(CONTROLLERS))
    def test_controller_parity(self, controller):
        scalar, _ = _hourly_run(controller, use_fleet=False)
        fleet, dc = _hourly_run(controller, use_fleet=True)
        _assert_identical(scalar, fleet)
        assert scalar.slatah == fleet.slatah
        assert scalar.overload_host_hours == fleet.overload_host_hours
        # The fleet run really took the columnar path.
        assert all(type(vm.model) is FleetVMView for vm in dc.vms)

    def test_relocate_all_mode_parity(self):
        """The 24-slot IP window of relocate_all hits the column cache."""
        scalar, _ = _hourly_run("drowsy", use_fleet=False,
                                relocate_all_mode=True,
                                consolidation_period_h=12)
        fleet, _ = _hourly_run("drowsy", use_fleet=True,
                               relocate_all_mode=True,
                               consolidation_period_h=12)
        _assert_identical(scalar, fleet)

    def test_model_state_parity(self):
        """Post-run SI tables and weights match the scalar models."""
        _, dc_s = _hourly_run("drowsy", use_fleet=False)
        _, dc_f = _hourly_run("drowsy", use_fleet=True)
        scalar_by_name = {vm.name: vm for vm in dc_s.vms}
        for vm in dc_f.vms:
            ref = scalar_by_name[vm.name].model
            np.testing.assert_array_equal(vm.model.sid, ref.sid)
            np.testing.assert_array_equal(vm.model.siw, ref.siw)
            np.testing.assert_array_equal(vm.model.weights, ref.weights)
            assert vm.model.hours_observed == ref.hours_observed
            slot = slot_of_hour(HOURS + 3)
            assert vm.model.raw_ip(slot) == ref.raw_ip(slot)


class TestEventParity:
    """The request-level simulator takes the same columnar path."""

    @pytest.mark.parametrize("controller", ["drowsy", "oasis"])
    def test_event_run_parity(self, controller):
        def run(use_fleet):
            dc = build_fleet(n_hosts=4, n_vms=12, llmi_fraction=0.5,
                             hours=72)
            sim = EventDrivenSimulation(
                dc, CONTROLLERS[controller](dc),
                config=EventConfig(use_fleet_model=use_fleet))
            return sim.run(72)

        scalar, fleet = run(False), run(True)
        assert scalar.total_energy_kwh == fleet.total_energy_kwh
        assert scalar.suspend_cycles_by_host == fleet.suspend_cycles_by_host
        assert scalar.resume_cycles_by_host == fleet.resume_cycles_by_host
        assert scalar.migrations == fleet.migrations
        assert scalar.request_summary == fleet.request_summary
        assert scalar.wol_sent == fleet.wol_sent
        assert scalar.events_processed == fleet.events_processed


class TestFleetVMView:
    def _bound_vm(self, hours=48):
        host = Host("h0")
        dc = DataCenter([host])
        vm = VM("v", daily_backup_trace(days=4), TESTBED_VM)
        dc.place(vm, host)
        binding = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        assert binding is not None
        return vm, binding

    def test_view_observe_matches_scalar(self):
        """The single-row fallback path is the scalar update, exactly."""
        vm, _ = self._bound_vm()
        ref = IdlenessModel()
        trace = daily_backup_trace(days=4)
        for t in range(96):
            a = float(trace.activities[t])
            obs_v = vm.model.observe(t, a)
            obs_s = ref.observe(t, a)
            assert obs_v.raw_ip_before == obs_s.raw_ip_before
            assert obs_v.raw_ip_after == obs_s.raw_ip_after
        np.testing.assert_array_equal(vm.model.sid, ref.sid)
        np.testing.assert_array_equal(vm.model.weights, ref.weights)
        assert vm.model.hours_observed == ref.hours_observed == 96
        assert vm.model.mean_active_activity == ref.mean_active_activity

    def test_view_rejects_bad_activity(self):
        vm, _ = self._bound_vm()
        with pytest.raises(ValueError):
            vm.model.observe(0, 1.5)

    def test_binding_preserves_pretrained_state(self):
        host = Host("h0")
        dc = DataCenter([host])
        vm = VM("v", daily_backup_trace(days=4), TESTBED_VM)
        dc.place(vm, host)
        for t in range(72):
            vm.model.observe(t, vm.activity_at(t))
        ref = IdlenessModel()
        for t in range(72):
            ref.observe(t, vm.activity_at(t))
        FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        np.testing.assert_array_equal(vm.model.sid, ref.sid)
        np.testing.assert_array_equal(vm.model.weights, ref.weights)
        assert vm.model.hours_observed == 72

    def test_try_bind_refuses_empty_and_mixed(self):
        dc = DataCenter([Host("h0")])
        assert FleetBinding.try_bind(dc, DEFAULT_PARAMS) is None  # empty

        vm = VM("v", daily_backup_trace(days=2), TESTBED_VM)
        dc.place(vm, dc.host("h0"))
        vm.model = object()  # non-standard model
        assert FleetBinding.try_bind(dc, DEFAULT_PARAMS) is None

    def test_try_bind_reuses_existing_binding(self):
        dc = DataCenter([Host("h0")])
        dc.place(VM("v", daily_backup_trace(days=2), TESTBED_VM),
                 dc.host("h0"))
        b1 = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        b2 = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        assert b1 is b2

    def test_rebind_after_fleet_growth(self):
        """A VM placed after binding makes covers() False; the next
        run() rebinds (views import exactly, newcomers join the fleet)
        so the columnar path survives fleet growth."""
        hosts = [Host(f"h{i}") for i in range(2)]
        dc = DataCenter(hosts)
        dc.place(VM("old", daily_backup_trace(days=5), TESTBED_VM), hosts[0])
        binding = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        assert binding.covers(dc.vms)
        newcomer = VM("new", llmu_trace(hours=120, seed=5), TESTBED_VM)
        dc.place(newcomer, hosts[1])
        assert not binding.covers(dc.vms)

        # try_bind builds a fresh binding spanning old views + newcomer.
        rebound = FleetBinding.try_bind(dc, DEFAULT_PARAMS)
        assert rebound is not binding
        assert rebound.covers(dc.vms)
        assert rebound.fleet.n == 2

        class Passive:
            name = "p"
            uses_idleness = False

            def observe_hour(self, t):
                pass

            def step(self, t, now, executor=None):
                return 0

        sim = HourlySimulator(dc, Passive(),
                              config=HourlyConfig(power_off_empty=False))
        sim.run(24)
        for vm in dc.vms:
            assert type(vm.model) is FleetVMView
            assert vm.model.hours_observed == 24

    def test_rebound_state_matches_scalar(self):
        """Growth + rebind changes nothing: results equal an all-scalar
        run over the same schedule."""
        def run(use_fleet):
            hosts = [Host(f"h{i}") for i in range(2)]
            dc = DataCenter(hosts)
            dc.place(VM("old", daily_backup_trace(days=10), TESTBED_VM),
                     hosts[0])
            sim = HourlySimulator(
                dc, DrowsyController(dc),
                config=HourlyConfig(use_fleet_model=use_fleet))
            sim.run(48)
            dc.place(VM("new", llmu_trace(hours=240, seed=5), TESTBED_VM),
                     hosts[1])
            return sim.run(120, start_hour=48), dc

        scalar, dc_s = run(False)
        fleet, dc_f = run(True)
        _assert_identical(scalar, fleet)
        ref = {vm.name: vm.model for vm in dc_s.vms}
        for vm in dc_f.vms:
            np.testing.assert_array_equal(vm.model.sid, ref[vm.name].sid)
            np.testing.assert_array_equal(vm.model.weights,
                                          ref[vm.name].weights)


class TestActivityMatrix:
    def test_matches_scalar_activity(self):
        traces = [daily_backup_trace(days=2),
                  llmu_trace(hours=30, seed=1)]
        m = activity_matrix(traces, 50, start_hour=7)
        for i, tr in enumerate(traces):
            for k in range(50):
                assert m[i, k] == tr.activity(7 + k)

    def test_rejects_empty_horizon(self):
        with pytest.raises(ValueError):
            activity_matrix([daily_backup_trace(days=1)], 0)


# ----------------------------------------------------------------------
# Placement-index properties
# ----------------------------------------------------------------------

def _make_dc(n_hosts=4):
    hosts = [Host(f"h{i}") for i in range(n_hosts)]
    return DataCenter(hosts)


def _vm(name):
    return VM(name, daily_backup_trace(days=1), TESTBED_VM)


def _scan_host_of(dc, vm):
    for host in dc.hosts:
        if vm in host.vms:
            return host
    return None


ops = st.lists(
    st.tuples(st.sampled_from(["migrate", "swap", "remove", "add"]),
              st.integers(0, 7), st.integers(0, 3)),
    min_size=1, max_size=40)


class TestPlacementIndex:
    @settings(max_examples=40, deadline=None)
    @given(ops)
    def test_index_consistent_under_ops(self, operations):
        """host_of agrees with a full scan after any op sequence."""
        dc = _make_dc()
        vms = [_vm(f"v{i}") for i in range(8)]
        placed = []
        for i, vm in enumerate(vms[:4]):
            dc.place(vm, dc.hosts[i % 4])
            placed.append(vm)
        spare = list(vms[4:])

        for clock, (op, vm_i, host_i) in enumerate(operations, start=1):
            now = float(clock)
            host = dc.hosts[host_i]
            if op == "add" and spare:
                vm = spare.pop()
                if host.can_host(vm):
                    dc.place(vm, host)
                    placed.append(vm)
            elif not placed:
                continue
            elif op == "migrate":
                vm = placed[vm_i % len(placed)]
                src = dc.host_of(vm)
                if src is not host and host.can_host(vm):
                    dc.migrate(vm, host, now=now)
            elif op == "swap" and len(placed) >= 2:
                a = placed[vm_i % len(placed)]
                b = placed[(vm_i + 1) % len(placed)]
                ha, hb = dc.host_of(a), dc.host_of(b)
                if ha is not hb:
                    dc.apply_assignment({a.name: hb, b.name: ha}, now=now)
            elif op == "remove":
                vm = placed.pop(vm_i % len(placed))
                dc.remove(vm, now=now)
                spare.append(vm)

            for vm in vms:
                expected = _scan_host_of(dc, vm)
                if expected is None:
                    with pytest.raises(PlacementError):
                        dc.host_of(vm)
                else:
                    assert dc.host_of(vm) is expected
            dc.check_invariants()

    def test_place_rejects_directly_wired_vm(self):
        """A VM appended to host.vms behind the DC's back must not be
        double-placed through dc.place (index miss falls back to scan)."""
        dc = _make_dc(2)
        vm = _vm("wired")
        dc.hosts[0].vms.append(vm)
        with pytest.raises(PlacementError):
            dc.place(vm, dc.hosts[1])
        assert sum(vm in h.vms for h in dc.hosts) == 1

    def test_host_of_survives_direct_wiring(self):
        """Tests that append to host.vms directly still resolve."""
        dc = _make_dc(2)
        vm = _vm("direct")
        dc.hosts[1].vms.append(vm)
        assert dc.host_of(vm) is dc.hosts[1]
        # Index repaired: second lookup is a pure dict hit.
        assert dc._placement[vm.name] is dc.hosts[1]

    def test_host_of_unplaced_raises(self):
        dc = _make_dc(2)
        with pytest.raises(PlacementError):
            dc.host_of(_vm("ghost"))

    def test_stale_index_entry_repaired_after_manual_move(self):
        dc = _make_dc(2)
        vm = _vm("mover")
        dc.place(vm, dc.hosts[0])
        # Move behind the data center's back.
        dc.hosts[0].vms.remove(vm)
        dc.hosts[1].vms.append(vm)
        assert dc.host_of(vm) is dc.hosts[1]

    def test_apply_assignment_failure_leaves_detached_vm_unindexed(self):
        dc = _make_dc(3)
        a, b, c = _vm("a"), _vm("b"), _vm("c")
        dc.place(a, dc.hosts[0])
        dc.place(b, dc.hosts[1])
        dc.place(c, dc.hosts[2])
        with pytest.raises(PlacementError):
            dc.apply_assignment(
                {"a": dc.hosts[2], "b": dc.hosts[2]}, now=1.0)
        # Whichever VM failed to re-attach is reported unplaced.
        unplaced = [vm for vm in (a, b) if _scan_host_of(dc, vm) is None]
        for vm in unplaced:
            with pytest.raises(PlacementError):
                dc.host_of(vm)
