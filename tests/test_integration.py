"""Cross-module integration and property tests.

These exercise whole pipelines and assert global invariants: energy
conservation bounds, meter/clock consistency, placement invariants under
every controller, and equivalence relations between the two simulators.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    DataCenter,
    Host,
    HostCapacity,
    PowerState,
    ResourceSpec,
    VM,
)
from repro.consolidation import DrowsyController, NeatController, OasisController
from repro.core.params import DEFAULT_PARAMS
from repro.sim.event_driven import EventConfig, EventDrivenSimulation
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.base import ActivityTrace
from repro.traces.synthetic import weekly_pattern_trace

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=6144)


def random_dc(seed, n_hosts=3, vms_per_host=2, days=3):
    rng = np.random.default_rng(seed)
    hosts = [Host(f"h{i}", CAP) for i in range(n_hosts)]
    dc = DataCenter(hosts)
    k = 0
    for host in hosts:
        for _ in range(vms_per_host):
            start = int(rng.integers(0, 20))
            span = int(rng.integers(1, 5))
            schedule = {d: tuple(range(start, min(start + span, 24)))
                        for d in range(7) if rng.random() < 0.8}
            schedule = schedule or {0: (9,)}
            trace = weekly_pattern_trace(f"w{k}", schedule, weeks=1,
                                         level=float(rng.uniform(0.1, 0.5)))
            dc.place(VM(f"vm{k}", trace, FLAVOR), host)
            k += 1
    return dc


class TestEnergyInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_energy_between_physical_bounds(self, seed):
        """Total energy lies between all-S3 and all-max-power bounds."""
        dc = random_dc(seed)
        sim = HourlySimulator(dc, NeatController(dc),
                              config=HourlyConfig(power_off_empty=False))
        hours = 48
        result = sim.run(hours)
        n = len(dc.hosts)
        lower = n * hours * DEFAULT_PARAMS.suspend_power_w / 1000.0
        upper = n * hours * DEFAULT_PARAMS.max_power_w / 1000.0
        assert lower <= result.total_energy_kwh <= upper

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_meters_cover_exact_duration(self, seed):
        dc = random_dc(seed)
        sim = HourlySimulator(dc, NeatController(dc),
                              config=HourlyConfig(power_off_empty=False))
        sim.run(30)
        for host in dc.hosts:
            assert host.meter.total_seconds == pytest.approx(30 * 3600.0)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_suspended_fraction_bounded_by_idle_fraction(self, seed):
        """A host cannot sleep more than its VMs are jointly idle."""
        dc = random_dc(seed, n_hosts=2)
        # Record joint idleness per host up front (placement is static
        # with the passive controller below).
        hours = 48
        joint_idle = {}
        for host in dc.hosts:
            idle = np.ones(hours, dtype=bool)
            for vm in host.vms:
                idle &= np.array([vm.activity_at(t) == 0.0 for t in range(hours)])
            joint_idle[host.name] = float(idle.mean())

        class Passive:
            name = "passive"
            uses_idleness = False

            def observe_hour(self, t):
                pass

            def step(self, t, now, executor=None):
                return 0

        sim = HourlySimulator(dc, Passive(),
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(hours)
        for host in dc.hosts:
            assert (result.suspended_fraction_by_host[host.name]
                    <= joint_idle[host.name] + 1e-9)


class TestControllerInvariants:
    @pytest.mark.parametrize("make_controller", [
        lambda dc: NeatController(dc),
        lambda dc: DrowsyController(dc),
        lambda dc: OasisController(dc, n_consolidation_hosts=1),
    ])
    def test_placement_invariants_hold_throughout(self, make_controller):
        dc = random_dc(7, n_hosts=3)
        sim = HourlySimulator(
            dc, make_controller(dc),
            config=HourlyConfig(power_off_empty=False),
            hour_hooks=(lambda t, now: dc.check_invariants(),))
        sim.run(48)
        dc.check_invariants()

    def test_drowsy_relocate_mode_invariants(self):
        dc = random_dc(11, n_hosts=3)
        sim = HourlySimulator(
            dc, DrowsyController(dc),
            config=HourlyConfig(relocate_all_mode=True, power_off_empty=False),
            hour_hooks=(lambda t, now: dc.check_invariants(),))
        sim.run(48)


class TestSimulatorAgreement:
    def test_event_and_hourly_agree_on_energy_scale(self):
        """Same scenario on both drivers: energy within 10 %.

        (They cannot match exactly: the event driver wakes hosts on
        request arrival and charges per-second transitions.)
        """
        def build():
            host = Host("h0", CAP)
            dc = DataCenter([host])
            trace = weekly_pattern_trace(
                "w", {d: (9, 10, 11) for d in range(7)}, weeks=1, level=0.4)
            dc.place(VM("v", trace, FLAVOR), host)
            return dc

        dc1 = build()
        hourly = HourlySimulator(dc1, NeatController(dc1),
                                 config=HourlyConfig(power_off_empty=False)).run(48)
        dc2 = build()
        event = EventDrivenSimulation(
            dc2, NeatController(dc2),
            config=EventConfig(seed=4)).run(48)
        assert event.total_energy_kwh == pytest.approx(
            hourly.total_energy_kwh, rel=0.10)

    def test_suspension_fractions_agree(self):
        def build():
            host = Host("h0", CAP)
            dc = DataCenter([host])
            trace = weekly_pattern_trace(
                "w", {d: (9,) for d in range(7)}, weeks=1, level=0.4)
            dc.place(VM("v", trace, FLAVOR), host)
            return dc

        dc1 = build()
        hourly = HourlySimulator(dc1, NeatController(dc1),
                                 config=HourlyConfig(power_off_empty=False)).run(48)
        dc2 = build()
        event = EventDrivenSimulation(
            dc2, NeatController(dc2), config=EventConfig(seed=4)).run(48)
        assert event.suspended_fraction_by_host["h0"] == pytest.approx(
            hourly.suspended_fraction_by_host["h0"], abs=0.05)


class TestEventSimRaces:
    def test_wake_during_suspending_transition(self):
        """A WoL landing mid-S0->S3 resumes the host right after."""
        host = Host("h0", CAP)
        dc = DataCenter([host])
        trace = ActivityTrace("t", np.zeros(48))
        vm = VM("v", trace, FLAVOR, ip_address="10.9.0.1")
        dc.place(vm, host)
        sim = EventDrivenSimulation(dc, NeatController(dc),
                                    config=EventConfig(seed=1))
        # Let the suspend begin (first check at ~5 s), then fire a
        # request exactly inside the SUSPENDING window.
        from repro.network.requests import Request

        def fire_request():
            assert host.state is PowerState.SUSPENDING
            sim.switch.submit_request(Request(
                arrival_s=sim.sim.now, vm_name="v", service_time_s=0.01))

        sim.sim.schedule_at(DEFAULT_PARAMS.suspend_check_period_s + 1.0,
                            fire_request)
        sim.run(1)
        # The request completed despite the race.
        assert len(sim.switch.log.requests) == 1
        assert sim.switch.log.requests[0].completed
        assert host.resume_count >= 1

    def test_migration_wakes_suspended_endpoints(self):
        hosts = [Host("a", CAP), Host("b", CAP)]
        dc = DataCenter(hosts)
        vm = VM("v", ActivityTrace("t", np.zeros(48)), FLAVOR)
        dc.place(vm, hosts[0])
        sim = EventDrivenSimulation(dc, NeatController(dc),
                                    config=EventConfig(seed=1))
        observed = {}

        def migrate_now():
            src = dc.host_of(vm)
            dest = hosts[1] if src is hosts[0] else hosts[0]
            observed["state_before"] = src.state
            observed["dest"] = dest.name
            sim._execute_migration(vm, dest)

        sim.sim.schedule_at(30.0, migrate_now)
        sim.run(1)
        assert observed["state_before"] is PowerState.SUSPENDED
        assert dc.host_of(vm).name == observed["dest"]
        dc.check_invariants()


class TestReportModule:
    def test_generate_report_quick(self):
        from repro.analysis.report import generate_report

        report = generate_report(days=2, years=1)
        assert report.checks
        assert report.all_hold, report.render()
        text = report.render()
        assert "reproduction report" in text
        assert f"{len(report.checks)}/{len(report.checks)} claims hold" in text
