"""Tests for the waking module, packet analysis and failover."""

import pytest

from repro.cluster import EventSimulator, Host, TESTBED_VM, VM
from repro.core.params import DEFAULT_PARAMS
from repro.traces.synthetic import always_idle_trace
from repro.waking import (
    Packet,
    PacketKind,
    ReplicatedWakingService,
    WakingModule,
    WoLPacket,
)


class WolSpy:
    def __init__(self):
        self.sent = []

    def __call__(self, packet: WoLPacket, now: float) -> None:
        self.sent.append((packet, now))


def make_host(name="h1"):
    host = Host(name)
    vm = VM(f"vm-{name}", always_idle_trace(48), TESTBED_VM,
            ip_address=f"10.1.0.{len(name)}")
    host.add_vm(vm)
    return host, vm


@pytest.fixture
def setup():
    sim = EventSimulator()
    spy = WolSpy()
    module = WakingModule("wm", sim, spy)
    host, vm = make_host()
    return sim, spy, module, host, vm


class TestPacketAnalysis:
    def test_request_to_suspended_host_triggers_wol(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, waking_date_s=None)
        woke = module.analyze_packet(Packet(dst_ip=vm.ip_address))
        assert woke
        assert spy.sent[0][0].mac_address == host.mac_address
        assert module.wol_sent == 1

    def test_unknown_destination_ignored(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, None)
        assert not module.analyze_packet(Packet(dst_ip="10.99.99.99"))
        assert spy.sent == []

    def test_non_request_packets_ignored(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, None)
        assert not module.analyze_packet(
            Packet(dst_ip=vm.ip_address, kind=PacketKind.HEARTBEAT))

    def test_mapping_removed_on_awake(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, None)
        module.on_host_awake(host)
        assert not module.analyze_packet(Packet(dst_ip=vm.ip_address))

    def test_packets_analyzed_counter(self, setup):
        sim, spy, module, host, vm = setup
        module.analyze_packet(Packet(dst_ip="10.0.0.1"))
        module.analyze_packet(Packet(dst_ip="10.0.0.2"))
        assert module.packets_analyzed == 2


class TestScheduledWake:
    def test_wol_sent_ahead_of_waking_date(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, waking_date_s=100.0)
        sim.run()
        assert len(spy.sent) == 1
        packet, at = spy.sent[0]
        lead = (DEFAULT_PARAMS.resume_latency_s
                + DEFAULT_PARAMS.wake_ahead_margin_s)
        assert at == pytest.approx(100.0 - lead)
        assert packet.reason == "scheduled-date"

    def test_no_ahead_of_time_when_disabled(self):
        sim = EventSimulator()
        spy = WolSpy()
        params = DEFAULT_PARAMS.replace(ahead_of_time_wake=False)
        module = WakingModule("wm", sim, spy, params)
        host, _ = make_host()
        module.register_suspension(host, waking_date_s=100.0)
        sim.run()
        assert spy.sent[0][1] == pytest.approx(100.0)

    def test_resume_cancels_scheduled_wake(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, waking_date_s=100.0)
        module.on_host_awake(host)
        sim.run()
        assert spy.sent == []

    def test_reregistration_replaces_date(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, waking_date_s=100.0)
        module.register_suspension(host, waking_date_s=500.0)
        sim.run()
        assert len(spy.sent) == 1
        assert spy.sent[0][1] > 400.0

    def test_none_date_means_no_scheduled_wake(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, waking_date_s=None)
        sim.run()
        assert spy.sent == []


class TestFailover:
    def make_service(self):
        sim = EventSimulator()
        spy = WolSpy()
        service = ReplicatedWakingService(sim, spy)
        host, vm = make_host()
        return sim, spy, service, host, vm

    def test_state_is_mirrored(self):
        sim, spy, service, host, vm = self.make_service()
        service.register_suspension(host, waking_date_s=1000.0)
        assert service.mirror.state.vm_to_mac == service.primary.state.vm_to_mac
        assert service.mirror.state.waking_dates == service.primary.state.waking_dates

    def test_failover_promotes_mirror(self):
        sim, spy, service, host, vm = self.make_service()
        service.register_suspension(host, waking_date_s=1000.0)
        service.fail_primary()
        sim.run_until(service.detection_delay_s + 2.0)
        assert service.active is service.mirror
        assert service.failovers == 1

    def test_no_waking_date_lost_across_failover(self):
        """The paper's fault-tolerance guarantee: the mirror still wakes
        the host at the registered date."""
        sim, spy, service, host, vm = self.make_service()
        service.register_suspension(host, waking_date_s=1000.0)
        service.fail_primary()
        sim.run_until(2000.0)
        assert len(spy.sent) == 1
        packet, at = spy.sent[0]
        assert packet.mac_address == host.mac_address
        assert at <= 1000.0

    def test_packet_analysis_after_failover(self):
        sim, spy, service, host, vm = self.make_service()
        service.register_suspension(host, waking_date_s=None)
        service.fail_primary()
        sim.run_until(service.detection_delay_s + 2.0)
        assert service.analyze_packet(Packet(dst_ip=vm.ip_address))

    def test_healthy_primary_keeps_running(self):
        sim, spy, service, host, vm = self.make_service()
        sim.run_until(60.0)
        assert service.active is service.primary
        assert service.failovers == 0

    def test_dead_module_rejects_calls(self):
        sim, spy, service, host, vm = self.make_service()
        service.fail_primary()
        with pytest.raises(RuntimeError):
            service.primary.analyze_packet(Packet(dst_ip=vm.ip_address))


class TestFailoverWindow:
    """The heartbeat detection window is real: calls landing between the
    primary dying and the mirror's promotion must not be lost."""

    def make_service(self):
        sim = EventSimulator()
        spy = WolSpy()
        service = ReplicatedWakingService(sim, spy)
        host, vm = make_host()
        return sim, spy, service, host, vm

    def test_wake_registered_in_window_survives_failover(self):
        """Regression: a suspension registered DURING the detection
        window (worst case: just after the last good heartbeat) is
        journaled on the standby and re-armed by promotion — the
        in-flight-wake-loss fix."""
        sim, spy, service, host, vm = self.make_service()
        service.fail_primary()
        # Deep inside the window, before any chance of promotion.
        sim.schedule_at(
            service.detection_delay_s * 0.5,
            service.register_suspension, host, 1000.0)
        sim.run_until(2000.0)
        assert service.failovers == 1
        assert service.window_journaled == 1
        assert len(spy.sent) == 1
        packet, at = spy.sent[0]
        assert packet.mac_address == host.mac_address
        assert at <= 1000.0

    def test_awake_in_window_cancels_scheduled_wake(self):
        sim, spy, service, host, vm = self.make_service()
        service.register_suspension(host, waking_date_s=1000.0)
        service.fail_primary()
        sim.schedule_at(service.detection_delay_s * 0.5,
                        service.on_host_awake, host)
        sim.run_until(2000.0)
        assert service.window_journaled == 1
        assert spy.sent == []  # promotion must not re-arm a moot wake

    def test_promotion_within_detection_bound(self):
        sim, spy, service, host, vm = self.make_service()
        service.fail_primary()
        # One heartbeat period past the worst-case bound is enough.
        sim.run_until(service.detection_delay_s
                      + DEFAULT_PARAMS.heartbeat_period_s)
        assert service.failovers == 1
        assert service.active is service.mirror

    def test_analysis_declines_during_window(self):
        sim, spy, service, host, vm = self.make_service()
        service.register_suspension(host, waking_date_s=None)
        service.fail_primary()
        assert service.analyze_packet(Packet(dst_ip=vm.ip_address)) is False
        assert service.unanswered_packets == 1
        assert spy.sent == []

    def test_dead_mirror_is_not_promoted(self):
        sim, spy, service, host, vm = self.make_service()
        service.fail_primary()
        service.mirror.fail()
        sim.run_until(service.detection_delay_s + 5.0)
        assert service.failovers == 0

    def test_both_dead_degrades_without_raising(self):
        sim, spy, service, host, vm = self.make_service()
        service.fail_primary()
        service.mirror.fail()
        sim.run_until(service.detection_delay_s + 5.0)
        service.register_suspension(host, waking_date_s=1000.0)
        service.on_host_awake(host)
        assert service.lost_calls == 2
        assert service.analyze_packet(Packet(dst_ip=vm.ip_address)) is False
        sim.run_until(2000.0)
        assert spy.sent == []


class TestReverseIndex:
    """The MAC -> IPs reverse index replacing the per-resume map scan."""

    def test_awake_uses_reverse_index(self, setup):
        sim, spy, module, host, vm = setup
        other = Host("h2")
        other_vm = VM("vm-h2", always_idle_trace(48), TESTBED_VM,
                      ip_address="10.1.7.7")
        other.add_vm(other_vm)
        module.register_suspension(host, None)
        module.register_suspension(other, None)
        assert module.state.ips_of_mac[host.mac_address] == {
            vm.ip_address: None}
        module.on_host_awake(host)
        # Only this host's entries dropped; the other host's survive.
        assert vm.ip_address not in module.state.vm_to_mac
        assert module.state.vm_to_mac[other_vm.ip_address] == other.mac_address
        assert host.mac_address not in module.state.ips_of_mac

    def test_reregistration_moves_ip_between_macs(self, setup):
        """A VM migrated onto another host that then suspends: the IP
        must leave the old MAC's reverse entry, or a later resume of the
        old host would wrongly unmap it."""
        sim, spy, module, host, vm = setup
        other = Host("h2")
        module.register_suspension(host, None)
        host.vms.remove(vm)
        other.add_vm(vm)
        module.register_suspension(other, None)
        assert module.state.vm_to_mac[vm.ip_address] == other.mac_address
        assert host.mac_address not in module.state.ips_of_mac
        module.on_host_awake(host)  # old host resumes: must be a no-op
        assert module.state.vm_to_mac[vm.ip_address] == other.mac_address
        module.on_host_awake(other)
        assert vm.ip_address not in module.state.vm_to_mac

    def test_index_is_pure_function_of_map(self, setup):
        """Different update histories with equal maps compare equal —
        no empty reverse entries are retained."""
        sim, spy, module, host, vm = setup
        module.register_suspension(host, None)
        module.on_host_awake(host)
        from repro.waking import WakingModuleState

        assert module.state == WakingModuleState()

    def test_hand_built_state_rebuilds_index(self):
        from repro.waking import WakingModuleState

        state = WakingModuleState(vm_to_mac={"10.0.0.1": "aa:bb"},
                                  waking_dates={})
        assert state.ips_of_mac == {"aa:bb": {"10.0.0.1": None}}

    def test_snapshot_restore_preserves_index(self, setup):
        sim, spy, module, host, vm = setup
        module.register_suspension(host, None)
        clone = WakingModule("wm2", sim, spy)
        clone.restore(module.snapshot())
        assert clone.state.ips_of_mac == module.state.ips_of_mac
        clone.on_host_awake(host)
        assert clone.state.vm_to_mac == {}
