"""Deeper Oasis-baseline behaviour tests."""

import pytest

from repro.cluster import DataCenter, Host, HostCapacity, ResourceSpec, VM
from repro.consolidation import OasisController, OasisCosts
from repro.sim.hourly import HourlyConfig, HourlySimulator
from repro.traces.base import ActivityTrace
from repro.traces.synthetic import always_idle_trace, daily_backup_trace

import numpy as np

CAP = HostCapacity(cpus=8, memory_mb=16384, cpu_overcommit=1.0)
FLAVOR = ResourceSpec(cpus=2, memory_mb=6144)


def build_dc(n_workers=2, worker_traces=None):
    hosts = [Host("cons", CAP)] + [Host(f"w{i}", CAP) for i in range(n_workers)]
    dc = DataCenter(hosts)
    traces = worker_traces or [always_idle_trace(24 * 5)] * n_workers
    for i, trace in enumerate(traces):
        dc.place(VM(f"vm{i}", trace, FLAVOR), hosts[i + 1])
    return dc


class TestOasisCycles:
    def test_park_restore_cycle_counts(self):
        acts = np.zeros(72)
        acts[24:27] = 0.5  # one activity burst on day 2
        dc = build_dc(1, [ActivityTrace("burst", acts)])
        ctrl = OasisController(dc, n_consolidation_hosts=1)
        sim = HourlySimulator(dc, ctrl,
                              config=HourlyConfig(power_off_empty=False))
        sim.run(72)
        assert ctrl.park_count == 2   # parked, restored, re-parked
        assert ctrl.restore_count == 1

    def test_transfer_energy_proportional_to_working_set(self):
        dc1 = build_dc(1)
        small = OasisController(dc1, costs=OasisCosts(working_set_fraction=0.05))
        small.step(0, 0.0)
        dc2 = build_dc(1)
        large = OasisController(dc2, costs=OasisCosts(working_set_fraction=0.5))
        large.step(0, 0.0)
        assert large.transfer_energy_j == pytest.approx(
            10 * small.transfer_energy_j)

    def test_last_restores_reported(self):
        acts = np.zeros(48)
        acts[1] = 0.4
        dc = build_dc(1, [ActivityTrace("t", acts)])
        ctrl = OasisController(dc)
        vm = dc.host("w0").vms[0]
        vm.current_activity = 0.0
        ctrl.step(0, 0.0)
        vm.current_activity = 0.4
        ctrl.step(1, 3600.0)
        assert ctrl.last_restores == [vm.name]

    def test_oasis_sleeps_workers_on_nightly_pattern(self):
        dc = build_dc(2, [daily_backup_trace(days=4),
                          daily_backup_trace(days=4)])
        ctrl = OasisController(dc)
        sim = HourlySimulator(dc, ctrl,
                              config=HourlyConfig(power_off_empty=False))
        result = sim.run(4 * 24)
        for w in ("w0", "w1"):
            assert result.suspended_fraction_by_host[w] > 0.8
        assert result.suspended_fraction_by_host["cons"] == 0.0

    def test_interface_parity_with_neat_family(self):
        """The hourly simulator's duck-typed hooks all exist."""
        dc = build_dc(1)
        ctrl = OasisController(dc)
        ctrl.observe_hour(0)          # no-op, but must exist
        assert hasattr(ctrl, "host_can_sleep")
        assert hasattr(ctrl, "step")
        assert ctrl.uses_idleness is False
