"""Tests for the weight learner and simplex projection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.weights import (
    N_SCALES,
    descend_weights,
    initial_weights,
    project_to_simplex,
)

finite_vec = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=4, max_size=4
).map(np.array)


class TestProjection:
    def test_already_on_simplex(self):
        v = np.array([0.25, 0.25, 0.25, 0.25])
        np.testing.assert_allclose(project_to_simplex(v), v)

    def test_negative_coordinates_clipped(self):
        out = project_to_simplex(np.array([1.0, -1.0, 0.5, 0.0]))
        assert np.all(out >= 0)
        assert out.sum() == pytest.approx(1.0)

    def test_dominant_coordinate(self):
        out = project_to_simplex(np.array([100.0, 0.0, 0.0, 0.0]))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0, 0.0])

    @given(finite_vec)
    def test_output_is_on_simplex(self, v):
        out = project_to_simplex(v)
        assert np.all(out >= -1e-12)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @given(finite_vec)
    def test_projection_idempotent(self, v):
        once = project_to_simplex(v)
        twice = project_to_simplex(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    @given(finite_vec)
    def test_projection_is_closest_point(self, v):
        """Euclidean projection dominates any other simplex point."""
        out = project_to_simplex(v)
        rng = np.random.default_rng(0)
        for _ in range(10):
            other = rng.dirichlet(np.ones(4))
            assert (np.linalg.norm(v - out)
                    <= np.linalg.norm(v - other) + 1e-9)

    def test_mask_zeroes_inactive(self):
        mask = np.array([True, False, True, False])
        out = project_to_simplex(np.array([0.5, 9.0, 0.5, 9.0]), mask)
        assert out[1] == 0.0 and out[3] == 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_all_masked_rejected(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.ones(4), np.zeros(4, dtype=bool))

    def test_batched(self):
        v = np.array([[1.0, 2.0, 3.0, 4.0], [0.25, 0.25, 0.25, 0.25]])
        out = project_to_simplex(v)
        assert out.shape == (2, 4)
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])


class TestInitialWeights:
    def test_uniform(self):
        np.testing.assert_allclose(initial_weights(), 0.25)

    def test_masked(self):
        mask = np.array([True, True, False, False])
        w = initial_weights(mask)
        np.testing.assert_allclose(w, [0.5, 0.5, 0.0, 0.0])

    def test_batch(self):
        w = initial_weights(batch=3)
        assert w.shape == (3, N_SCALES)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            initial_weights(np.zeros(4, dtype=bool))


class TestDescent:
    def test_zero_si_leaves_weights(self):
        w0 = initial_weights()
        w = descend_weights(w0, np.zeros(4), np.zeros(4), steps=8,
                            learning_rate=0.5)
        np.testing.assert_allclose(w, w0)

    def test_moves_toward_target(self):
        """After descent the prediction error |w.SI - w0.SI'| shrinks."""
        w0 = initial_weights()
        si_old = np.array([0.01, -0.005, 0.002, 0.0])
        si_new = si_old + 1e-4
        before = abs(w0 @ si_new - w0 @ si_old)
        w = descend_weights(w0, si_old, si_new, steps=8, learning_rate=0.5)
        after = abs(w0 @ si_new - w @ si_old)
        assert after <= before

    def test_result_on_simplex(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            w0 = rng.dirichlet(np.ones(4))
            si_old = rng.normal(0, 0.01, 4)
            si_new = si_old + rng.normal(0, 1e-4, 4)
            w = descend_weights(w0, si_old, si_new, steps=4, learning_rate=0.3)
            assert np.all(w >= -1e-12)
            assert w.sum() == pytest.approx(1.0, abs=1e-9)

    def test_batched_matches_scalar(self):
        rng = np.random.default_rng(2)
        w0 = np.stack([rng.dirichlet(np.ones(4)) for _ in range(5)])
        si_old = rng.normal(0, 0.01, (5, 4))
        si_new = si_old + rng.normal(0, 1e-4, (5, 4))
        batched = descend_weights(w0, si_old, si_new, steps=3, learning_rate=0.5)
        for i in range(5):
            single = descend_weights(w0[i], si_old[i], si_new[i], steps=3,
                                     learning_rate=0.5)
            np.testing.assert_allclose(batched[i], single, atol=1e-12)

    def test_mask_respected(self):
        mask = np.array([True, True, True, False])
        w0 = initial_weights(mask)
        si_old = np.array([0.01, -0.01, 0.005, 0.02])
        si_new = si_old * 1.01
        w = descend_weights(w0, si_old, si_new, steps=8, learning_rate=0.5,
                            mask=mask)
        assert w[3] == 0.0

    @settings(max_examples=30)
    @given(st.floats(min_value=1e-6, max_value=0.02),
           st.floats(min_value=-0.02, max_value=-1e-6))
    def test_boosts_correct_scale(self, pos, neg):
        """An idle hour (all SI rise) boosts scales with positive SI."""
        w0 = initial_weights()
        si_old = np.array([pos, neg, 0.0, 0.0])
        si_new = si_old + 2e-4  # idle update: everything up
        w = descend_weights(w0, si_old, si_new, steps=4, learning_rate=0.5)
        assert w[0] >= w0[0] - 1e-9
