"""Property-based tests for consolidation policies.

Invariants that must hold for arbitrary populations: placements never
overfill hosts, selectors return permutations of the host's VMs, the
opportunistic step never widens IP ranges globally, groupings conserve
VMs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Host, HostCapacity, ResourceSpec, VM
from repro.consolidation import (
    IPAwarePlacement,
    IPDistanceSelector,
    MinimumMigrationTimeSelector,
    PowerAwareBestFitDecreasing,
    drowsy_linear_grouping,
    pairwise_matching_grouping,
)
from repro.traces.synthetic import always_idle_trace

CAP = HostCapacity(cpus=16, memory_mb=32768, cpu_overcommit=1.0)


def make_population(rng, n_vms, n_hosts, trained_hours=100):
    hosts = [Host(f"h{i}", CAP) for i in range(n_hosts)]
    vms = []
    for i in range(n_vms):
        vm = VM(f"v{i}", always_idle_trace(48),
                ResourceSpec(cpus=int(rng.integers(1, 5)),
                             memory_mb=int(rng.integers(1, 9)) * 1024))
        pattern_start = int(rng.integers(0, 24))
        for t in range(trained_hours):
            active = (t % 24) in range(pattern_start, min(pattern_start + 4, 24))
            vm.model.observe(t, 0.4 if active else 0.0)
        vm.current_activity = float(rng.uniform(0, 1)) if rng.random() < 0.5 else 0.0
        vms.append(vm)
    return vms, hosts


placement_policies = [
    ("pabfd", lambda: PowerAwareBestFitDecreasing()),
    ("ip", lambda: IPAwarePlacement()),
]


class TestPlacementProperties:
    @pytest.mark.parametrize("name,factory", placement_policies)
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_never_overfills(self, name, factory, seed):
        rng = np.random.default_rng(seed)
        vms, hosts = make_population(rng, n_vms=10, n_hosts=3)
        placement = factory().place(vms, hosts, 100, {})
        # Apply virtually and check capacity per host.
        load = {h.name: [0, 0] for h in hosts}
        for vm in vms:
            dest = placement.get(vm.name)
            if dest is None:
                continue
            load[dest.name][0] += vm.resources.cpus
            load[dest.name][1] += vm.resources.memory_mb
        for h in hosts:
            assert load[h.name][0] <= h.capacity.schedulable_cpus
            assert load[h.name][1] <= h.capacity.memory_mb

    @pytest.mark.parametrize("name,factory", placement_policies)
    def test_each_vm_placed_at_most_once(self, name, factory):
        rng = np.random.default_rng(3)
        vms, hosts = make_population(rng, n_vms=8, n_hosts=2)
        placement = factory().place(vms, hosts, 100, {})
        assert set(placement) <= {vm.name for vm in vms}

    @pytest.mark.parametrize("name,factory", placement_policies)
    def test_excludes_current_host(self, name, factory):
        rng = np.random.default_rng(4)
        vms, hosts = make_population(rng, n_vms=4, n_hosts=2)
        current = {vms[0].name: hosts[0]}
        placement = factory().place([vms[0]], hosts, 100, current)
        if vms[0].name in placement:
            assert placement[vms[0].name] is not hosts[0]


class TestSelectorProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_orders_are_permutations(self, seed):
        rng = np.random.default_rng(seed)
        host = Host("h", CAP)
        names = set()
        for i in range(4):
            vm = VM(f"v{i}", always_idle_trace(48), ResourceSpec(2, 2048))
            vm.current_activity = float(rng.uniform(0, 1))
            host.add_vm(vm)
            names.add(vm.name)
        for selector in (MinimumMigrationTimeSelector(), IPDistanceSelector()):
            order = selector.order(host, 10)
            assert {vm.name for vm in order} == names
            assert len(order) == len(names)


class TestGroupingProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_linear_grouping_conserves_vms(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 32))
        hosts = [Host(f"h{i}", CAP) for i in range((n + 3) // 4)]
        vms = []
        for i in range(n):
            vm = VM(f"v{i}", always_idle_trace(48), ResourceSpec(2, 8192))
            for t in range(50):
                vm.model.observe(t, 0.3 if (t + i) % 7 == 0 else 0.0)
            vms.append(vm)
        groups = drowsy_linear_grouping(vms, hosts, 50)
        grouped = [vm.name for g in groups for vm in g]
        assert sorted(grouped) == sorted(vm.name for vm in vms)
        for host, group in zip(hosts, groups):
            mem = sum(vm.resources.memory_mb for vm in group)
            assert mem <= host.capacity.memory_mb

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_pairwise_grouping_no_duplicates(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 24))
        hosts = [Host(f"h{i}", CAP) for i in range((n + 3) // 4)]
        vms = []
        for i in range(n):
            vm = VM(f"v{i}", always_idle_trace(48), ResourceSpec(2, 8192))
            for t in range(50):
                vm.model.observe(t, 0.3 if (t + i) % 5 == 0 else 0.0)
            vms.append(vm)
        groups = pairwise_matching_grouping(vms, hosts, 50)
        grouped = [vm.name for g in groups for vm in g]
        assert len(grouped) == len(set(grouped))
